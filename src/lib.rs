//! Umbrella crate for the ProvMark-rs workspace.
//!
//! This crate hosts the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`). It re-exports the member crates so the
//! examples can use a single import root.

pub use aspsolver;
pub use camflow;
pub use opus;
pub use oskernel;
pub use provgraph;
pub use provmark_core;
pub use spade;
