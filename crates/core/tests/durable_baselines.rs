//! Regression-store durability: `accept` must be atomic. A reader
//! racing a writer — or a crash mid-accept — must only ever observe a
//! complete baseline at the final path, never a torn file, and the
//! store directory must not accumulate temp files.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use provgraph::PropertyGraph;
use provmark_core::regression::RegressionStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "provmark-durable-baselines-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn graph(n: usize, label: &str) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for i in 0..n {
        g.add_node(format!("n{i}"), label).unwrap();
    }
    for i in 1..n {
        g.add_edge(
            format!("e{i}"),
            format!("n{}", i - 1),
            format!("n{i}"),
            "used",
        )
        .unwrap();
    }
    g
}

#[test]
fn torn_accept_is_never_observable_at_the_final_path() {
    let dir = temp_dir("race");
    let store = RegressionStore::open(&dir).unwrap();
    // Two graphs different enough that any byte-level interleaving of
    // their datalog forms fails to parse or changes the node count.
    let small = graph(2, "Small");
    let big = graph(40, "BigBaselineLabelPaddingPaddingPadding");
    store.accept("cell", &small).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        let (small, big) = (small.clone(), big.clone());
        std::thread::spawn(move || {
            let mut flips = 0u32;
            while !stop.load(Ordering::Relaxed) {
                store
                    .accept(
                        "cell",
                        if flips.is_multiple_of(2) {
                            &big
                        } else {
                            &small
                        },
                    )
                    .unwrap();
                flips += 1;
            }
            flips
        })
    };

    let expected = [small.node_count(), big.node_count()];
    for _ in 0..300 {
        let loaded = store
            .load("cell")
            .expect("a racing reader must never see a torn or missing baseline")
            .expect("baseline exists for the whole race");
        assert!(
            expected.contains(&loaded.node_count()),
            "read a graph that is neither baseline ({} nodes)",
            loaded.node_count()
        );
    }
    stop.store(true, Ordering::Relaxed);
    let flips = writer.join().expect("writer thread");
    assert!(flips > 0, "the writer must actually have raced the reader");

    // The atomic-rename protocol must clean up after itself: nothing in
    // the store directory but the final baseline.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n != "cell.dl")
        .collect();
    assert!(
        leftovers.is_empty(),
        "stray files after the race: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulated_crash_mid_accept_leaves_the_old_baseline() {
    // Simulate the torn write the durable path replaces: a crashed
    // writer leaves a half-written *temp* file behind, and the final
    // path still serves the previous complete baseline.
    let dir = temp_dir("crash");
    let store = RegressionStore::open(&dir).unwrap();
    let old = graph(3, "Old");
    store.accept("cell", &old).unwrap();

    // A torn temp file, as write_bytes_durable would leave it if the
    // process died before its rename.
    let next = provgraph::datalog::to_canonical_datalog(&graph(30, "NewNew"), "g");
    std::fs::write(
        dir.join(".cell.dl.tmp.999.0"),
        &next.as_bytes()[..next.len() / 2],
    )
    .unwrap();

    let loaded = store.load("cell").unwrap().expect("baseline present");
    assert_eq!(
        loaded.node_count(),
        old.node_count(),
        "final path must still serve the pre-crash baseline"
    );
}
