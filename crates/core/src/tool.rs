//! Recording and transformation: the tool-facing stages (paper §3.2–3.3).
//!
//! Each supported capture system gets a *profile* ([`Tool`]) naming its
//! configuration, and an instantiated handle ([`ToolInstance`]) holding any
//! state that persists across recording sessions (the CamFlow daemon's
//! serialize-once memory; nothing for SPADE; per-trial Neo4j stores for
//! OPUS). Only these stages know about tool-specific formats — everything
//! downstream works on the uniform Datalog property-graph representation.

use camflow::{CamFlowConfig, CamFlowRecorder};
use opus::{Neo4jStore, OpusConfig, OpusRecorder};
use oskernel::program::Program;
use oskernel::Kernel;
use provgraph::{dot, provjson, PropertyGraph};
use spade::{SpadeConfig, SpadeRecorder};

use crate::PipelineError;

/// Which capture system (and native output format) a profile targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolKind {
    /// SPADE with the Linux Audit reporter, Graphviz DOT storage (`spg`).
    Spade,
    /// SPADE with Neo4j storage (`spn`, appendix A.5).
    SpadeNeo4j,
    /// OPUS with Neo4j storage (`opu`).
    Opus,
    /// CamFlow with PROV-JSON output (`cam`).
    CamFlow,
}

impl ToolKind {
    /// Human-readable tool name.
    pub fn name(self) -> &'static str {
        match self {
            ToolKind::Spade | ToolKind::SpadeNeo4j => "SPADE",
            ToolKind::Opus => "OPUS",
            ToolKind::CamFlow => "CamFlow",
        }
    }

    /// The native output format, as in the paper's figures
    /// ("SPADE+Graphviz", "OPUS+Neo4J", "CamFlow+ProvJson").
    pub fn format(self) -> &'static str {
        match self {
            ToolKind::Spade => "Graphviz",
            ToolKind::SpadeNeo4j | ToolKind::Opus => "Neo4J",
            ToolKind::CamFlow => "ProvJson",
        }
    }

    /// The ProvMark CLI tool code (appendix A.5: `spg`, `opu`, `cam`).
    pub fn code(self) -> &'static str {
        match self {
            ToolKind::Spade => "spg",
            ToolKind::SpadeNeo4j => "spn",
            ToolKind::Opus => "opu",
            ToolKind::CamFlow => "cam",
        }
    }

    /// The three tool columns of the paper's evaluation (Table 2 uses the
    /// `spg` SPADE storage).
    pub fn all() -> [ToolKind; 3] {
        [ToolKind::Spade, ToolKind::Opus, ToolKind::CamFlow]
    }

    /// Every supported tool/storage combination (appendix A.5).
    pub fn all_variants() -> [ToolKind; 4] {
        [
            ToolKind::Spade,
            ToolKind::SpadeNeo4j,
            ToolKind::Opus,
            ToolKind::CamFlow,
        ]
    }
}

/// A tool profile: capture system plus configuration (the `config.ini`
/// profiles of appendix A.4).
#[derive(Debug, Clone)]
pub enum Tool {
    /// SPADE profile with DOT storage.
    Spade(SpadeConfig),
    /// SPADE profile with Neo4j storage (`spn`): same recorder, persisted
    /// through the embedded store so transformation pays the DB cost.
    SpadeNeo4j {
        /// Recorder configuration.
        config: SpadeConfig,
        /// Simulated store startup iterations (see [`opus::OpusConfig`]).
        db_startup_iterations: u64,
    },
    /// OPUS profile.
    Opus(OpusConfig),
    /// CamFlow profile.
    CamFlow(CamFlowConfig),
}

impl Tool {
    /// SPADE in its baseline configuration.
    pub fn spade_baseline() -> Self {
        Tool::Spade(SpadeConfig::default())
    }

    /// OPUS in its baseline configuration.
    pub fn opus_baseline() -> Self {
        Tool::Opus(OpusConfig::default())
    }

    /// CamFlow in its baseline (0.4.5) configuration.
    pub fn camflow_baseline() -> Self {
        Tool::CamFlow(CamFlowConfig::default())
    }

    /// SPADE persisting into the Neo4j-style store (`spn`).
    pub fn spade_neo4j_baseline() -> Self {
        Tool::SpadeNeo4j {
            config: SpadeConfig::default(),
            db_startup_iterations: OpusConfig::default().db_startup_iterations,
        }
    }

    /// The baseline profile for a given kind.
    pub fn baseline(kind: ToolKind) -> Self {
        match kind {
            ToolKind::Spade => Self::spade_baseline(),
            ToolKind::SpadeNeo4j => Self::spade_neo4j_baseline(),
            ToolKind::Opus => Self::opus_baseline(),
            ToolKind::CamFlow => Self::camflow_baseline(),
        }
    }

    /// Which tool this profile configures.
    pub fn kind(&self) -> ToolKind {
        match self {
            Tool::Spade(_) => ToolKind::Spade,
            Tool::SpadeNeo4j { .. } => ToolKind::SpadeNeo4j,
            Tool::Opus(_) => ToolKind::Opus,
            Tool::CamFlow(_) => ToolKind::CamFlow,
        }
    }

    /// Create the stateful handle used by the pipeline.
    pub fn instantiate(self) -> ToolInstance {
        let inner = match self {
            Tool::Spade(c) => RecorderImpl::Spade(SpadeRecorder::new(c)),
            Tool::SpadeNeo4j {
                config,
                db_startup_iterations,
            } => RecorderImpl::SpadeNeo4j {
                recorder: SpadeRecorder::new(config),
                db_startup_iterations,
            },
            Tool::Opus(c) => RecorderImpl::Opus(OpusRecorder::new(c)),
            Tool::CamFlow(c) => RecorderImpl::CamFlow(CamFlowRecorder::new(c)),
        };
        ToolInstance { inner, sessions: 0 }
    }
}

/// A recorder's native output for one trial, before transformation.
#[derive(Debug)]
pub enum NativeOutput {
    /// SPADE: Graphviz DOT text.
    Dot(String),
    /// OPUS: a populated Neo4j-style store (export pays the DB cost).
    Neo4j(Box<Neo4jStore>),
    /// CamFlow: a W3C PROV-JSON document.
    ProvJson(String),
}

/// The tool-specific recorder state.
#[derive(Debug)]
enum RecorderImpl {
    /// SPADE recorder (stateless across sessions).
    Spade(SpadeRecorder),
    /// SPADE recorder persisting through the Neo4j-style store.
    SpadeNeo4j {
        /// The recorder.
        recorder: SpadeRecorder,
        /// Store startup cost.
        db_startup_iterations: u64,
    },
    /// OPUS recorder (stateless; stores are per trial).
    Opus(OpusRecorder),
    /// CamFlow daemon (stateful: serialize-once memory persists).
    CamFlow(CamFlowRecorder),
}

/// An instantiated tool with cross-session state.
///
/// Every recording session boots a *unique* simulated kernel: a session
/// counter is mixed into the caller's seed so that no two sessions — even
/// of different benchmarks sharing one warm daemon — reuse a boot identity
/// (machines do not reboot into identical states).
#[derive(Debug)]
pub struct ToolInstance {
    inner: RecorderImpl,
    sessions: u64,
}

impl ToolInstance {
    /// Which tool this instance is.
    pub fn kind(&self) -> ToolKind {
        match &self.inner {
            RecorderImpl::Spade(_) => ToolKind::Spade,
            RecorderImpl::SpadeNeo4j { .. } => ToolKind::SpadeNeo4j,
            RecorderImpl::Opus(_) => ToolKind::Opus,
            RecorderImpl::CamFlow(_) => ToolKind::CamFlow,
        }
    }

    /// Recording stage for one trial: boot a fresh kernel with `seed`,
    /// run the program, and capture the tool's native output.
    ///
    /// # Errors
    ///
    /// Fails when the benchmark's target behaviour did not execute
    /// successfully, or on store I/O errors.
    pub fn record(
        &mut self,
        program: &Program,
        seed: u64,
        noise: bool,
    ) -> Result<NativeOutput, PipelineError> {
        self.sessions += 1;
        let boot_seed = seed
            .wrapping_mul(0x100000001B3)
            .wrapping_add(self.sessions.wrapping_mul(0x9E3779B97F4A7C15));
        let mut kernel = Kernel::with_seed(boot_seed);
        kernel.startup_noise = noise && seed.is_multiple_of(5);
        let outcome = kernel.run_program(program);
        if !outcome.success {
            let variant = if program.exe_path.ends_with("bench_bg") {
                "background"
            } else {
                "foreground"
            };
            return Err(PipelineError::BenchmarkFailed {
                name: program.name.clone(),
                variant,
            });
        }
        match &mut self.inner {
            RecorderImpl::Spade(rec) => Ok(NativeOutput::Dot(rec.record(kernel.event_log()))),
            RecorderImpl::SpadeNeo4j {
                recorder,
                db_startup_iterations,
            } => {
                let store = Neo4jStore::create_temp(*db_startup_iterations)?;
                store.ingest(&recorder.record_graph(kernel.event_log()))?;
                Ok(NativeOutput::Neo4j(Box::new(store)))
            }
            RecorderImpl::Opus(rec) => {
                let store = Neo4jStore::create_temp(rec.config.db_startup_iterations)?;
                rec.record_to_store(kernel.event_log(), &store)?;
                Ok(NativeOutput::Neo4j(Box::new(store)))
            }
            RecorderImpl::CamFlow(rec) => Ok(NativeOutput::ProvJson(
                rec.record_session(kernel.event_log()).provjson,
            )),
        }
    }

    /// Transformation stage: map native output to the uniform property
    /// graph (paper §3.3). For OPUS this is where the Neo4j startup and
    /// query cost is paid — the reason transformation dominates in
    /// Figures 6 and 9.
    ///
    /// # Errors
    ///
    /// Fails on malformed native output (e.g. CamFlow's pre-workaround
    /// dangling references) or store I/O errors.
    pub fn transform(&self, native: NativeOutput) -> Result<PropertyGraph, PipelineError> {
        match native {
            NativeOutput::Dot(text) => Ok(dot::parse_dot(&text)?),
            NativeOutput::Neo4j(mut store) => Ok(store.export()?),
            NativeOutput::ProvJson(text) => Ok(provjson::parse_provjson(&text)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::program::Op;

    fn creat_program() -> Program {
        Program::new("creat").op(Op::Creat {
            path: "test.txt".into(),
            mode: 0o644,
            fd_var: "id".into(),
        })
    }

    #[test]
    fn kinds_and_codes() {
        assert_eq!(ToolKind::Spade.name(), "SPADE");
        assert_eq!(ToolKind::Opus.format(), "Neo4J");
        assert_eq!(ToolKind::CamFlow.code(), "cam");
        assert_eq!(ToolKind::SpadeNeo4j.code(), "spn");
        assert_eq!(ToolKind::SpadeNeo4j.name(), "SPADE");
        assert_eq!(ToolKind::SpadeNeo4j.format(), "Neo4J");
        assert_eq!(ToolKind::all().len(), 3);
        assert_eq!(ToolKind::all_variants().len(), 4);
        assert_eq!(Tool::baseline(ToolKind::Opus).kind(), ToolKind::Opus);
        assert_eq!(
            Tool::baseline(ToolKind::SpadeNeo4j).kind(),
            ToolKind::SpadeNeo4j
        );
    }

    #[test]
    fn spade_neo4j_storage_roundtrips_same_graph_as_dot() {
        let mut spg = Tool::spade_baseline().instantiate();
        let mut spn = Tool::SpadeNeo4j {
            config: Default::default(),
            db_startup_iterations: 50,
        }
        .instantiate();
        let prog = creat_program();
        let dot_native = spg.record(&prog, 1, false).unwrap();
        let g_dot = spg.transform(dot_native).unwrap();
        let db_native = spn.record(&prog, 1, false).unwrap();
        let g_db = spn.transform(db_native).unwrap();
        // Identical recorder behind both storages: same graph shape.
        assert_eq!(g_dot.node_count(), g_db.node_count());
        assert_eq!(g_dot.edge_count(), g_db.edge_count());
        assert_eq!(g_dot.node_label_multiset(), g_db.node_label_multiset());
    }

    #[test]
    fn spade_record_transform_roundtrip() {
        let mut tool = Tool::spade_baseline().instantiate();
        let native = tool.record(&creat_program(), 1, false).unwrap();
        assert!(matches!(native, NativeOutput::Dot(_)));
        let graph = tool.transform(native).unwrap();
        assert!(graph.node_count() > 0);
    }

    #[test]
    fn opus_record_transform_roundtrip() {
        let mut tool = Tool::Opus(OpusConfig {
            db_startup_iterations: 10, // keep unit tests fast
            ..OpusConfig::default()
        })
        .instantiate();
        let native = tool.record(&creat_program(), 1, false).unwrap();
        let graph = tool.transform(native).unwrap();
        assert!(graph.node_count() > 0);
    }

    #[test]
    fn camflow_record_transform_roundtrip() {
        let mut tool = Tool::camflow_baseline().instantiate();
        let native = tool.record(&creat_program(), 1, false).unwrap();
        let graph = tool.transform(native).unwrap();
        assert!(graph.node_count() > 0);
    }

    #[test]
    fn failing_benchmark_reported() {
        let program = Program::new("bad")
            .exe("/usr/local/bin/bench_bg")
            .op(Op::Unlink {
                path: "/staging/does-not-exist".into(),
            });
        let mut tool = Tool::spade_baseline().instantiate();
        let err = tool.record(&program, 1, false).unwrap_err();
        match err {
            PipelineError::BenchmarkFailed { name, variant } => {
                assert_eq!(name, "bad");
                assert_eq!(variant, "background");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn camflow_state_persists_across_trials() {
        let mut tool = Tool::camflow_baseline().instantiate();
        let n1 = tool.record(&creat_program(), 1, false).unwrap();
        let g1 = tool.transform(n1).unwrap();
        let n2 = tool.record(&creat_program(), 2, false).unwrap();
        let g2 = tool.transform(n2).unwrap();
        // Same shape even though the daemon carries state forward.
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
    }
}
