//! Result rendering: the text tables printed by the harness binaries and
//! the HTML page of the original's `finalResult/index.html` (result type
//! `rh`, appendix A.5).

use provgraph::{datalog, diff, dot, PropertyGraph};

use crate::pipeline::{BenchmarkRun, CellOutcome};
use crate::suite::{Expectation, ExpectedCell};
use crate::tool::ToolKind;

/// One rendered cell of the results matrix.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// `ok` / `empty` as measured.
    pub measured: String,
    /// What the paper's Table 2 expects.
    pub expected: ExpectedCell,
    /// Whether measurement and expectation agree on ok/empty.
    pub agrees: bool,
}

/// Marker appended to a matrix cell whose measurement disagrees with
/// the paper's expectation.
const MISMATCH_MARK: &str = "  << MISMATCH";

/// One fixed-width matrix table row — the framing shared by every
/// matrix renderer, so the layouts cannot drift apart.
fn matrix_table_row(group: &dyn std::fmt::Display, syscall: &str, cells: [&str; 3]) -> String {
    format!(
        "{:<5} {:<10} | {:<22} | {:<22} | {:<22}\n",
        group, syscall, cells[0], cells[1], cells[2]
    )
}

/// The shared matrix table header (column labels + separator rule).
fn matrix_table_header() -> String {
    let mut out = matrix_table_row(&"Group", "syscall", ["SPADE", "OPUS", "CamFlow"]);
    out.push_str(&"-".repeat(92));
    out.push('\n');
    out
}

/// Render the Table 2 matrix as fixed-width text.
///
/// `rows` pairs each expectation with the measured cell strings in tool
/// order (SPADE, OPUS, CamFlow).
pub fn render_table2(rows: &[(Expectation, [CellResult; 3])]) -> String {
    let mut out = matrix_table_header();
    for (exp, cells) in rows {
        let fmt_cell = |c: &CellResult| {
            let mark = if c.agrees { "" } else { MISMATCH_MARK };
            format!("{}{}", c.measured, mark)
        };
        let rendered = [
            fmt_cell(&cells[0]),
            fmt_cell(&cells[1]),
            fmt_cell(&cells[2]),
        ];
        out.push_str(&matrix_table_row(
            &exp.group,
            exp.syscall,
            [&rendered[0], &rendered[1], &rendered[2]],
        ));
    }
    out
}

/// Render the full matrix report from summarized cells — the canonical
/// output of a matrix run, shared by the single-process and sharded
/// paths.
///
/// Deterministic by construction: cells carry only seeded-pipeline
/// outcomes (status, matching cost, discarded trials, result size — no
/// timings), and rows arrive in canonical Table 2 order from
/// [`crate::pipeline::merge_matrix_summaries`] / [`crate::pipeline::run_matrix`].
/// A sharded run's merged report is therefore **byte-identical** to the
/// single-process report, which is exactly what the sharded smoke test
/// asserts.
pub fn render_matrix_report(rows: &[(Expectation, [CellOutcome; 3])]) -> String {
    let mut out = matrix_table_header();
    let mut agreeing = 0usize;
    for (exp, cells) in rows {
        let fmt_cell = |cell: &CellOutcome, expected: ExpectedCell| {
            let agrees = cell.completed() && cell.is_ok() == expected.is_ok();
            let mut text = cell.status.clone();
            if let Some(cost) = cell.matching_cost {
                text.push_str(&format!(" c{cost}"));
            }
            if let Some(d) = cell.discarded_trials.filter(|&d| d > 0) {
                text.push_str(&format!(" d{d}"));
            }
            if !agrees {
                text.push_str(MISMATCH_MARK);
            }
            (text, agrees)
        };
        let rendered: Vec<(String, bool)> = [exp.spade, exp.opus, exp.camflow]
            .into_iter()
            .zip(cells)
            .map(|(expected, cell)| fmt_cell(cell, expected))
            .collect();
        agreeing += rendered.iter().filter(|(_, a)| *a).count();
        out.push_str(&matrix_table_row(
            &exp.group,
            exp.syscall,
            [&rendered[0].0, &rendered[1].0, &rendered[2].0],
        ));
    }
    out.push_str(&format!(
        "\nagreement with paper Table 2: {agreeing}/{} cells\n",
        rows.len() * 3
    ));
    out
}

/// Render a benchmark result graph in a short human-readable form:
/// node and edge census with labels, dummies marked.
pub fn describe_result(graph: &PropertyGraph) -> String {
    let mut out = String::new();
    let dummies = graph
        .nodes()
        .filter(|n| diff::is_dummy(graph, &n.id))
        .count();
    out.push_str(&format!(
        "{} nodes ({} dummy), {} edges\n",
        graph.node_count(),
        dummies,
        graph.edge_count()
    ));
    for n in graph.nodes() {
        let dummy = if diff::is_dummy(graph, &n.id) {
            " [dummy]"
        } else {
            ""
        };
        out.push_str(&format!("  node {} : {}{}\n", n.id, n.label, dummy));
    }
    for e in graph.edges() {
        let op = e
            .props
            .get("op")
            .or_else(|| e.props.get("cf:type"))
            .map(|v| format!(" ({v})"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  edge {} : {} -[{}{}]-> {}\n",
            e.id, e.src, e.label, op, e.tgt
        ));
    }
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Generate the HTML results page (`finalResult/index.html` analogue):
/// per benchmark, the verdict, the result graph as DOT and as Datalog,
/// and the generalized foreground/background graphs.
pub fn render_html(tool: ToolKind, runs: &[BenchmarkRun]) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    out.push_str(&format!(
        "<title>ProvMark results: {}</title>\n",
        tool.name()
    ));
    out.push_str(
        "<style>body{font-family:sans-serif} pre{background:#f4f4f4;padding:8px}\n\
         .ok{color:green}.empty{color:#888}</style></head><body>\n",
    );
    out.push_str(&format!(
        "<h1>ProvMark benchmark results — {} ({})</h1>\n",
        tool.name(),
        tool.format()
    ));
    out.push_str("<ul>\n");
    for run in runs {
        out.push_str(&format!(
            "<li><a href=\"#{0}\">{0}</a> — <span class=\"{1}\">{1}</span></li>\n",
            html_escape(&run.name),
            run.status.render()
        ));
    }
    out.push_str("</ul>\n");
    for run in runs {
        out.push_str(&format!(
            "<h2 id=\"{0}\">{0} — <span class=\"{1}\">{1}</span></h2>\n",
            html_escape(&run.name),
            run.status.render()
        ));
        out.push_str(&format!(
            "<p>result: {} nodes, {} edges; discarded trials: {}</p>\n",
            run.result.node_count(),
            run.result.edge_count(),
            run.discarded_trials
        ));
        out.push_str("<h3>Benchmark result (DOT)</h3>\n<pre>");
        out.push_str(&html_escape(&dot::to_dot(&run.result, "benchmark")));
        out.push_str("</pre>\n<h3>Benchmark result (Datalog)</h3>\n<pre>");
        out.push_str(&html_escape(&datalog::to_canonical_datalog(
            &run.result,
            "res",
        )));
        out.push_str("</pre>\n<h3>Generalized foreground</h3>\n<pre>");
        out.push_str(&html_escape(&datalog::to_canonical_datalog(
            &run.generalized_fg,
            "fg",
        )));
        out.push_str("</pre>\n<h3>Generalized background</h3>\n<pre>");
        out.push_str(&html_escape(&datalog::to_canonical_datalog(
            &run.generalized_bg,
            "bg",
        )));
        out.push_str("</pre>\n");
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{BenchStatus, StageTimings};
    use crate::suite::{self, EmptyNote};

    fn toy_run(name: &str, ok: bool) -> BenchmarkRun {
        let mut result = PropertyGraph::new();
        if ok {
            result.add_node("t", "Artifact").unwrap();
        }
        BenchmarkRun {
            name: name.to_owned(),
            status: if ok {
                BenchStatus::Ok
            } else {
                BenchStatus::Empty
            },
            result,
            generalized_bg: PropertyGraph::new(),
            generalized_fg: PropertyGraph::new(),
            timings: StageTimings::default(),
            discarded_trials: 0,
            matching_cost: 0,
        }
    }

    #[test]
    fn table2_renders_with_mismatch_markers() {
        let exp = suite::table2()[0];
        let cell_ok = CellResult {
            measured: "ok".into(),
            expected: ExpectedCell::Ok,
            agrees: true,
        };
        let cell_bad = CellResult {
            measured: "empty (LP)".into(),
            expected: ExpectedCell::Ok,
            agrees: false,
        };
        let text = render_table2(&[(exp, [cell_ok.clone(), cell_bad, cell_ok])]);
        assert!(text.contains("close"));
        assert!(text.contains("MISMATCH"));
        assert!(text.contains("SPADE"));
    }

    #[test]
    fn describe_marks_dummies() {
        let mut g = PropertyGraph::new();
        g.add_node("p", "Process").unwrap();
        g.set_node_property("p", provgraph::DUMMY_PROP, "true")
            .unwrap();
        g.add_node("a", "Artifact").unwrap();
        g.add_edge("e", "p", "a", "Used").unwrap();
        g.set_edge_property("e", "op", "creat").unwrap();
        let text = describe_result(&g);
        assert!(text.contains("2 nodes (1 dummy), 1 edges"));
        assert!(text.contains("[dummy]"));
        assert!(text.contains("(creat)"));
    }

    #[test]
    fn html_contains_all_sections_and_escapes() {
        let runs = vec![toy_run("creat", true), toy_run("exit", false)];
        let html = render_html(ToolKind::Spade, &runs);
        assert!(html.contains("<h2 id=\"creat\">"));
        assert!(html.contains("class=\"empty\""));
        assert!(html.contains("Generalized background"));
        assert!(!html.contains("<digraph"), "DOT must be escaped");
        assert!(html.contains("digraph benchmark"));
    }

    #[test]
    fn matrix_report_renders_outcomes_and_agreement() {
        let exp = suite::table2()[1]; // creat: ok everywhere
        let ok = CellOutcome {
            status: "ok".into(),
            matching_cost: Some(2),
            discarded_trials: Some(1),
            result_size: Some(5),
        };
        let empty = CellOutcome {
            status: "empty".into(),
            matching_cost: Some(0),
            discarded_trials: Some(0),
            result_size: Some(0),
        };
        let errored = CellOutcome {
            status: "error: benchmark `creat` failed".into(),
            matching_cost: None,
            discarded_trials: None,
            result_size: None,
        };
        let text = render_matrix_report(&[(exp, [ok, empty, errored])]);
        assert!(text.contains("creat"));
        assert!(text.contains("ok c2 d1"), "{text}");
        assert!(text.contains("empty c0  << MISMATCH"));
        assert!(text.contains("error:"));
        assert!(text.contains("agreement with paper Table 2: 1/3 cells"));
    }

    #[test]
    fn lost_cells_render_as_visible_mismatches() {
        // A cell abandoned by the elastic runner (retries exhausted)
        // renders its `lost:` status with the mismatch marker and never
        // counts toward agreement — a degraded report is visibly
        // degraded.
        let exp = suite::table2()[1]; // creat: ok everywhere
        let ok = CellOutcome {
            status: "ok".into(),
            matching_cost: Some(2),
            discarded_trials: Some(0),
            result_size: Some(5),
        };
        let lost = crate::pipeline::CellFailure {
            syscall: "creat".into(),
            tool: 1,
            attempts: 3,
            detail: "heartbeat went stale".into(),
        }
        .lost_outcome();
        let text = render_matrix_report(&[(exp, [ok.clone(), lost, ok])]);
        assert!(
            text.contains("lost: no worker completed this cell in 3 attempt(s)"),
            "{text}"
        );
        let lost_line = text.lines().find(|l| l.contains("lost:")).unwrap();
        assert!(lost_line.contains("MISMATCH"), "{lost_line}");
        assert!(text.contains("agreement with paper Table 2: 2/3 cells"));
    }

    #[test]
    fn empty_note_codes() {
        assert_eq!(EmptyNote::NR.code(), "NR");
        assert_eq!(EmptyNote::DV.code(), "DV");
    }
}
