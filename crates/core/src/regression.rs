//! Regression testing support (paper §3.1, Charlie).
//!
//! "ProvMark can be used for regression testing, by recording the graphs
//! produced in a given benchmarking run, and comparing them with the
//! results of future runs, using the same code for graph isomorphism
//! testing ProvMark already uses during benchmarking."
//!
//! Benchmark result graphs are stored as canonical Datalog files; a later
//! run is compared against the stored graph with the exact isomorphism
//! solver (node identifiers are volatile, so byte comparison would not
//! work — isomorphism is the right equivalence).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use aspsolver::find_isomorphism;
use provgraph::{datalog, PropertyGraph};

/// Outcome of checking a new benchmark graph against the stored baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionOutcome {
    /// No baseline existed; the new graph was stored.
    New,
    /// The new graph is isomorphic to the baseline.
    Unchanged,
    /// The new graph differs — investigate, then `accept` if intended.
    Changed,
}

/// A directory of stored benchmark graphs (`<name>.dl` files).
#[derive(Debug, Clone)]
pub struct RegressionStore {
    dir: PathBuf,
}

impl RegressionStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(RegressionStore { dir })
    }

    /// Directory holding the baselines.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.dl"))
    }

    /// Load a stored baseline, if present.
    ///
    /// # Errors
    ///
    /// Fails on unreadable or corrupt baseline files.
    pub fn load(&self, name: &str) -> io::Result<Option<PropertyGraph>> {
        let path = self.file(name);
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(path)?;
        let (graph, _) = datalog::parse_datalog(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Some(graph))
    }

    /// Overwrite the baseline for `name` (used after accepting a change).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn accept(&self, name: &str, graph: &PropertyGraph) -> io::Result<()> {
        // Durable + atomic: a crash mid-accept must leave the old
        // baseline intact, never a torn file a later `check` would
        // misread as a regression.
        provtrace::write_bytes_durable(
            &self.file(name),
            datalog::to_canonical_datalog(graph, "g").as_bytes(),
        )
    }

    /// Compare `graph` against the stored baseline; stores it when no
    /// baseline exists.
    ///
    /// # Errors
    ///
    /// Propagates load/store failures.
    pub fn check(&self, name: &str, graph: &PropertyGraph) -> io::Result<RegressionOutcome> {
        match self.load(name)? {
            None => {
                self.accept(name, graph)?;
                Ok(RegressionOutcome::New)
            }
            Some(baseline) => {
                if find_isomorphism(&baseline, graph).is_some() {
                    Ok(RegressionOutcome::Unchanged)
                } else {
                    Ok(RegressionOutcome::Changed)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> RegressionStore {
        let dir =
            std::env::temp_dir().join(format!("provmark-regression-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RegressionStore::open(dir).unwrap()
    }

    fn result_graph(ids: (&str, &str), stable: &str) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node(ids.0, "Process").unwrap();
        g.add_node(ids.1, "Artifact").unwrap();
        g.add_edge("e", ids.0, ids.1, "Used").unwrap();
        g.set_node_property(ids.1, "path", stable).unwrap();
        g
    }

    #[test]
    fn first_check_stores_baseline() {
        let store = tmp_store("first");
        let g = result_graph(("p1", "a1"), "/tmp/t");
        assert_eq!(store.check("creat", &g).unwrap(), RegressionOutcome::New);
        assert!(store.load("creat").unwrap().is_some());
    }

    #[test]
    fn isomorphic_rerun_is_unchanged_despite_new_ids() {
        let store = tmp_store("iso");
        store
            .check("creat", &result_graph(("p1", "a1"), "/t"))
            .unwrap();
        // A later run has different (volatile) node ids but same shape.
        let rerun = result_graph(("p999", "a777"), "/t");
        assert_eq!(
            store.check("creat", &rerun).unwrap(),
            RegressionOutcome::Unchanged
        );
    }

    #[test]
    fn structural_change_detected_and_acceptable() {
        let store = tmp_store("change");
        store
            .check("creat", &result_graph(("p1", "a1"), "/t"))
            .unwrap();
        let mut changed = result_graph(("p1", "a1"), "/t");
        changed.add_node("extra", "Artifact").unwrap();
        assert_eq!(
            store.check("creat", &changed).unwrap(),
            RegressionOutcome::Changed
        );
        // Accept the intended change; now it is the baseline.
        store.accept("creat", &changed).unwrap();
        assert_eq!(
            store.check("creat", &changed).unwrap(),
            RegressionOutcome::Unchanged
        );
    }

    #[test]
    fn property_change_detected() {
        let store = tmp_store("prop");
        store
            .check("creat", &result_graph(("p1", "a1"), "/t"))
            .unwrap();
        let renamed = result_graph(("p1", "a1"), "/other");
        assert_eq!(
            store.check("creat", &renamed).unwrap(),
            RegressionOutcome::Changed
        );
    }

    #[test]
    fn baselines_are_canonical_datalog_on_disk() {
        let store = tmp_store("canon");
        let g = result_graph(("p1", "a1"), "/t");
        store.accept("x", &g).unwrap();
        let text = fs::read_to_string(store.dir().join("x.dl")).unwrap();
        assert!(text.contains("ng(a1,\"Artifact\")."));
        assert!(text.contains("eg(e,p1,a1,\"Used\")."));
    }
}
