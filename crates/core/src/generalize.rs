//! Graph generalization (paper §3.4).
//!
//! Several recording trials of the same program yield graphs that agree in
//! structure but differ in transient data. This stage:
//!
//! 1. partitions the trials into **similarity classes** (same shape and
//!    labels, properties ignored) — classes of size one are *failed runs*
//!    and are discarded;
//! 2. picks a representative **pair** from the class whose graphs are
//!    smallest (the paper found two-smallest and two-largest both work;
//!    both are implemented for the ablation bench);
//! 3. finds the similarity bijection minimizing property differences and
//!    **strips every property that differs** — the surviving properties
//!    are the invariant ones.
//!
//! The whole stage runs over a [`CorpusSession`]: every trial is compiled
//! exactly once into the session's shared interner, and fingerprint
//! bucketing, similarity confirmation and the generalization matching all
//! reuse those compiled graphs ([`generalize_trials_in`]). The pipeline
//! threads one session per benchmark run through generalization *and* the
//! comparison stage, so no graph is ever compiled (or its vocabulary
//! re-interned) twice.

use aspsolver::{
    find_generalization, solve_in_memo, BatchSolver, Matching, Problem, SolveMemo, SolverConfig,
};
use provgraph::compiled::{CorpusSession, GraphId};
use provgraph::PropertyGraph;

use crate::{par, PipelineError};

/// Which pair of consistent trials generalization uses (paper §3.4
/// discusses the choice; `TwoSmallest` is ProvMark's default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairStrategy {
    /// The class with the smallest graphs (default).
    #[default]
    TwoSmallest,
    /// The class with the largest graphs (also works per the paper).
    TwoLargest,
}

/// Partition trial graphs into similarity classes.
///
/// Convenience wrapper over [`similarity_classes_in`] that compiles the
/// trials into a throwaway [`CorpusSession`]. Callers that keep using the
/// graphs (the pipeline does) should build the session themselves so the
/// compiled trials are reused by the later stages.
pub fn similarity_classes(graphs: &[PropertyGraph]) -> Vec<Vec<usize>> {
    let mut session = CorpusSession::new();
    let ids: Vec<GraphId> = graphs.iter().map(|g| session.add(g)).collect();
    similarity_classes_in(&session, &ids, graphs, None)
}

/// Partition session-compiled trial graphs into similarity classes.
///
/// `ids[i]` must be the session handle of `graphs[i]`; the returned
/// classes contain positions into that common indexing. Three-layer
/// classification, entirely in symbol space:
///
/// 1. **Fingerprint prefilter** — compiled-path Weisfeiler–Lehman shape
///    fingerprints (computed in parallel over the session's CSR cores, no
///    string hashing) bucket the trials; unequal fingerprints *prove*
///    dissimilarity, so the exact solver never sees cross-bucket pairs.
/// 2. **Identity fast path** — set-equal graphs are trivially similar
///    and skip the solver entirely.
/// 3. **Exact confirmation** — within a bucket (buckets processed in
///    parallel), each class representative is confirmed against **all**
///    still-unclassified bucket members in one batched solver call
///    ([`BatchSolver`]): the representative's left-hand search plan is
///    prepared once and reused for every member, instead of being
///    rebuilt per pair. Every trial was compiled exactly once when added
///    to the session, so confirmation pays zero compile cost either way.
///    Fingerprint collisions may still split a bucket into several
///    classes, so the result is always a true partition by similarity.
///
/// The batched schedule produces exactly the partition the pair-at-a-time
/// schedule did: a trial belongs to the first class (in creation order)
/// whose representative it matches, and representatives are taken in
/// trial order either way.
///
/// `memo`, when given, is threaded into every batched confirmation
/// ([`BatchSolver::with_memo`]): cores already confirmed under one
/// representative are replayed from the cache when a later
/// representative (or a later caller sharing the memo — the pipeline
/// threads one per benchmark run) meets an equivalent core. The
/// partition is identical with and without it.
pub fn similarity_classes_in(
    session: &CorpusSession,
    ids: &[GraphId],
    graphs: &[PropertyGraph],
    memo: Option<&SolveMemo>,
) -> Vec<Vec<usize>> {
    debug_assert_eq!(ids.len(), graphs.len());
    let fingerprints = par::par_map(ids, |id| session.shape_fingerprint(*id));
    let mut buckets: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for (i, fp) in fingerprints.iter().enumerate() {
        buckets.entry(*fp).or_default().push(i);
    }
    let buckets: Vec<Vec<usize>> = buckets.into_values().collect();
    let per_bucket: Vec<Vec<Vec<usize>>> = par::par_map(&buckets, |bucket| {
        // Class members as bucket-local positions; representative first.
        let mut sub: Vec<Vec<usize>> = Vec::new();
        let mut remaining: Vec<usize> = (0..bucket.len()).collect();
        while let Some((&rep, rest)) = remaining.split_first() {
            // Identity fast path first; everything else goes through one
            // batched confirmation against the representative.
            let mut need: Vec<GraphId> = Vec::new();
            let trivially: Vec<bool> = rest
                .iter()
                .map(|&local| {
                    let equal = graphs[bucket[rep]] == graphs[bucket[local]];
                    if !equal {
                        need.push(ids[bucket[local]]);
                    }
                    equal
                })
                .collect();
            let outcomes = if need.is_empty() {
                Vec::new()
            } else {
                BatchSolver::new(
                    Problem::Similarity,
                    session,
                    ids[bucket[rep]],
                    SolverConfig::default(),
                )
                .with_memo(memo)
                .solve_batch(&need)
            };
            let mut outcomes = outcomes.into_iter();
            let mut class = vec![rep];
            let mut next = Vec::new();
            for (&local, &equal) in rest.iter().zip(&trivially) {
                let similar = equal
                    || outcomes
                        .next()
                        // provlint: allow(panic-in-lib) -- the batch was built with one entry per non-trivial member of this zip
                        .expect("one batch outcome per solver-confirmed member")
                        .matching
                        .is_some();
                if similar {
                    class.push(local);
                } else {
                    next.push(local);
                }
            }
            sub.push(class);
            remaining = next;
        }
        sub.into_iter()
            .map(|class| class.into_iter().map(|local| bucket[local]).collect())
            .collect()
    });
    per_bucket.into_iter().flatten().collect()
}

/// Pick the representative pair per the strategy. Returns trial indices.
///
/// Classes of size one are failed runs and never chosen.
pub fn pick_pair(
    classes: &[Vec<usize>],
    graphs: &[PropertyGraph],
    strategy: PairStrategy,
) -> Option<(usize, usize)> {
    let viable = classes.iter().filter(|c| c.len() >= 2);
    let chosen = match strategy {
        PairStrategy::TwoSmallest => viable.min_by_key(|c| graphs[c[0]].size()),
        PairStrategy::TwoLargest => viable.max_by_key(|c| graphs[c[0]].size()),
    }?;
    Some((chosen[0], chosen[1]))
}

/// Generalize a pair of similar graphs: keep only the properties that
/// match under the optimal (mismatch-minimizing) bijection.
///
/// Returns `None` when the graphs are not similar at all.
pub fn generalize_pair(g1: &PropertyGraph, g2: &PropertyGraph) -> Option<PropertyGraph> {
    let matching = find_generalization(g1, g2)?;
    Some(apply_generalization(g1, g2, &matching))
}

/// Build the generalized graph for a matched pair: `g1` with every
/// property that differs from its image under `matching` stripped.
fn apply_generalization(
    g1: &PropertyGraph,
    g2: &PropertyGraph,
    matching: &Matching,
) -> PropertyGraph {
    let mut out = PropertyGraph::new();
    for n in g1.nodes() {
        let mut node = n.clone();
        if let Some(image) = matching.node_map.get(&n.id).and_then(|id| g2.node(id)) {
            node.props.retain(|k, v| image.props.get(k) == Some(v));
        } else {
            node.props.clear();
        }
        // provlint: allow(panic-in-lib) -- ids copied from a graph whose ids are already unique
        out.add_node_data(node).expect("copied node unique");
    }
    for e in g1.edges() {
        let mut edge = e.clone();
        if let Some(image) = matching.edge_map.get(&e.id).and_then(|id| g2.edge(id)) {
            edge.props.retain(|k, v| image.props.get(k) == Some(v));
        } else {
            edge.props.clear();
        }
        // provlint: allow(panic-in-lib) -- ids copied from a graph whose ids are already unique
        out.add_edge_data(edge).expect("copied edge unique");
    }
    out
}

/// Outcome of generalizing one variant's trials.
#[derive(Debug, Clone)]
pub struct Generalized {
    /// The generalized (volatile-free) representative graph.
    pub graph: PropertyGraph,
    /// Trials discarded as failed runs (singleton similarity classes or
    /// unparseable output upstream).
    pub discarded: usize,
}

/// Full generalization stage over all trials of one program variant.
///
/// Convenience wrapper over [`generalize_trials_in`] with a throwaway
/// [`CorpusSession`]; the pipeline passes its per-run session instead so
/// compiled trials carry over to the comparison stage's interner.
///
/// # Errors
///
/// - [`PipelineError::NotEnoughTrials`] with fewer than two trials;
/// - [`PipelineError::NoConsistentTrials`] when every similarity class is
///   a singleton.
pub fn generalize_trials(
    graphs: &[PropertyGraph],
    strategy: PairStrategy,
    variant: &'static str,
) -> Result<Generalized, PipelineError> {
    generalize_trials_in(&mut CorpusSession::new(), graphs, strategy, variant, None)
}

/// Full generalization stage over all trials of one program variant,
/// threading a caller-owned [`CorpusSession`].
///
/// Every trial is compiled once into `session`; classification and the
/// generalization matching then run entirely over the session's compiled
/// graphs. The session keeps the compiled trials (and, more importantly,
/// the interned vocabulary) afterwards, so later stages sharing the
/// session — the other variant, the comparison stage — intern next to
/// nothing. Lowering to a [`PropertyGraph`] happens only once, for the
/// returned generalized representative.
///
/// `memo`, when given, is shared by the classification batches and the
/// generalization matching (the pipeline threads one memo per benchmark
/// run, so both variants' stages replay each other's dense solves).
///
/// # Errors
///
/// Same contract as [`generalize_trials`].
pub fn generalize_trials_in(
    session: &mut CorpusSession,
    graphs: &[PropertyGraph],
    strategy: PairStrategy,
    variant: &'static str,
    memo: Option<&SolveMemo>,
) -> Result<Generalized, PipelineError> {
    if graphs.len() < 2 {
        return Err(PipelineError::NotEnoughTrials(graphs.len()));
    }
    let ids: Vec<GraphId> = graphs.iter().map(|g| session.add(g)).collect();
    let classes = similarity_classes_in(session, &ids, graphs, memo);
    let Some((a, b)) = pick_pair(&classes, graphs, strategy) else {
        return Err(PipelineError::NoConsistentTrials {
            variant,
            trials: graphs.len(),
        });
    };
    // A pair drawn from a similarity class is similar, so the only way
    // the matching can be absent is the solver abandoning the search at
    // its step budget on a pathological trial — a reportable condition,
    // not a programming error.
    let matching = solve_in_memo(
        Problem::Generalization,
        session,
        ids[a],
        ids[b],
        &SolverConfig::default(),
        memo,
    )
    .matching
    .ok_or(PipelineError::SolverGaveUp {
        stage: "generalization",
    })?;
    let graph = apply_generalization(&graphs[a], &graphs[b], &matching);
    let chosen_class_len = classes
        .iter()
        .find(|c| c.contains(&a))
        .map(Vec::len)
        .unwrap_or(2);
    Ok(Generalized {
        graph,
        discarded: graphs.len() - chosen_class_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(time: &str, extra_node: bool) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node("p", "Process").unwrap();
        g.add_node("f", "Artifact").unwrap();
        g.add_edge("e", "p", "f", "Used").unwrap();
        g.set_node_property("p", "pid", time).unwrap(); // volatile
        g.set_node_property("f", "path", "/tmp/t").unwrap(); // stable
        g.set_edge_property("e", "time", time).unwrap(); // volatile
        g.set_edge_property("e", "op", "open").unwrap(); // stable
        if extra_node {
            g.add_node("noise", "Artifact").unwrap();
        }
        g
    }

    #[test]
    fn classes_split_failed_runs() {
        let graphs = vec![trial("1", false), trial("2", false), trial("3", true)];
        let classes = similarity_classes(&graphs);
        assert_eq!(classes.len(), 2);
        let sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn pick_pair_ignores_singletons() {
        let graphs = vec![trial("1", true), trial("2", false), trial("3", false)];
        let classes = similarity_classes(&graphs);
        let (a, b) = pick_pair(&classes, &graphs, PairStrategy::TwoSmallest).unwrap();
        assert!(!graphs[a].has_node("noise"));
        assert!(!graphs[b].has_node("noise"));
    }

    #[test]
    fn pick_pair_strategies_differ() {
        // Two classes of two: small pair and large pair.
        let graphs = vec![
            trial("1", false),
            trial("2", false),
            trial("3", true),
            trial("4", true),
        ];
        let classes = similarity_classes(&graphs);
        let small = pick_pair(&classes, &graphs, PairStrategy::TwoSmallest).unwrap();
        let large = pick_pair(&classes, &graphs, PairStrategy::TwoLargest).unwrap();
        assert!(graphs[small.0].size() < graphs[large.0].size());
    }

    #[test]
    fn generalize_strips_volatile_keeps_stable() {
        let g = generalize_pair(&trial("111", false), &trial("222", false)).unwrap();
        assert_eq!(g.prop("p", "pid"), None, "volatile pid stripped");
        assert_eq!(g.prop("e", "time"), None, "volatile time stripped");
        assert_eq!(g.prop("f", "path"), Some("/tmp/t"), "stable path kept");
        assert_eq!(g.prop("e", "op"), Some("open"), "stable op kept");
    }

    #[test]
    fn generalize_dissimilar_is_none() {
        assert!(generalize_pair(&trial("1", false), &trial("2", true)).is_none());
    }

    #[test]
    fn generalize_trials_end_to_end() {
        let graphs = vec![trial("5", false), trial("6", true), trial("7", false)];
        let out = generalize_trials(&graphs, PairStrategy::default(), "background").unwrap();
        assert_eq!(out.discarded, 1);
        assert_eq!(out.graph.prop("f", "path"), Some("/tmp/t"));
        assert_eq!(out.graph.prop("p", "pid"), None);
    }

    #[test]
    fn all_inconsistent_is_error() {
        // Three pairwise-dissimilar graphs.
        let mut g1 = PropertyGraph::new();
        g1.add_node("a", "A").unwrap();
        let mut g2 = PropertyGraph::new();
        g2.add_node("a", "B").unwrap();
        let mut g3 = PropertyGraph::new();
        g3.add_node("a", "C").unwrap();
        let err =
            generalize_trials(&[g1, g2, g3], PairStrategy::default(), "foreground").unwrap_err();
        assert!(matches!(
            err,
            PipelineError::NoConsistentTrials {
                variant: "foreground",
                trials: 3
            }
        ));
    }

    #[test]
    fn single_trial_is_error() {
        let err = generalize_trials(&[trial("1", false)], PairStrategy::default(), "background")
            .unwrap_err();
        assert!(matches!(err, PipelineError::NotEnoughTrials(1)));
    }

    #[test]
    fn matching_pairs_volatile_optimally() {
        // Two nodes per graph distinguished only by a stable name; the
        // optimal matching must align names so only timestamps differ.
        let make = |t1: &str, t2: &str| {
            let mut g = PropertyGraph::new();
            g.add_node("x", "F").unwrap();
            g.set_node_property("x", "name", "alpha").unwrap();
            g.set_node_property("x", "time", t1).unwrap();
            g.add_node("y", "F").unwrap();
            g.set_node_property("y", "name", "beta").unwrap();
            g.set_node_property("y", "time", t2).unwrap();
            g
        };
        let g = generalize_pair(&make("1", "2"), &make("8", "9")).unwrap();
        assert_eq!(g.prop("x", "name"), Some("alpha"));
        assert_eq!(g.prop("y", "name"), Some("beta"));
        assert_eq!(g.prop("x", "time"), None);
        assert_eq!(g.prop("y", "time"), None);
    }
}
