use std::fmt;

use provgraph::GraphError;

/// Errors surfaced by the ProvMark pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The benchmark program did not perform its target behaviour (the
    /// per-benchmark success check failed, paper §4: "along with tests for
    /// each one to ensure that the target behavior was performed
    /// successfully").
    BenchmarkFailed {
        /// Benchmark name.
        name: String,
        /// Which variant failed (`"foreground"` / `"background"`).
        variant: &'static str,
    },
    /// A recorder's native output could not be transformed into the
    /// Datalog representation.
    Transform {
        /// Underlying format error.
        source: GraphError,
    },
    /// Store input/output failed (OPUS's Neo4j-style backend).
    Store(std::io::Error),
    /// No similarity class with at least two consistent trials exists —
    /// all runs were "failed runs" in the paper's sense (§3.4).
    NoConsistentTrials {
        /// Which variant lacked consistent trials.
        variant: &'static str,
        /// Number of trials examined.
        trials: usize,
    },
    /// The generalized background graph does not embed into the
    /// generalized foreground graph — monotonicity of recording was
    /// violated (paper §3.5 assumes append-only recording).
    BackgroundNotSubgraph,
    /// Fewer than two trials were requested; generalization needs a pair.
    NotEnoughTrials(usize),
    /// The exact solver abandoned the search at its step budget before
    /// producing a matching the pipeline requires to exist (e.g. the
    /// generalization matching of two graphs already confirmed similar).
    /// Reachable only on pathological trial graphs whose search space
    /// exceeds the budget; surfaced as an error instead of a panic so a
    /// malformed trial cannot take down a whole matrix run.
    SolverGaveUp {
        /// Which matching stage gave up.
        stage: &'static str,
    },
    /// A matrix split was requested with an unusable shard count
    /// (`--shards 0`, or more shards than matrix rows).
    InvalidShardCount {
        /// Requested shard count.
        count: usize,
        /// Number of matrix rows available to distribute.
        rows: usize,
    },
    /// A shard index outside `0..shard_count` was requested
    /// (`--shard-index` out of range for `--shards`).
    InvalidShardIndex {
        /// Requested shard index.
        index: usize,
        /// The shard count the index must stay below.
        count: usize,
    },
    /// A shard manifest or CLI invocation named a benchmark that is not
    /// in the Table 2 matrix.
    UnknownBenchmark {
        /// The unrecognized benchmark name.
        name: String,
    },
    /// A shard manifest or partial-results artifact was malformed: wrong
    /// format tag, unsupported artifact version, or a field that does
    /// not parse.
    ShardArtifact {
        /// What was wrong with the artifact.
        detail: String,
    },
    /// Partial results from the matrix shards do not reassemble into the
    /// full matrix (missing, duplicate or foreign cells) — the merge
    /// refuses to emit a report that silently differs from the
    /// single-process run.
    ShardMerge {
        /// What failed to line up.
        detail: String,
    },
    /// A per-cell task or artifact named a tool column outside the
    /// matrix (the Table 2 tools are 0 = SPADE, 1 = OPUS, 2 = CamFlow).
    UnknownTool {
        /// The out-of-range tool column.
        index: usize,
        /// Number of tool columns in the matrix.
        tools: usize,
    },
    /// One or more matrix cells were abandoned by the elastic shard
    /// runner after exhausting their retry budget: every dispatch of the
    /// cell ended in a dead worker, a stale heartbeat or a torn result
    /// artifact. The merged report records each such cell as `lost`
    /// instead of silently omitting it; this error carries the typed
    /// per-cell records.
    CellsExhausted {
        /// One record per abandoned cell.
        failures: Vec<crate::pipeline::CellFailure>,
    },
    /// The local worker pool died before the matrix completed and the
    /// respawn budget was exhausted — no worker is left to claim the
    /// remaining cells.
    WorkerPool {
        /// Every worker that exited unsuccessfully (index, rendered exit
        /// status, captured stderr path).
        failures: Vec<WorkerFailure>,
        /// What the pool was still responsible for when it died.
        detail: String,
    },
    /// A session snapshot could not be restored (wrong magic, version
    /// mismatch, truncation or corruption).
    Snapshot {
        /// Underlying snapshot error.
        source: provgraph::snapshot::SnapshotError,
    },
}

/// One worker process (or thread) of a local elastic pool that exited
/// unsuccessfully — the per-worker detail behind
/// [`PipelineError::WorkerPool`], also reported informationally by the
/// driver when the run recovered anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Worker index within the pool (respawned workers get fresh
    /// indices past the initial pool size).
    pub worker: usize,
    /// Rendered exit status (process exit code / signal, or the
    /// abandonment reason for thread workers).
    pub status: String,
    /// Captured stderr path, when the worker ran as a process.
    pub stderr: Option<std::path::PathBuf>,
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} failed ({})", self.worker, self.status)?;
        if let Some(path) = &self.stderr {
            write!(f, " — stderr: {}", path.display())?;
        }
        Ok(())
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BenchmarkFailed { name, variant } => {
                write!(
                    f,
                    "benchmark `{name}` {variant} variant did not perform its target behaviour"
                )
            }
            PipelineError::Transform { source } => {
                write!(f, "transformation to datalog failed: {source}")
            }
            PipelineError::Store(e) => write!(f, "provenance store error: {e}"),
            PipelineError::NoConsistentTrials { variant, trials } => {
                write!(f, "no two consistent {variant} trials among {trials} runs")
            }
            PipelineError::BackgroundNotSubgraph => {
                write!(
                    f,
                    "background graph does not embed into the foreground graph"
                )
            }
            PipelineError::NotEnoughTrials(n) => {
                write!(f, "generalization needs at least 2 trials, got {n}")
            }
            PipelineError::SolverGaveUp { stage } => {
                write!(f, "exact solver exhausted its step budget during {stage}")
            }
            PipelineError::InvalidShardCount { count, rows } => {
                write!(
                    f,
                    "cannot split the matrix into {count} shard(s): pass --shards N \
                     with 1 <= N <= {rows} (the matrix has {rows} rows)"
                )
            }
            PipelineError::InvalidShardIndex { index, count } => {
                write!(
                    f,
                    "shard index {index} is out of range for {count} shard(s): pass \
                     --shard-index i with 0 <= i < {count}"
                )
            }
            PipelineError::UnknownBenchmark { name } => {
                write!(f, "`{name}` is not a Table 2 benchmark")
            }
            PipelineError::ShardArtifact { detail } => {
                write!(f, "malformed shard artifact: {detail}")
            }
            PipelineError::ShardMerge { detail } => {
                write!(f, "shard results do not reassemble the matrix: {detail}")
            }
            PipelineError::UnknownTool { index, tools } => {
                write!(
                    f,
                    "tool column {index} is out of range: the matrix has {tools} tool(s) \
                     (0 = SPADE, 1 = OPUS, 2 = CamFlow)"
                )
            }
            PipelineError::CellsExhausted { failures } => {
                write!(
                    f,
                    "{} matrix cell(s) exhausted their retries and were recorded as lost: ",
                    failures.len()
                )?;
                for (i, failure) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{failure}")?;
                }
                Ok(())
            }
            PipelineError::WorkerPool { failures, detail } => {
                write!(f, "the local worker pool cannot make progress ({detail}): ")?;
                for (i, failure) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{failure}")?;
                }
                Ok(())
            }
            PipelineError::Snapshot { source } => {
                write!(f, "session snapshot rejected: {source}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Transform { source } => Some(source),
            PipelineError::Store(e) => Some(e),
            PipelineError::Snapshot { source } => Some(source),
            _ => None,
        }
    }
}

impl From<provgraph::snapshot::SnapshotError> for PipelineError {
    fn from(source: provgraph::snapshot::SnapshotError) -> Self {
        PipelineError::Snapshot { source }
    }
}

impl From<GraphError> for PipelineError {
    fn from(source: GraphError) -> Self {
        PipelineError::Transform { source }
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PipelineError::NoConsistentTrials {
            variant: "background",
            trials: 4,
        };
        assert_eq!(
            e.to_string(),
            "no two consistent background trials among 4 runs"
        );
        let e = PipelineError::NotEnoughTrials(1);
        assert!(e.to_string().contains("at least 2"));
        let e = PipelineError::SolverGaveUp {
            stage: "generalization",
        };
        assert!(e.to_string().contains("step budget"));
        assert!(e.to_string().contains("generalization"));
    }

    #[test]
    fn shard_and_snapshot_messages_are_actionable() {
        let e = PipelineError::InvalidShardCount { count: 0, rows: 44 };
        assert!(e.to_string().contains("--shards N"));
        assert!(e.to_string().contains("44"));
        let e = PipelineError::InvalidShardIndex { index: 5, count: 3 };
        assert!(e.to_string().contains("0 <= i < 3"));
        let e = PipelineError::UnknownBenchmark {
            name: "frobnicate".into(),
        };
        assert!(e.to_string().contains("frobnicate"));
        let e = PipelineError::ShardMerge {
            detail: "row `creat` appears twice".into(),
        };
        assert!(e.to_string().contains("reassemble"));
        let snap = provgraph::snapshot::SnapshotError::UnsupportedVersion {
            found: 9,
            supported: provgraph::snapshot::SNAPSHOT_VERSION,
        };
        let e = PipelineError::from(snap);
        assert!(e.to_string().contains("version 9"));
        assert!(
            std::error::Error::source(&e).is_some(),
            "snapshot source preserved"
        );
    }

    #[test]
    fn elastic_failure_messages_are_actionable() {
        let e = PipelineError::UnknownTool { index: 5, tools: 3 };
        assert!(e.to_string().contains("tool column 5"));
        assert!(e.to_string().contains("CamFlow"));
        let failure = crate::pipeline::CellFailure {
            syscall: "creat".into(),
            tool: 0,
            attempts: 3,
            detail: "worker heartbeat went stale".into(),
        };
        let e = PipelineError::CellsExhausted {
            failures: vec![failure],
        };
        let text = e.to_string();
        assert!(text.contains("1 matrix cell(s)"), "{text}");
        assert!(text.contains("creat"), "{text}");
        assert!(text.contains("3 attempt(s)"), "{text}");
        let e = PipelineError::WorkerPool {
            failures: vec![WorkerFailure {
                worker: 2,
                status: "exit status: 134".into(),
                stderr: Some(std::path::PathBuf::from("/tmp/worker-2.stderr")),
            }],
            detail: "4 cell(s) still open".into(),
        };
        let text = e.to_string();
        assert!(
            text.contains("worker 2 failed (exit status: 134)"),
            "{text}"
        );
        assert!(text.contains("/tmp/worker-2.stderr"), "{text}");
        assert!(text.contains("4 cell(s) still open"), "{text}");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
