use std::fmt;

use provgraph::GraphError;

/// Errors surfaced by the ProvMark pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The benchmark program did not perform its target behaviour (the
    /// per-benchmark success check failed, paper §4: "along with tests for
    /// each one to ensure that the target behavior was performed
    /// successfully").
    BenchmarkFailed {
        /// Benchmark name.
        name: String,
        /// Which variant failed (`"foreground"` / `"background"`).
        variant: &'static str,
    },
    /// A recorder's native output could not be transformed into the
    /// Datalog representation.
    Transform {
        /// Underlying format error.
        source: GraphError,
    },
    /// Store input/output failed (OPUS's Neo4j-style backend).
    Store(std::io::Error),
    /// No similarity class with at least two consistent trials exists —
    /// all runs were "failed runs" in the paper's sense (§3.4).
    NoConsistentTrials {
        /// Which variant lacked consistent trials.
        variant: &'static str,
        /// Number of trials examined.
        trials: usize,
    },
    /// The generalized background graph does not embed into the
    /// generalized foreground graph — monotonicity of recording was
    /// violated (paper §3.5 assumes append-only recording).
    BackgroundNotSubgraph,
    /// Fewer than two trials were requested; generalization needs a pair.
    NotEnoughTrials(usize),
    /// The exact solver abandoned the search at its step budget before
    /// producing a matching the pipeline requires to exist (e.g. the
    /// generalization matching of two graphs already confirmed similar).
    /// Reachable only on pathological trial graphs whose search space
    /// exceeds the budget; surfaced as an error instead of a panic so a
    /// malformed trial cannot take down a whole matrix run.
    SolverGaveUp {
        /// Which matching stage gave up.
        stage: &'static str,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BenchmarkFailed { name, variant } => {
                write!(
                    f,
                    "benchmark `{name}` {variant} variant did not perform its target behaviour"
                )
            }
            PipelineError::Transform { source } => {
                write!(f, "transformation to datalog failed: {source}")
            }
            PipelineError::Store(e) => write!(f, "provenance store error: {e}"),
            PipelineError::NoConsistentTrials { variant, trials } => {
                write!(f, "no two consistent {variant} trials among {trials} runs")
            }
            PipelineError::BackgroundNotSubgraph => {
                write!(
                    f,
                    "background graph does not embed into the foreground graph"
                )
            }
            PipelineError::NotEnoughTrials(n) => {
                write!(f, "generalization needs at least 2 trials, got {n}")
            }
            PipelineError::SolverGaveUp { stage } => {
                write!(f, "exact solver exhausted its step budget during {stage}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Transform { source } => Some(source),
            PipelineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PipelineError {
    fn from(source: GraphError) -> Self {
        PipelineError::Transform { source }
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PipelineError::NoConsistentTrials {
            variant: "background",
            trials: 4,
        };
        assert_eq!(
            e.to_string(),
            "no two consistent background trials among 4 runs"
        );
        let e = PipelineError::NotEnoughTrials(1);
        assert!(e.to_string().contains("at least 2"));
        let e = PipelineError::SolverGaveUp {
            stage: "generalization",
        };
        assert!(e.to_string().contains("step budget"));
        assert!(e.to_string().contains("generalization"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
