//! Re-export of the scoped-thread parallel map.
//!
//! The primitive itself lives in [`provgraph::par`] so the solver layer
//! (`aspsolver`'s batch path) can use it without depending on this crate;
//! pipeline code keeps addressing it as `crate::par::par_map`.

pub use provgraph::par::par_map;
