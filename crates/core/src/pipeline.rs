//! The end-to-end ProvMark pipeline (paper Figure 3), with per-stage
//! timing instrumentation used to regenerate Figures 5–10.
//!
//! # Session lifecycle
//!
//! Every [`run_benchmark`] call owns one
//! [`CorpusSession`](provgraph::compiled::CorpusSession) spanning the
//! whole run: the background and foreground trials are compiled into it
//! exactly once during generalization (WL fingerprints are memoized at
//! that same moment), the generalized representatives are added at the
//! comparison boundary (their vocabulary is already interned, so that
//! compile is near-free), and the subgraph comparison runs over session
//! handles — every matching problem in the run shares one interner and
//! never re-interns or re-compiles a graph. Within the run, the repeated
//! solves go through the batch solver: similarity classification
//! confirms each class representative against all unclassified bucket
//! members with one prepared left-hand plan
//! ([`generalize::similarity_classes_in`]), and the comparison prepares
//! the background side once per cell ([`compare::compare_in`]). The
//! pipeline lowers back to [`PropertyGraph`] only where string
//! identifiers and mutable properties are the point: the generalized
//! representatives and the subtracted result graph handed to
//! [`crate::report`].
//!
//! [`run_matrix`] keeps one session *per cell* (cells run in parallel
//! and must stay independently reproducible), which is exactly the
//! per-run scope described above.

use std::time::{Duration, Instant};

use provgraph::compiled::CorpusSession;
use provgraph::{diff, PropertyGraph};

use crate::generalize::{self, PairStrategy};
use crate::suite::BenchSpec;
use crate::tool::{NativeOutput, ToolInstance};
use crate::{compare, BenchmarkOptions, PipelineError};

/// Wall-clock time spent in each pipeline stage (one benchmark run).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage 1: running programs under the recorder.
    pub recording: Duration,
    /// Stage 2: native output → Datalog property graphs.
    pub transformation: Duration,
    /// Stage 3: similarity classes + property generalization.
    pub generalization: Duration,
    /// Stage 4: subgraph matching + subtraction.
    pub comparison: Duration,
}

impl StageTimings {
    /// Total processing time excluding recording (the quantity plotted in
    /// Figures 5–10).
    pub fn processing_total(&self) -> Duration {
        self.transformation + self.generalization + self.comparison
    }

    /// Render as the original's `/tmp/time.log` line: four comma-separated
    /// second counts (appendix A.6.4).
    pub fn time_log_line(&self, tool: &str, syscall: &str) -> String {
        format!(
            "{tool},{syscall},{:.6},{:.6},{:.6},{:.6}",
            self.recording.as_secs_f64(),
            self.transformation.as_secs_f64(),
            self.generalization.as_secs_f64(),
            self.comparison.as_secs_f64()
        )
    }
}

/// Verdict of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchStatus {
    /// The recorder captured the target activity (nonempty result graph).
    Ok,
    /// Foreground and background were indistinguishable.
    Empty,
}

impl BenchStatus {
    /// `true` for [`BenchStatus::Ok`].
    pub fn is_ok(self) -> bool {
        matches!(self, BenchStatus::Ok)
    }

    /// Lowercase rendering as in Table 2.
    pub fn render(self) -> &'static str {
        match self {
            BenchStatus::Ok => "ok",
            BenchStatus::Empty => "empty",
        }
    }
}

/// Complete output of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// ok / empty verdict.
    pub status: BenchStatus,
    /// The benchmark result graph (target structure + dummy nodes).
    pub result: PropertyGraph,
    /// Generalized background graph.
    pub generalized_bg: PropertyGraph,
    /// Generalized foreground graph.
    pub generalized_fg: PropertyGraph,
    /// Per-stage wall-clock times.
    pub timings: StageTimings,
    /// Trials discarded as failed runs across both variants.
    pub discarded_trials: usize,
    /// Property-mismatch cost of the comparison matching.
    pub matching_cost: u64,
}

/// Record, transform and generalize one program variant, compiling its
/// trials into the run's shared session.
fn prepare_variant(
    tool: &mut ToolInstance,
    session: &mut CorpusSession,
    spec: &BenchSpec,
    opts: &BenchmarkOptions,
    variant: &'static str,
    seed_base: u64,
    timings: &mut StageTimings,
) -> Result<generalize::Generalized, PipelineError> {
    let program = if variant == "background" {
        spec.background()
    } else {
        spec.foreground()
    };
    let mut natives: Vec<NativeOutput> = Vec::with_capacity(opts.trials);
    let t0 = Instant::now();
    for i in 0..opts.trials {
        natives.push(tool.record(&program, seed_base + i as u64, opts.noise)?);
    }
    timings.recording += t0.elapsed();

    let t0 = Instant::now();
    let mut graphs: Vec<PropertyGraph> = Vec::with_capacity(natives.len());
    let mut unparseable = 0usize;
    for native in natives {
        match tool.transform(native) {
            Ok(g) => graphs.push(g),
            // With graph filtering on, unusable trials are discarded like
            // failed runs instead of aborting the whole benchmark.
            Err(PipelineError::Transform { .. }) if opts.filter_graphs => unparseable += 1,
            Err(e) => return Err(e),
        }
    }
    timings.transformation += t0.elapsed();

    let t0 = Instant::now();
    let mut generalized =
        generalize::generalize_trials_in(session, &graphs, PairStrategy::default(), variant)?;
    generalized.discarded += unparseable;
    timings.generalization += t0.elapsed();
    Ok(generalized)
}

/// Run the full four-stage pipeline for one benchmark under one tool.
///
/// # Errors
///
/// Propagates stage errors: benchmark failure, transformation errors, no
/// consistent trials, or a background graph that does not embed.
pub fn run_benchmark(
    tool: &mut ToolInstance,
    spec: &BenchSpec,
    opts: &BenchmarkOptions,
) -> Result<BenchmarkRun, PipelineError> {
    if opts.trials < 2 {
        return Err(PipelineError::NotEnoughTrials(opts.trials));
    }
    let mut timings = StageTimings::default();
    // One corpus session for the whole run: both variants' trials, the
    // generalized representatives and the comparison share one interner.
    let mut session = CorpusSession::new();
    // Distinct kernel seeds per variant so volatile values never repeat.
    let bg = prepare_variant(
        tool,
        &mut session,
        spec,
        opts,
        "background",
        opts.base_seed,
        &mut timings,
    )?;
    let fg = prepare_variant(
        tool,
        &mut session,
        spec,
        opts,
        "foreground",
        opts.base_seed + 10_000,
        &mut timings,
    )?;

    let t0 = Instant::now();
    // The generalized graphs are new (property-stripped) graphs, but
    // their entire vocabulary is already interned from the trials, so
    // adding them compiles without growing the symbol table.
    let bg_id = session.add(&bg.graph);
    let fg_id = session.add(&fg.graph);
    let cmp = compare::compare_in(&session, bg_id, fg_id, &fg.graph)?;
    timings.comparison += t0.elapsed();

    let status = if diff::effective_size(&cmp.result) == 0 {
        BenchStatus::Empty
    } else {
        BenchStatus::Ok
    };
    Ok(BenchmarkRun {
        name: spec.name.clone(),
        status,
        result: cmp.result,
        generalized_bg: bg.graph,
        generalized_fg: fg.graph,
        timings,
        discarded_trials: bg.discarded + fg.discarded,
        matching_cost: cmp.matching_cost,
    })
}

/// Measured outcome for one (syscall, tool) cell of the results matrix.
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// The run, when the pipeline completed.
    pub run: Option<BenchmarkRun>,
    /// Pipeline error text otherwise.
    pub error: Option<String>,
}

impl MeasuredCell {
    /// Render like a Table 2 cell (`ok`, `empty`, or `error: …`).
    pub fn render(&self) -> String {
        match (&self.run, &self.error) {
            (Some(run), _) => run.status.render().to_owned(),
            (None, Some(e)) => format!("error: {e}"),
            _ => "?".to_owned(),
        }
    }

    /// `true` when the pipeline completed with a nonempty result.
    pub fn is_ok(&self) -> bool {
        self.run.as_ref().is_some_and(|r| r.status.is_ok())
    }
}

/// Run the full Table 2 matrix: every Table 1 benchmark under every tool
/// (in its baseline configuration).
///
/// Benchmarks run **in parallel** across the machine's cores
/// ([`crate::par::par_map`]); each row instantiates its own tool handles,
/// so every cell is reproducible in isolation (the simulated kernel is
/// seeded per trial, and a fresh instance pins the session counter the
/// boot seed mixes in — a shared warm instance would make a cell's boot
/// ids depend on how many benchmarks ran before it).
///
/// `opus_db_iterations` overrides the simulated Neo4j startup cost so
/// tests can run the matrix quickly; pass `None` for the default.
pub fn run_matrix(
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
) -> Vec<(crate::suite::Expectation, [MeasuredCell; 3])> {
    use crate::tool::{Tool, ToolKind};
    let expectations = crate::suite::table2();
    let cells = crate::par::par_map(&expectations, |exp| {
        let spec = crate::suite::spec(exp.syscall).expect("table2 rows have specs");
        let cells: Vec<MeasuredCell> = ToolKind::all()
            .into_iter()
            .map(|kind| {
                let tool = match (kind, opus_db_iterations) {
                    (ToolKind::Opus, Some(iters)) => Tool::Opus(opus::OpusConfig {
                        db_startup_iterations: iters,
                        ..opus::OpusConfig::default()
                    }),
                    _ => Tool::baseline(kind),
                };
                let mut inst = tool.instantiate();
                match run_benchmark(&mut inst, &spec, opts) {
                    Ok(run) => MeasuredCell {
                        run: Some(run),
                        error: None,
                    },
                    Err(e) => MeasuredCell {
                        run: None,
                        error: Some(e.to_string()),
                    },
                }
            })
            .collect();
        let cells: [MeasuredCell; 3] = cells.try_into().expect("three tools");
        cells
    });
    expectations.into_iter().zip(cells).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use crate::tool::Tool;
    use opus::OpusConfig;

    fn fast_opus() -> Tool {
        Tool::Opus(OpusConfig {
            db_startup_iterations: 100,
            ..OpusConfig::default()
        })
    }

    #[test]
    fn creat_is_ok_for_all_three_tools() {
        let spec = suite::spec("creat").unwrap();
        for tool in [
            Tool::spade_baseline(),
            fast_opus(),
            Tool::camflow_baseline(),
        ] {
            let kind = tool.kind();
            let mut inst = tool.instantiate();
            let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
            assert!(run.status.is_ok(), "{:?} must record creat", kind);
            assert!(run.result.size() > 0);
        }
    }

    #[test]
    fn exit_is_empty_everywhere() {
        let spec = suite::spec("exit").unwrap();
        for tool in [
            Tool::spade_baseline(),
            fast_opus(),
            Tool::camflow_baseline(),
        ] {
            let kind = tool.kind();
            let mut inst = tool.instantiate();
            let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
            assert_eq!(
                run.status,
                BenchStatus::Empty,
                "{kind:?} exit must be empty (LP)"
            );
        }
    }

    #[test]
    fn volatile_properties_absent_from_result() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
        for n in run.generalized_bg.nodes() {
            assert!(
                !n.props.contains_key("seen time"),
                "volatile timestamp must be generalized away: {:?}",
                n
            );
        }
        for e in run.generalized_fg.edges() {
            assert!(!e.props.contains_key("time"));
        }
    }

    #[test]
    fn result_contains_target_structure_with_dummies() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
        // creat: new artifact node + WasGeneratedBy edge; the process node
        // is background and must appear only as a dummy.
        assert!(run
            .result
            .edges()
            .any(|e| e.label.as_str() == "WasGeneratedBy"));
        let dummies: Vec<_> = run
            .result
            .nodes()
            .filter(|n| provgraph::diff::is_dummy(&run.result, &n.id))
            .collect();
        assert!(!dummies.is_empty(), "process anchor should be a dummy");
    }

    #[test]
    fn noise_trials_are_filtered_with_enough_trials() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let opts = BenchmarkOptions {
            trials: 6,
            noise: true,
            ..BenchmarkOptions::default()
        };
        let run = run_benchmark(&mut inst, &spec, &opts).unwrap();
        assert!(run.status.is_ok());
        assert!(
            run.discarded_trials > 0,
            "noisy trials must be discarded as failed runs"
        );
    }

    #[test]
    fn one_trial_is_rejected() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let opts = BenchmarkOptions {
            trials: 1,
            ..BenchmarkOptions::default()
        };
        assert!(matches!(
            run_benchmark(&mut inst, &spec, &opts),
            Err(PipelineError::NotEnoughTrials(1))
        ));
    }

    #[test]
    fn timings_are_populated() {
        let spec = suite::spec("open").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
        assert!(run.timings.recording > Duration::ZERO);
        assert!(run.timings.processing_total() > Duration::ZERO);
        let line = run.timings.time_log_line("spg", "open");
        assert!(line.starts_with("spg,open,"));
        assert_eq!(line.split(',').count(), 6);
    }
}
