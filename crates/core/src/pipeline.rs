//! The end-to-end ProvMark pipeline (paper Figure 3), with per-stage
//! timing instrumentation used to regenerate Figures 5–10.
//!
//! # Session lifecycle
//!
//! Every [`run_benchmark`] call owns one
//! [`CorpusSession`](provgraph::compiled::CorpusSession) spanning the
//! whole run: the background and foreground trials are compiled into it
//! exactly once during generalization (WL fingerprints are memoized at
//! that same moment), the generalized representatives are added at the
//! comparison boundary (their vocabulary is already interned, so that
//! compile is near-free), and the subgraph comparison runs over session
//! handles — every matching problem in the run shares one interner and
//! never re-interns or re-compiles a graph. Within the run, the repeated
//! solves go through the batch solver: similarity classification
//! confirms each class representative against all unclassified bucket
//! members with one prepared left-hand plan
//! ([`generalize::similarity_classes_in`]), and the comparison prepares
//! the background side once per cell ([`compare::compare_in`]). A
//! session-level solve memo ([`aspsolver::SolveMemo`], one per run, on
//! by default via [`BenchmarkOptions::use_solve_memo`]) spans all those
//! stages, so dense searches replayed across batches, calls and
//! left-hand sides are looked up instead of re-run — with outcomes
//! byte-identical to memo-off runs, search statistics included. The
//! pipeline lowers back to [`PropertyGraph`] only where string
//! identifiers and mutable properties are the point: the generalized
//! representatives and the subtracted result graph handed to
//! [`crate::report`].
//!
//! [`run_matrix`] keeps one session *per cell* (cells run in parallel
//! and must stay independently reproducible), which is exactly the
//! per-run scope described above — but one solve memo is shared across
//! *all* cells: memo keys are interner-independent content hashes, so
//! an outcome cached under one cell's session is a valid (and
//! byte-identical) answer in every other. With
//! [`BenchmarkOptions::solve_cache`] set, that shared memo is warmed
//! from a persistent cache file before the fan-out and saved back
//! after, extending the replay across processes and restarts.

use std::time::{Duration, Instant};

use aspsolver::SolveMemo;
use provgraph::compiled::CorpusSession;
use provgraph::{diff, PropertyGraph};

use crate::generalize::{self, PairStrategy};
use crate::suite::BenchSpec;
use crate::tool::{NativeOutput, ToolInstance};
use crate::{compare, BenchmarkOptions, PipelineError};

/// Wall-clock time spent in each pipeline stage (one benchmark run).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Stage 1: running programs under the recorder.
    pub recording: Duration,
    /// Stage 2: native output → Datalog property graphs.
    pub transformation: Duration,
    /// Stage 3: similarity classes + property generalization.
    pub generalization: Duration,
    /// Stage 4: subgraph matching + subtraction.
    pub comparison: Duration,
}

impl StageTimings {
    /// Total processing time excluding recording (the quantity plotted in
    /// Figures 5–10).
    pub fn processing_total(&self) -> Duration {
        self.transformation + self.generalization + self.comparison
    }

    /// Render as the original's `/tmp/time.log` line: four comma-separated
    /// second counts (appendix A.6.4).
    pub fn time_log_line(&self, tool: &str, syscall: &str) -> String {
        format!(
            "{tool},{syscall},{:.6},{:.6},{:.6},{:.6}",
            self.recording.as_secs_f64(),
            self.transformation.as_secs_f64(),
            self.generalization.as_secs_f64(),
            self.comparison.as_secs_f64()
        )
    }
}

/// Verdict of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchStatus {
    /// The recorder captured the target activity (nonempty result graph).
    Ok,
    /// Foreground and background were indistinguishable.
    Empty,
}

impl BenchStatus {
    /// `true` for [`BenchStatus::Ok`].
    pub fn is_ok(self) -> bool {
        matches!(self, BenchStatus::Ok)
    }

    /// Lowercase rendering as in Table 2.
    pub fn render(self) -> &'static str {
        match self {
            BenchStatus::Ok => "ok",
            BenchStatus::Empty => "empty",
        }
    }
}

/// Complete output of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// ok / empty verdict.
    pub status: BenchStatus,
    /// The benchmark result graph (target structure + dummy nodes).
    pub result: PropertyGraph,
    /// Generalized background graph.
    pub generalized_bg: PropertyGraph,
    /// Generalized foreground graph.
    pub generalized_fg: PropertyGraph,
    /// Per-stage wall-clock times.
    pub timings: StageTimings,
    /// Trials discarded as failed runs across both variants.
    pub discarded_trials: usize,
    /// Property-mismatch cost of the comparison matching.
    pub matching_cost: u64,
}

/// Record, transform and generalize one program variant, compiling its
/// trials into the run's shared session. Stage spans (`record`,
/// `transform`, `generalize`) land on `tracer` under `parent`; with the
/// default disabled tracer every span site is a no-op branch.
#[allow(clippy::too_many_arguments)]
fn prepare_variant(
    tool: &mut ToolInstance,
    session: &mut CorpusSession,
    spec: &BenchSpec,
    opts: &BenchmarkOptions,
    variant: &'static str,
    seed_base: u64,
    timings: &mut StageTimings,
    memo: Option<&SolveMemo>,
    tracer: &provtrace::Tracer,
    parent: Option<provtrace::SpanId>,
) -> Result<generalize::Generalized, PipelineError> {
    let variant_field = || vec![("variant", provtrace::Field::from(variant))];
    let program = if variant == "background" {
        spec.background()
    } else {
        spec.foreground()
    };
    let mut natives: Vec<NativeOutput> = Vec::with_capacity(opts.trials);
    // provlint: allow(direct-clock) -- wall-clock stage timing feeds the timings telemetry only; canonical reports carry no time
    let t0 = Instant::now();
    let span = tracer.span_enter("record", parent, variant_field);
    for i in 0..opts.trials {
        natives.push(tool.record(&program, seed_base + i as u64, opts.noise)?);
    }
    tracer.span_exit_with("record", span, || {
        vec![("trials", provtrace::Field::from(opts.trials))]
    });
    timings.recording += t0.elapsed();

    // provlint: allow(direct-clock) -- wall-clock stage timing feeds the timings telemetry only; canonical reports carry no time
    let t0 = Instant::now();
    let span = tracer.span_enter("transform", parent, variant_field);
    let mut graphs: Vec<PropertyGraph> = Vec::with_capacity(natives.len());
    let mut unparseable = 0usize;
    for native in natives {
        match tool.transform(native) {
            Ok(g) => graphs.push(g),
            // With graph filtering on, unusable trials are discarded like
            // failed runs instead of aborting the whole benchmark.
            Err(PipelineError::Transform { .. }) if opts.filter_graphs => unparseable += 1,
            Err(e) => return Err(e),
        }
    }
    tracer.span_exit_with("transform", span, || {
        vec![("unparseable", provtrace::Field::from(unparseable))]
    });
    timings.transformation += t0.elapsed();

    // provlint: allow(direct-clock) -- wall-clock stage timing feeds the timings telemetry only; canonical reports carry no time
    let t0 = Instant::now();
    let span = tracer.span_enter("generalize", parent, variant_field);
    let mut generalized =
        generalize::generalize_trials_in(session, &graphs, PairStrategy::default(), variant, memo)?;
    generalized.discarded += unparseable;
    tracer.span_exit_with("generalize", span, || {
        vec![("discarded", provtrace::Field::from(generalized.discarded))]
    });
    timings.generalization += t0.elapsed();
    Ok(generalized)
}

/// The run's telemetry sink per [`BenchmarkOptions::trace`]: an enabled
/// tracer labelled `label` when a trace directory is configured, the
/// free disabled tracer otherwise.
fn trace_tracer(opts: &BenchmarkOptions, label: &str) -> provtrace::Tracer {
    if opts.trace.is_some() {
        provtrace::Tracer::new(label)
    } else {
        provtrace::Tracer::disabled()
    }
}

/// Flush `tracer` durably into the configured trace directory. Like the
/// solve cache, telemetry is an observer, never a correctness
/// dependency: failures are reported on stderr and ignored.
fn flush_trace(tracer: &provtrace::Tracer, opts: &BenchmarkOptions) {
    if let Some(dir) = opts.trace.as_ref() {
        if let Err(e) = tracer.write_to_dir(dir) {
            eprintln!("trace {}: {e}; trace not saved", dir.display());
        }
    }
}

/// Run the full four-stage pipeline for one benchmark under one tool.
///
/// With [`BenchmarkOptions::use_solve_memo`] on, one solve memo spans
/// the run; with [`BenchmarkOptions::solve_cache`] also set, the memo is
/// warmed from that cache file first and the merged contents are saved
/// back afterwards (a missing file is a cold start; a corrupt one is
/// reported on stderr and ignored). Results are byte-identical in every
/// case.
///
/// # Errors
///
/// Propagates stage errors: benchmark failure, transformation errors, no
/// consistent trials, or a background graph that does not embed.
pub fn run_benchmark(
    tool: &mut ToolInstance,
    spec: &BenchSpec,
    opts: &BenchmarkOptions,
) -> Result<BenchmarkRun, PipelineError> {
    // One solve memo for the whole run: similarity confirmation, the
    // generalization matching and the comparison all replay each
    // other's dense searches, across both variants. Outcomes are
    // byte-identical with the memo off.
    let tracer = trace_tracer(opts, "run");
    let memo = opts
        .use_solve_memo
        .then(|| SolveMemo::new().with_tracer(tracer.clone()));
    load_solve_cache(memo.as_ref(), opts);
    let span = tracer.span_enter("benchmark", None, || {
        vec![("name", provtrace::Field::from(spec.name.as_str()))]
    });
    let run = run_benchmark_traced(tool, spec, opts, memo.as_ref(), &tracer, span);
    tracer.span_exit_with("benchmark", span, || {
        vec![(
            "status",
            provtrace::Field::from(match &run {
                Ok(r) => r.status.render(),
                Err(_) => "error",
            }),
        )]
    });
    save_solve_cache(memo.as_ref(), opts);
    flush_trace(&tracer, opts);
    run
}

/// Warm `memo` from [`BenchmarkOptions::solve_cache`], when both are
/// present. A missing file is a normal cold start; a corrupt or
/// unreadable one is reported on stderr and ignored — the run proceeds
/// cold and produces the identical report either way.
fn load_solve_cache(memo: Option<&SolveMemo>, opts: &BenchmarkOptions) {
    if let (Some(memo), Some(path)) = (memo, opts.solve_cache.as_ref()) {
        if let Err(e) = aspsolver::load_cache_file(memo, path) {
            eprintln!("solve cache {}: {e}; starting cold", path.display());
        }
    }
}

/// Save the memo's merged contents back to
/// [`BenchmarkOptions::solve_cache`], when both are present. Failures
/// are reported on stderr and ignored — the cache is an accelerator,
/// never a correctness dependency.
fn save_solve_cache(memo: Option<&SolveMemo>, opts: &BenchmarkOptions) {
    if let (Some(memo), Some(path)) = (memo, opts.solve_cache.as_ref()) {
        if let Err(e) = aspsolver::write_cache_file(memo, path) {
            eprintln!("solve cache {}: {e}; not saved", path.display());
        }
    }
}

/// [`run_benchmark`] with a caller-owned [`SolveMemo`] (and no cache
/// file I/O). Because memo keys are content hashes — independent of any
/// session or process — one memo may be shared across many runs and
/// cells: the sharded and elastic matrix paths thread a process-wide
/// memo through here. With `None` the run solves memo-less. Outcomes
/// are byte-identical in every case, search statistics included.
///
/// # Errors
///
/// Propagates stage errors: benchmark failure, transformation errors, no
/// consistent trials, or a background graph that does not embed.
pub fn run_benchmark_with_memo(
    tool: &mut ToolInstance,
    spec: &BenchSpec,
    opts: &BenchmarkOptions,
    memo: Option<&SolveMemo>,
) -> Result<BenchmarkRun, PipelineError> {
    // Callers who attached a tracer to their memo get stage spans on
    // the same sink without widening this long-standing signature;
    // memo-less callers run untraced at this layer.
    let tracer = memo
        .map(|m| m.tracer().clone())
        .unwrap_or_else(provtrace::Tracer::disabled);
    run_benchmark_traced(tool, spec, opts, memo, &tracer, None)
}

/// [`run_benchmark_with_memo`] with an explicit telemetry sink and
/// parent span: stage spans (`record` / `transform` / `generalize` per
/// variant, `compare`) are parented under `parent` (a `cell` span in
/// the matrix runners). Tracing never changes outcomes; with a disabled
/// tracer every instrumentation site is one branch.
///
/// # Errors
///
/// Same contract as [`run_benchmark_with_memo`].
pub fn run_benchmark_traced(
    tool: &mut ToolInstance,
    spec: &BenchSpec,
    opts: &BenchmarkOptions,
    memo: Option<&SolveMemo>,
    tracer: &provtrace::Tracer,
    parent: Option<provtrace::SpanId>,
) -> Result<BenchmarkRun, PipelineError> {
    if opts.trials < 2 {
        return Err(PipelineError::NotEnoughTrials(opts.trials));
    }
    let mut timings = StageTimings::default();
    // One corpus session for the whole run: both variants' trials, the
    // generalized representatives and the comparison share one interner.
    let mut session = CorpusSession::new();
    // Distinct kernel seeds per variant so volatile values never repeat.
    let bg = prepare_variant(
        tool,
        &mut session,
        spec,
        opts,
        "background",
        opts.base_seed,
        &mut timings,
        memo,
        tracer,
        parent,
    )?;
    let fg = prepare_variant(
        tool,
        &mut session,
        spec,
        opts,
        "foreground",
        opts.base_seed + 10_000,
        &mut timings,
        memo,
        tracer,
        parent,
    )?;

    // provlint: allow(direct-clock) -- wall-clock stage timing feeds the timings telemetry only; canonical reports carry no time
    let t0 = Instant::now();
    let span = tracer.span_enter("compare", parent, Vec::new);
    // The generalized graphs are new (property-stripped) graphs, but
    // their entire vocabulary is already interned from the trials, so
    // adding them compiles without growing the symbol table.
    let bg_id = session.add(&bg.graph);
    let fg_id = session.add(&fg.graph);
    let cmp = compare::compare_in(&session, bg_id, fg_id, &fg.graph, memo)?;
    tracer.span_exit_with("compare", span, || {
        vec![("matching_cost", provtrace::Field::from(cmp.matching_cost))]
    });
    timings.comparison += t0.elapsed();

    let status = if diff::effective_size(&cmp.result) == 0 {
        BenchStatus::Empty
    } else {
        BenchStatus::Ok
    };
    Ok(BenchmarkRun {
        name: spec.name.clone(),
        status,
        result: cmp.result,
        generalized_bg: bg.graph,
        generalized_fg: fg.graph,
        timings,
        discarded_trials: bg.discarded + fg.discarded,
        matching_cost: cmp.matching_cost,
    })
}

/// Measured outcome for one (syscall, tool) cell of the results matrix.
#[derive(Debug, Clone)]
pub struct MeasuredCell {
    /// The run, when the pipeline completed.
    pub run: Option<BenchmarkRun>,
    /// Pipeline error text otherwise.
    pub error: Option<String>,
}

impl MeasuredCell {
    /// Render like a Table 2 cell (`ok`, `empty`, or `error: …`).
    pub fn render(&self) -> String {
        match (&self.run, &self.error) {
            (Some(run), _) => run.status.render().to_owned(),
            (None, Some(e)) => format!("error: {e}"),
            _ => "?".to_owned(),
        }
    }

    /// `true` when the pipeline completed with a nonempty result.
    pub fn is_ok(&self) -> bool {
        self.run.as_ref().is_some_and(|r| r.status.is_ok())
    }
}

/// Run the full Table 2 matrix: every Table 1 benchmark under every tool
/// (in its baseline configuration).
///
/// Benchmarks run **in parallel** across the machine's cores
/// ([`crate::par::par_map`]); each row instantiates its own tool handles,
/// so every cell is reproducible in isolation (the simulated kernel is
/// seeded per trial, and a fresh instance pins the session counter the
/// boot seed mixes in — a shared warm instance would make a cell's boot
/// ids depend on how many benchmarks ran before it).
///
/// `opus_db_iterations` overrides the simulated Neo4j startup cost so
/// tests can run the matrix quickly; pass `None` for the default.
///
/// This is the single-process convenience wrapper over the sharded
/// execution path: [`plan_matrix_shards`] → [`run_matrix_cells`] →
/// [`merge_matrix_summaries`] run the same matrix split across worker
/// processes (or hosts) and reassemble the identical report.
pub fn run_matrix(
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
) -> Vec<(crate::suite::Expectation, [MeasuredCell; 3])> {
    let all: Vec<String> = crate::suite::table2()
        .iter()
        .map(|exp| exp.syscall.to_owned())
        .collect();
    // provlint: allow(panic-in-lib) -- rows come straight from the static table2; lookup cannot fail
    run_matrix_cells(&all, opts, opus_db_iterations).expect("table2 rows are known benchmarks")
}

// ---------------------------------------------------------------------
// Sharded matrix execution: plan / execute / merge
// ---------------------------------------------------------------------

/// One planned shard of the Table 2 matrix: a self-describing subset of
/// rows for one worker to execute.
///
/// Rows are assigned round-robin by canonical position, so shard sizes
/// differ by at most one and adjacent (similar-cost) rows spread across
/// workers. The merge step reassembles canonical order regardless of
/// how the plan distributed or the workers finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixShard {
    /// Position of this shard within the plan (`0..shard_count`).
    pub shard_index: usize,
    /// Total number of shards in the plan.
    pub shard_count: usize,
    /// Syscall names of the rows this shard executes.
    pub syscalls: Vec<String>,
}

/// Split the Table 2 matrix into `shard_count` self-describing shards.
///
/// # Errors
///
/// [`PipelineError::InvalidShardCount`] when `shard_count` is zero or
/// exceeds the number of matrix rows (which would plan empty workers —
/// almost certainly a misconfiguration).
pub fn plan_matrix_shards(shard_count: usize) -> Result<Vec<MatrixShard>, PipelineError> {
    let rows = crate::suite::table2();
    if shard_count == 0 || shard_count > rows.len() {
        return Err(PipelineError::InvalidShardCount {
            count: shard_count,
            rows: rows.len(),
        });
    }
    let mut shards: Vec<MatrixShard> = (0..shard_count)
        .map(|shard_index| MatrixShard {
            shard_index,
            shard_count,
            syscalls: Vec::new(),
        })
        .collect();
    for (i, exp) in rows.iter().enumerate() {
        shards[i % shard_count]
            .syscalls
            .push(exp.syscall.to_owned());
    }
    Ok(shards)
}

/// Plan a single shard of a `shard_count`-way split.
///
/// # Errors
///
/// [`PipelineError::InvalidShardCount`] /
/// [`PipelineError::InvalidShardIndex`] on malformed `--shards` /
/// `--shard-index` combinations.
pub fn plan_matrix_shard(
    shard_count: usize,
    shard_index: usize,
) -> Result<MatrixShard, PipelineError> {
    let shards = plan_matrix_shards(shard_count)?;
    shards
        .into_iter()
        .nth(shard_index)
        .ok_or(PipelineError::InvalidShardIndex {
            index: shard_index,
            count: shard_count,
        })
}

/// Execute a subset of Table 2 rows (the *execute* step of the sharded
/// matrix path). Rows run in parallel exactly as in [`run_matrix`]; each
/// cell instantiates its own tool handles, so a shard's cells are
/// identical to the same cells of a single-process run.
///
/// # Errors
///
/// [`PipelineError::UnknownBenchmark`] when a name is not a Table 2 row
/// (per-cell pipeline errors are *reported in the cell*, not raised —
/// same contract as [`run_matrix`]).
pub fn run_matrix_cells(
    syscalls: &[String],
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
) -> Result<Vec<(crate::suite::Expectation, [MeasuredCell; 3])>, PipelineError> {
    use crate::tool::ToolKind;
    let table = crate::suite::table2();
    let expectations: Vec<crate::suite::Expectation> = syscalls
        .iter()
        .map(|name| {
            table
                .iter()
                .find(|exp| exp.syscall == name)
                .copied()
                .ok_or_else(|| PipelineError::UnknownBenchmark { name: name.clone() })
        })
        .collect::<Result<_, _>>()?;
    // One process-wide memo shared by every cell: memo keys are content
    // hashes, valid across the per-cell sessions, so cross-cell replays
    // (the same background trials recur in every row) are lookups. With
    // a cache path the memo is warmed once before the fan-out and the
    // merged contents saved once after — no per-cell file traffic.
    let tracer = trace_tracer(opts, "matrix");
    let memo = opts
        .use_solve_memo
        .then(|| SolveMemo::new().with_tracer(tracer.clone()));
    load_solve_cache(memo.as_ref(), opts);
    let phase = tracer.span_enter("phase.execute", None, || {
        vec![("rows", provtrace::Field::from(expectations.len()))]
    });
    let cells = crate::par::par_map(&expectations, |exp| {
        // provlint: allow(panic-in-lib) -- callers resolve expectations from table2 before this phase
        let spec = crate::suite::spec(exp.syscall).expect("table2 rows have specs");
        let row = tracer.span_enter("row", phase, || {
            vec![("syscall", provtrace::Field::from(exp.syscall))]
        });
        let cells: Vec<MeasuredCell> = ToolKind::all()
            .into_iter()
            .map(|kind| {
                measure_cell(
                    &spec,
                    kind,
                    opts,
                    opus_db_iterations,
                    memo.as_ref(),
                    &tracer,
                    row,
                )
            })
            .collect();
        // provlint: allow(panic-in-lib) -- ToolKind::all() is a fixed three-element array
        let cells: [MeasuredCell; 3] = cells.try_into().expect("three tools");
        tracer.span_exit("row", row);
        cells
    });
    tracer.span_exit("phase.execute", phase);
    save_solve_cache(memo.as_ref(), opts);
    flush_trace(&tracer, opts);
    Ok(expectations.into_iter().zip(cells).collect())
}

/// Measure one (benchmark, tool) cell: build the tool exactly as the
/// full-matrix path does, instantiate a fresh handle, and run the
/// pipeline. Each cell is a pure function of `(spec, kind, opts,
/// opus_db_iterations)` — which is what makes per-cell elastic
/// execution byte-identical to per-row and single-process runs. The
/// memo (any memo, warm or cold) never changes that function's value,
/// only how much of it is re-derived.
fn measure_cell(
    spec: &crate::suite::BenchSpec,
    kind: crate::tool::ToolKind,
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
    memo: Option<&SolveMemo>,
    tracer: &provtrace::Tracer,
    parent: Option<provtrace::SpanId>,
) -> MeasuredCell {
    use crate::tool::{Tool, ToolKind};
    let tool = match (kind, opus_db_iterations) {
        (ToolKind::Opus, Some(iters)) => Tool::Opus(opus::OpusConfig {
            db_startup_iterations: iters,
            ..opus::OpusConfig::default()
        }),
        _ => Tool::baseline(kind),
    };
    let span = tracer.span_enter("cell", parent, || {
        vec![
            ("syscall", provtrace::Field::from(spec.name.as_str())),
            ("tool", provtrace::Field::from(kind.name())),
        ]
    });
    let mut inst = tool.instantiate();
    let cell = match run_benchmark_traced(&mut inst, spec, opts, memo, tracer, span) {
        Ok(run) => MeasuredCell {
            run: Some(run),
            error: None,
        },
        Err(e) => MeasuredCell {
            run: None,
            error: Some(e.to_string()),
        },
    };
    tracer.span_exit_with("cell", span, || {
        vec![("status", provtrace::Field::from(cell.render()))]
    });
    cell
}

/// Execute a single matrix cell — one `(syscall, tool column)` pair —
/// and summarize it. This is the unit of work the elastic shard runner
/// dispatches to workers; it reuses the exact tool-construction and
/// measurement path of [`run_matrix_cells`], so a matrix reassembled
/// from per-cell outcomes is byte-identical to a single-process run.
///
/// # Errors
///
/// [`PipelineError::UnknownBenchmark`] when `syscall` is not a Table 2
/// row; [`PipelineError::UnknownTool`] when `tool` is not a matrix
/// column (0 = SPADE, 1 = OPUS, 2 = CamFlow). Per-cell *pipeline*
/// errors are reported inside the [`CellOutcome`], not raised — same
/// contract as the row-level runners.
pub fn run_matrix_cell(
    syscall: &str,
    tool: usize,
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
) -> Result<CellOutcome, PipelineError> {
    // A per-cell memo, warmed read-only from the cache file when one is
    // configured (never saved back — a one-cell unit of work doesn't
    // own the artifact; the elastic supervisor publishes merged state).
    let memo = opts.use_solve_memo.then(SolveMemo::new);
    load_solve_cache(memo.as_ref(), opts);
    run_matrix_cell_with_memo(syscall, tool, opts, opus_db_iterations, memo.as_ref())
}

/// [`run_matrix_cell`] with a caller-owned [`SolveMemo`] (and no cache
/// file I/O): the elastic worker loop threads one worker-lifetime memo
/// — warmed once from the shared cache directory — through every cell
/// it claims. Outcomes are byte-identical with any memo or none.
///
/// # Errors
///
/// Same contract as [`run_matrix_cell`].
pub fn run_matrix_cell_with_memo(
    syscall: &str,
    tool: usize,
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
    memo: Option<&SolveMemo>,
) -> Result<CellOutcome, PipelineError> {
    // As in [`run_benchmark_with_memo`]: a tracer attached to the memo
    // carries the telemetry without widening this signature.
    let tracer = memo
        .map(|m| m.tracer().clone())
        .unwrap_or_else(provtrace::Tracer::disabled);
    run_matrix_cell_traced(syscall, tool, opts, opus_db_iterations, memo, &tracer, None)
}

/// [`run_matrix_cell_with_memo`] with an explicit telemetry sink and
/// parent span: the elastic worker loop parents each claimed cell's
/// `cell` span (and the stage spans beneath it) under its own claim
/// context. Outcomes are byte-identical traced or not.
///
/// # Errors
///
/// Same contract as [`run_matrix_cell`].
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_cell_traced(
    syscall: &str,
    tool: usize,
    opts: &BenchmarkOptions,
    opus_db_iterations: Option<u64>,
    memo: Option<&SolveMemo>,
    tracer: &provtrace::Tracer,
    parent: Option<provtrace::SpanId>,
) -> Result<CellOutcome, PipelineError> {
    use crate::tool::ToolKind;
    let tools = ToolKind::all();
    let kind = *tools.get(tool).ok_or(PipelineError::UnknownTool {
        index: tool,
        tools: tools.len(),
    })?;
    let spec = crate::suite::spec(syscall).ok_or_else(|| PipelineError::UnknownBenchmark {
        name: syscall.to_owned(),
    })?;
    Ok(CellOutcome::of(&measure_cell(
        &spec,
        kind,
        opts,
        opus_db_iterations,
        memo,
        tracer,
        parent,
    )))
}

/// Typed record of one matrix cell abandoned by the elastic shard
/// runner: every dispatch ended in a dead worker, stale heartbeat or
/// torn artifact, and the retry budget ran out.
///
/// Carried by [`PipelineError::CellsExhausted`]; the merged report
/// renders the cell via [`CellFailure::lost_outcome`] instead of
/// silently omitting the row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Table 2 row (benchmark syscall name).
    pub syscall: String,
    /// Tool column index (0 = SPADE, 1 = OPUS, 2 = CamFlow).
    pub tool: usize,
    /// How many dispatch attempts were made before giving up.
    pub attempts: u32,
    /// Why the last attempt was declared dead (stale heartbeat, torn
    /// artifact, …).
    pub detail: String,
}

impl CellFailure {
    /// Human name of the tool column (`"SPADE"` / `"OPUS"` /
    /// `"CamFlow"`), or the raw index if out of range.
    pub fn tool_name(&self) -> String {
        crate::tool::ToolKind::all()
            .get(self.tool)
            .map(|kind| kind.name().to_owned())
            .unwrap_or_else(|| format!("tool#{}", self.tool))
    }

    /// The placeholder outcome recorded in the merged matrix for this
    /// cell: a non-completed status that renders as a mismatch, so a
    /// degraded report is visibly degraded.
    pub fn lost_outcome(&self) -> CellOutcome {
        CellOutcome {
            status: format!(
                "lost: no worker completed this cell in {} attempt(s) ({})",
                self.attempts, self.detail
            ),
            matching_cost: None,
            discarded_trials: None,
            result_size: None,
        }
    }
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "`{}`/{} abandoned after {} attempt(s): {}",
            self.syscall,
            self.tool_name(),
            self.attempts,
            self.detail
        )
    }
}

/// Deterministically reassemble per-cell outcomes into the full matrix
/// (the merge step of the *elastic* sharded path, finer-grained than
/// [`merge_matrix_summaries`]).
///
/// Output is in canonical Table 2 order with canonical tool columns
/// regardless of completion order, so a report rendered from it is
/// byte-identical to the single-process run's whenever every cell
/// completed.
///
/// # Errors
///
/// [`PipelineError::UnknownTool`] on an out-of-range tool column;
/// [`PipelineError::ShardMerge`] on a foreign row, a duplicate cell, or
/// missing cells (listed as `syscall/tool`) — the merge never emits a
/// silently partial report.
pub fn merge_matrix_cells(
    cells: impl IntoIterator<Item = (String, usize, CellOutcome)>,
) -> Result<Vec<(crate::suite::Expectation, [CellOutcome; 3])>, PipelineError> {
    let table = crate::suite::table2();
    let tools = crate::tool::ToolKind::all().len();
    let mut by_cell: std::collections::BTreeMap<(String, usize), CellOutcome> = Default::default();
    for (syscall, tool, outcome) in cells {
        if tool >= tools {
            return Err(PipelineError::UnknownTool { index: tool, tools });
        }
        if !table.iter().any(|exp| exp.syscall == syscall) {
            return Err(PipelineError::ShardMerge {
                detail: format!("foreign row `{syscall}` is not a Table 2 benchmark"),
            });
        }
        if by_cell.insert((syscall.clone(), tool), outcome).is_some() {
            return Err(PipelineError::ShardMerge {
                detail: format!("cell `{syscall}`/{tool} appears in more than one result"),
            });
        }
    }
    let mut rows = Vec::with_capacity(table.len());
    let mut missing: Vec<String> = Vec::new();
    for exp in table {
        let mut row: Vec<CellOutcome> = Vec::with_capacity(tools);
        for tool in 0..tools {
            match by_cell.remove(&(exp.syscall.to_owned(), tool)) {
                Some(outcome) => row.push(outcome),
                None => missing.push(format!("{}/{tool}", exp.syscall)),
            }
        }
        if let Ok(row) = <[CellOutcome; 3]>::try_from(row) {
            rows.push((exp, row));
        }
    }
    if !missing.is_empty() {
        return Err(PipelineError::ShardMerge {
            detail: format!(
                "{} cell(s) missing from the results: {}",
                missing.len(),
                missing.join(", ")
            ),
        });
    }
    Ok(rows)
}

/// Deterministic, serializable summary of one measured matrix cell —
/// the unit the sharded matrix runner ships between processes.
///
/// Everything here is a pure function of the cell's (seeded,
/// deterministic) pipeline run: no timings, no host state. Two runs of
/// the same cell on any machines produce equal summaries, which is what
/// makes the merged shard report byte-identical to the single-process
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// `ok` / `empty` / `error: …`, exactly as [`MeasuredCell::render`].
    pub status: String,
    /// Property-mismatch cost of the comparison matching (`None` when
    /// the cell's pipeline errored).
    pub matching_cost: Option<u64>,
    /// Trials discarded as failed runs (`None` on pipeline error).
    pub discarded_trials: Option<usize>,
    /// Node + edge count of the benchmark result graph (`None` on
    /// pipeline error).
    pub result_size: Option<usize>,
}

impl CellOutcome {
    /// Summarize a measured cell.
    pub fn of(cell: &MeasuredCell) -> CellOutcome {
        CellOutcome {
            status: cell.render(),
            matching_cost: cell.run.as_ref().map(|r| r.matching_cost),
            discarded_trials: cell.run.as_ref().map(|r| r.discarded_trials),
            result_size: cell.run.as_ref().map(|r| r.result.size()),
        }
    }

    /// `true` when the pipeline completed with a nonempty result.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// `true` when the pipeline completed at all (ok or empty).
    pub fn completed(&self) -> bool {
        self.matching_cost.is_some()
    }
}

/// One summarized matrix row: the syscall plus the three tool outcomes
/// in canonical order (SPADE, OPUS, CamFlow).
pub type SummaryRow = (String, [CellOutcome; 3]);

/// Summarize executed rows into the serializable interchange form.
pub fn summarize_rows(rows: &[(crate::suite::Expectation, [MeasuredCell; 3])]) -> Vec<SummaryRow> {
    rows.iter()
        .map(|(exp, cells)| {
            (
                exp.syscall.to_owned(),
                [
                    CellOutcome::of(&cells[0]),
                    CellOutcome::of(&cells[1]),
                    CellOutcome::of(&cells[2]),
                ],
            )
        })
        .collect()
}

/// Deterministically merge shard partial results back into the full
/// matrix (the *merge* step of the sharded path).
///
/// The output is in canonical Table 2 order regardless of how rows were
/// distributed across shards or in which order workers finished, so a
/// report rendered from it is byte-identical to the single-process
/// run's.
///
/// # Errors
///
/// [`PipelineError::ShardMerge`] when the parts contain a row that is
/// not a Table 2 benchmark, the same row twice, or fail to cover the
/// matrix — the merge never emits a silently partial report.
pub fn merge_matrix_summaries(
    parts: impl IntoIterator<Item = Vec<SummaryRow>>,
) -> Result<Vec<(crate::suite::Expectation, [CellOutcome; 3])>, PipelineError> {
    let table = crate::suite::table2();
    let mut by_name: std::collections::BTreeMap<String, [CellOutcome; 3]> = Default::default();
    for (syscall, cells) in parts.into_iter().flatten() {
        if !table.iter().any(|exp| exp.syscall == syscall) {
            return Err(PipelineError::ShardMerge {
                detail: format!("foreign row `{syscall}` is not a Table 2 benchmark"),
            });
        }
        if by_name.insert(syscall.clone(), cells).is_some() {
            return Err(PipelineError::ShardMerge {
                detail: format!("row `{syscall}` appears in more than one shard result"),
            });
        }
    }
    let mut rows = Vec::with_capacity(table.len());
    let mut missing: Vec<&str> = Vec::new();
    for exp in table {
        match by_name.remove(exp.syscall) {
            Some(cells) => rows.push((exp, cells)),
            None => missing.push(exp.syscall),
        }
    }
    if !missing.is_empty() {
        return Err(PipelineError::ShardMerge {
            detail: format!(
                "{} row(s) missing from the shard results: {}",
                missing.len(),
                missing.join(", ")
            ),
        });
    }
    Ok(rows)
}

/// Driver for a sharded matrix run: plan `shard_count` shards, execute
/// each through `worker` — typically a closure that spawns a worker
/// *process* of the current executable and parses its partial-results
/// artifact (see the `provshard` crate), but in-process workers work
/// too — and deterministically merge the partial results.
///
/// Workers run concurrently via [`crate::par::par_map`], so with a
/// process-spawning worker this drives N local worker processes at
/// once.
///
/// # Errors
///
/// Planning errors, the first worker error (by shard order), or a merge
/// error when the partials do not reassemble the full matrix.
pub fn run_matrix_sharded<W>(
    shard_count: usize,
    worker: W,
) -> Result<Vec<(crate::suite::Expectation, [CellOutcome; 3])>, PipelineError>
where
    W: Fn(&MatrixShard) -> Result<Vec<SummaryRow>, PipelineError> + Sync,
{
    let shards = plan_matrix_shards(shard_count)?;
    let parts = crate::par::par_map(&shards, &worker);
    let mut collected = Vec::with_capacity(parts.len());
    for part in parts {
        collected.push(part?);
    }
    merge_matrix_summaries(collected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use crate::tool::Tool;
    use opus::OpusConfig;

    fn fast_opus() -> Tool {
        Tool::Opus(OpusConfig {
            db_startup_iterations: 100,
            ..OpusConfig::default()
        })
    }

    #[test]
    fn creat_is_ok_for_all_three_tools() {
        let spec = suite::spec("creat").unwrap();
        for tool in [
            Tool::spade_baseline(),
            fast_opus(),
            Tool::camflow_baseline(),
        ] {
            let kind = tool.kind();
            let mut inst = tool.instantiate();
            let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
            assert!(run.status.is_ok(), "{:?} must record creat", kind);
            assert!(run.result.size() > 0);
        }
    }

    #[test]
    fn exit_is_empty_everywhere() {
        let spec = suite::spec("exit").unwrap();
        for tool in [
            Tool::spade_baseline(),
            fast_opus(),
            Tool::camflow_baseline(),
        ] {
            let kind = tool.kind();
            let mut inst = tool.instantiate();
            let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
            assert_eq!(
                run.status,
                BenchStatus::Empty,
                "{kind:?} exit must be empty (LP)"
            );
        }
    }

    #[test]
    fn volatile_properties_absent_from_result() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
        for n in run.generalized_bg.nodes() {
            assert!(
                !n.props.contains_key("seen time"),
                "volatile timestamp must be generalized away: {:?}",
                n
            );
        }
        for e in run.generalized_fg.edges() {
            assert!(!e.props.contains_key("time"));
        }
    }

    #[test]
    fn result_contains_target_structure_with_dummies() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
        // creat: new artifact node + WasGeneratedBy edge; the process node
        // is background and must appear only as a dummy.
        assert!(run
            .result
            .edges()
            .any(|e| e.label.as_str() == "WasGeneratedBy"));
        let dummies: Vec<_> = run
            .result
            .nodes()
            .filter(|n| provgraph::diff::is_dummy(&run.result, &n.id))
            .collect();
        assert!(!dummies.is_empty(), "process anchor should be a dummy");
    }

    #[test]
    fn memo_on_run_identical_to_memo_off() {
        // The solve memo must be invisible in every run observable:
        // status, result graph, generalized graphs, matching cost,
        // discarded-trial count.
        let spec = suite::spec("creat").unwrap();
        let on = BenchmarkOptions::default();
        assert!(on.use_solve_memo, "memo is the default");
        let off = BenchmarkOptions {
            use_solve_memo: false,
            ..BenchmarkOptions::default()
        };
        for tool in [
            Tool::spade_baseline(),
            fast_opus(),
            Tool::camflow_baseline(),
        ] {
            let kind = tool.kind();
            let run_on = run_benchmark(&mut tool.clone().instantiate(), &spec, &on).unwrap();
            let run_off = run_benchmark(&mut tool.instantiate(), &spec, &off).unwrap();
            assert_eq!(run_on.status, run_off.status, "{kind:?}");
            assert_eq!(run_on.result, run_off.result, "{kind:?}");
            assert_eq!(run_on.generalized_bg, run_off.generalized_bg, "{kind:?}");
            assert_eq!(run_on.generalized_fg, run_off.generalized_fg, "{kind:?}");
            assert_eq!(run_on.matching_cost, run_off.matching_cost, "{kind:?}");
            assert_eq!(
                run_on.discarded_trials, run_off.discarded_trials,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn cache_cold_warm_and_off_runs_are_identical() {
        // The persistent solve cache must be invisible in every run
        // observable, whether the run starts cold (no cache file), warm
        // (file populated by a previous run) or with the cache — or the
        // whole memo — disabled; and a corrupt cache file must degrade
        // to a cold start, not an error or a different answer.
        let dir = std::env::temp_dir().join(format!("provmark-core-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("solve.cache");
        let spec = suite::spec("creat").unwrap();
        let cached = BenchmarkOptions {
            solve_cache: Some(cache.clone()),
            ..BenchmarkOptions::default()
        };
        let uncached = BenchmarkOptions::default();
        let observables = |run: &BenchmarkRun| {
            (
                run.status,
                run.result.clone(),
                run.generalized_bg.clone(),
                run.generalized_fg.clone(),
                run.matching_cost,
                run.discarded_trials,
            )
        };
        let run_with = |opts: &BenchmarkOptions| {
            let mut inst = Tool::spade_baseline().instantiate();
            observables(&run_benchmark(&mut inst, &spec, opts).unwrap())
        };
        let cold = run_with(&cached);
        assert!(cache.is_file(), "a cold cached run must save its memo back");
        let warm = run_with(&cached);
        let off = run_with(&uncached);
        assert_eq!(cold, warm, "cold and warm cached runs must agree");
        assert_eq!(cold, off, "cached and uncached runs must agree");
        std::fs::write(&cache, b"not a solve cache at all").unwrap();
        let corrupt = run_with(&cached);
        assert_eq!(cold, corrupt, "a corrupt cache must mean a cold start");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noise_trials_are_filtered_with_enough_trials() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let opts = BenchmarkOptions {
            trials: 6,
            noise: true,
            ..BenchmarkOptions::default()
        };
        let run = run_benchmark(&mut inst, &spec, &opts).unwrap();
        assert!(run.status.is_ok());
        assert!(
            run.discarded_trials > 0,
            "noisy trials must be discarded as failed runs"
        );
    }

    #[test]
    fn one_trial_is_rejected() {
        let spec = suite::spec("creat").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let opts = BenchmarkOptions {
            trials: 1,
            ..BenchmarkOptions::default()
        };
        assert!(matches!(
            run_benchmark(&mut inst, &spec, &opts),
            Err(PipelineError::NotEnoughTrials(1))
        ));
    }

    #[test]
    fn shard_plan_covers_matrix_exactly_once() {
        let rows = crate::suite::table2();
        for shard_count in [1, 2, 3, 7, rows.len()] {
            let shards = plan_matrix_shards(shard_count).unwrap();
            assert_eq!(shards.len(), shard_count);
            let mut seen: Vec<&str> = Vec::new();
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.shard_index, i);
                assert_eq!(shard.shard_count, shard_count);
                // Round-robin: sizes differ by at most one.
                assert!(shard.syscalls.len() >= rows.len() / shard_count);
                assert!(shard.syscalls.len() <= rows.len().div_ceil(shard_count));
                seen.extend(shard.syscalls.iter().map(String::as_str));
                assert_eq!(*shard, plan_matrix_shard(shard_count, i).unwrap());
            }
            seen.sort_unstable();
            let mut all: Vec<&str> = rows.iter().map(|e| e.syscall).collect();
            all.sort_unstable();
            assert_eq!(seen, all, "{shard_count} shards must partition the rows");
        }
    }

    #[test]
    fn shard_plan_validates_arguments() {
        let rows = crate::suite::table2().len();
        assert!(matches!(
            plan_matrix_shards(0),
            Err(PipelineError::InvalidShardCount { count: 0, .. })
        ));
        assert!(matches!(
            plan_matrix_shards(rows + 1),
            Err(PipelineError::InvalidShardCount { .. })
        ));
        assert!(matches!(
            plan_matrix_shard(3, 3),
            Err(PipelineError::InvalidShardIndex { index: 3, count: 3 })
        ));
        assert!(matches!(
            plan_matrix_shard(0, 0),
            Err(PipelineError::InvalidShardCount { .. })
        ));
        let err = plan_matrix_shard(3, 5).unwrap_err().to_string();
        assert!(err.contains("--shard-index"), "actionable: {err}");
    }

    #[test]
    fn unknown_benchmark_rejected_by_execute() {
        let err = run_matrix_cells(
            &["creat".to_owned(), "no_such_call".to_owned()],
            &BenchmarkOptions::default(),
            Some(100),
        )
        .unwrap_err();
        assert!(
            matches!(&err, PipelineError::UnknownBenchmark { name } if name == "no_such_call"),
            "{err}"
        );
    }

    #[test]
    fn merge_rejects_missing_duplicate_and_foreign_rows() {
        let ok_cell = || CellOutcome {
            status: "ok".to_owned(),
            matching_cost: Some(0),
            discarded_trials: Some(0),
            result_size: Some(3),
        };
        let row = |name: &str| (name.to_owned(), [ok_cell(), ok_cell(), ok_cell()]);
        // Missing almost everything.
        let err = merge_matrix_summaries([vec![row("creat")]]).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail } if detail.contains("missing")),
            "{err}"
        );
        // Duplicate across shards.
        let err = merge_matrix_summaries([vec![row("creat")], vec![row("creat")]]).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail } if detail.contains("more than one")),
            "{err}"
        );
        // Foreign row.
        let err = merge_matrix_summaries([vec![row("not_a_syscall")]]).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail } if detail.contains("foreign")),
            "{err}"
        );
    }

    #[test]
    fn sharded_subset_equals_single_process_cells() {
        // Two rows executed as two one-row "shards" must summarize
        // identically to the same rows from one execution (cells are
        // per-cell deterministic), and the merge must reorder to
        // canonical positions.
        let opts = BenchmarkOptions::default();
        let names: Vec<String> = vec!["creat".into(), "close".into()];
        let single = run_matrix_cells(&names, &opts, Some(100)).unwrap();
        let single_rows = summarize_rows(&single);
        let part_a = run_matrix_cells(&names[..1], &opts, Some(100)).unwrap();
        let part_b = run_matrix_cells(&names[1..], &opts, Some(100)).unwrap();
        let mut sharded = summarize_rows(&part_b);
        sharded.extend(summarize_rows(&part_a));
        for (name, cells) in &single_rows {
            let (_, other) = sharded
                .iter()
                .find(|(n, _)| n == name)
                .expect("row present");
            assert_eq!(cells, other, "{name}: sharded cell diverges");
        }
    }

    #[test]
    fn sharded_driver_runs_in_process_workers() {
        // The driver with an in-process worker must produce the merged
        // full matrix in canonical order. (The byte-identical subprocess
        // version lives in the provshard crate's integration tests.)
        let opts = BenchmarkOptions::default();
        let merged = run_matrix_sharded(11, |shard: &MatrixShard| {
            Ok(summarize_rows(&run_matrix_cells(
                &shard.syscalls,
                &opts,
                Some(100),
            )?))
        })
        .unwrap();
        let table = crate::suite::table2();
        assert_eq!(merged.len(), table.len());
        for ((exp, _), want) in merged.iter().zip(&table) {
            assert_eq!(exp.syscall, want.syscall, "canonical order restored");
        }
        // A worker error propagates.
        let err = run_matrix_sharded(3, |_shard| {
            Err::<Vec<SummaryRow>, _>(PipelineError::NotEnoughTrials(0))
        })
        .unwrap_err();
        assert!(matches!(err, PipelineError::NotEnoughTrials(0)));
    }

    #[test]
    fn per_cell_execution_matches_per_row_execution() {
        // `run_matrix_cell` (the elastic unit of work) must produce
        // outcomes equal to the same cells of a row execution — the
        // foundation of the byte-identity invariant for elastic runs.
        let opts = BenchmarkOptions::default();
        let names: Vec<String> = vec!["creat".into()];
        let row = summarize_rows(&run_matrix_cells(&names, &opts, Some(100)).unwrap());
        for tool in 0..3 {
            let cell = run_matrix_cell("creat", tool, &opts, Some(100)).unwrap();
            assert_eq!(cell, row[0].1[tool], "tool column {tool} diverges");
        }
    }

    #[test]
    fn cell_runner_validates_names_and_tools() {
        let opts = BenchmarkOptions::default();
        let err = run_matrix_cell("frobnicate", 0, &opts, Some(100)).unwrap_err();
        assert!(matches!(err, PipelineError::UnknownBenchmark { name } if name == "frobnicate"));
        let err = run_matrix_cell("creat", 3, &opts, Some(100)).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::UnknownTool { index: 3, tools: 3 }
        ));
    }

    #[test]
    fn cell_merge_restores_canonical_order_and_validates() {
        let ok = || CellOutcome {
            status: "ok".into(),
            matching_cost: Some(0),
            discarded_trials: Some(0),
            result_size: Some(1),
        };
        let table = crate::suite::table2();
        // Full coverage in reverse order merges into canonical order.
        let mut cells: Vec<(String, usize, CellOutcome)> = Vec::new();
        for exp in table.iter().rev() {
            for tool in (0..3).rev() {
                cells.push((exp.syscall.to_owned(), tool, ok()));
            }
        }
        let merged = merge_matrix_cells(cells).unwrap();
        assert_eq!(merged.len(), table.len());
        for ((exp, _), want) in merged.iter().zip(&table) {
            assert_eq!(exp.syscall, want.syscall, "canonical order restored");
        }

        let err = merge_matrix_cells(vec![("frobnicate".to_owned(), 0, ok())]).unwrap_err();
        assert!(matches!(err, PipelineError::ShardMerge { detail } if detail.contains("foreign")));

        let err = merge_matrix_cells(vec![("creat".to_owned(), 5, ok())]).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::UnknownTool { index: 5, tools: 3 }
        ));

        let err = merge_matrix_cells(vec![
            ("creat".to_owned(), 0, ok()),
            ("creat".to_owned(), 0, ok()),
        ])
        .unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail } if detail.contains("more than one")),
            "{err}"
        );

        let err = merge_matrix_cells(vec![("creat".to_owned(), 0, ok())]).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail }
                if detail.contains("missing") && detail.contains("creat/1")),
            "{err}"
        );
    }

    #[test]
    fn lost_outcome_is_visibly_degraded() {
        let failure = CellFailure {
            syscall: "creat".into(),
            tool: 1,
            attempts: 3,
            detail: "heartbeat stale".into(),
        };
        assert_eq!(failure.tool_name(), "OPUS");
        let lost = failure.lost_outcome();
        assert!(!lost.completed(), "lost cells must not count as completed");
        assert!(lost.status.starts_with("lost:"), "{}", lost.status);
        assert!(lost.status.contains("3 attempt(s)"), "{}", lost.status);
        let text = failure.to_string();
        assert!(text.contains("`creat`/OPUS"), "{text}");
    }

    #[test]
    fn timings_are_populated() {
        let spec = suite::spec("open").unwrap();
        let mut inst = Tool::spade_baseline().instantiate();
        let run = run_benchmark(&mut inst, &spec, &BenchmarkOptions::default()).unwrap();
        assert!(run.timings.recording > Duration::ZERO);
        assert!(run.timings.processing_total() > Duration::ZERO);
        let line = run.timings.time_log_line("spg", "open");
        assert!(line.starts_with("spg,open,"));
        assert_eq!(line.split(',').count(), 6);
    }
}
