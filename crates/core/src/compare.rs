//! Graph comparison (paper §3.5).
//!
//! The generalized background graph should embed into the generalized
//! foreground graph (recording is append-only); the embedding is found by
//! approximate subgraph isomorphism with property-mismatch cost
//! minimization (paper Listing 4), and the unmatched foreground remainder
//! — with dummy boundary nodes — is the benchmark result.
//!
//! The stage is session-aware: [`compare_in`] matches two members of a
//! [`CorpusSession`] (zero compile cost when the pipeline threads its
//! per-run session through), drives the subgraph solve through a
//! prepared left-hand plan ([`BatchSolver`]) so the background side of
//! the search is set up once per cell rather than once per solve, borrows
//! the matched identifiers straight out of the witness matching, and
//! lowers to a [`PropertyGraph`] only for the subtracted result graph.

use std::collections::BTreeSet;

use aspsolver::{find_subgraph, BatchSolver, Matching, Problem, SolveMemo, SolverConfig};
use provgraph::compiled::{CorpusSession, GraphId};
use provgraph::{diff, PropertyGraph};

use crate::PipelineError;

/// Result of the comparison stage.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The benchmark result graph: unmatched foreground structure plus
    /// dummy boundary nodes.
    pub result: PropertyGraph,
    /// Property-mismatch cost of the optimal embedding (0 when the
    /// background matched perfectly).
    pub matching_cost: u64,
}

impl Comparison {
    /// `true` when the recorder captured nothing for the target activity
    /// (the paper's "empty" cells in Table 2).
    pub fn is_empty(&self) -> bool {
        diff::effective_size(&self.result) == 0
    }
}

/// Match `background` into `foreground` and subtract it.
///
/// One-shot path: solves via [`find_subgraph`], whose engine compiles
/// both graphs against the warm per-thread interner (no session setup or
/// owned id arenas per call). The pipeline uses [`compare_in`] with its
/// per-run session instead, which amortizes even that compile.
///
/// # Errors
///
/// [`PipelineError::BackgroundNotSubgraph`] when no structure-preserving
/// embedding exists (the recording-monotonicity assumption failed — e.g.
/// when generalization picked a larger background than foreground,
/// paper §3.4).
pub fn compare(
    background: &PropertyGraph,
    foreground: &PropertyGraph,
) -> Result<Comparison, PipelineError> {
    let matching =
        find_subgraph(background, foreground).ok_or(PipelineError::BackgroundNotSubgraph)?;
    subtract_matched(foreground, &matching)
}

/// Match session member `background` into `foreground` and subtract it.
///
/// `foreground_graph` must be the property graph `foreground` was
/// compiled from; the result graph is carved out of it. The matched
/// identifiers are borrowed from the witness matching — nothing is cloned
/// per cell on the way to the subtraction.
///
/// The solve goes through [`batch_comparer`]'s prepared left-hand plan
/// (a batch of one here), consulting `memo` when given — a replayed
/// (background, foreground) core pair (regression replay, repeated
/// cells) is then served from the cache. Outcomes are identical to the
/// plain session path either way.
///
/// # Errors
///
/// Same contract as [`compare`].
pub fn compare_in(
    session: &CorpusSession,
    background: GraphId,
    foreground: GraphId,
    foreground_graph: &PropertyGraph,
    memo: Option<&SolveMemo>,
) -> Result<Comparison, PipelineError> {
    let matching = batch_comparer(session, background, memo)
        .solve_one(foreground)
        .matching
        .ok_or(PipelineError::BackgroundNotSubgraph)?;
    subtract_matched(foreground_graph, &matching)
}

/// A batched subgraph solver with `background` as the prepared left-hand
/// side: the comparison-stage entry point for checking one generalized
/// background against many foregrounds (regression replay over stored
/// results, future matrix sharding). [`compare_in`] is currently its
/// only in-tree caller — a batch of one; callers with several
/// foregrounds should keep the returned solver and use
/// [`BatchSolver::solve_batch`]. `memo`, when given, lets separate
/// batches (and other stages sharing it) replay equivalent dense solves.
pub fn batch_comparer<'s>(
    session: &'s CorpusSession,
    background: GraphId,
    memo: Option<&'s SolveMemo>,
) -> BatchSolver<'s> {
    BatchSolver::new(
        Problem::Subgraph,
        session,
        background,
        SolverConfig::default(),
    )
    .with_memo(memo)
}

/// Shared tail of both entry points: borrow the matched identifiers out
/// of the witness and subtract them from the foreground.
fn subtract_matched(
    foreground: &PropertyGraph,
    matching: &Matching,
) -> Result<Comparison, PipelineError> {
    let matched_nodes: BTreeSet<&str> = matching.node_map.values().map(String::as_str).collect();
    let matched_edges: BTreeSet<&str> = matching.edge_map.values().map(String::as_str).collect();
    let result = diff::subtract(foreground, &matched_nodes, &matched_edges)?;
    Ok(Comparison {
        result,
        matching_cost: matching.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bg() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node("p", "Process").unwrap();
        g.add_node("lib", "Artifact").unwrap();
        g.add_edge("e1", "p", "lib", "Used").unwrap();
        g
    }

    fn fg_with_target() -> PropertyGraph {
        let mut g = bg();
        g.add_node("t", "Artifact").unwrap();
        g.add_edge("e2", "t", "p", "WasGeneratedBy").unwrap();
        g
    }

    #[test]
    fn target_structure_survives() {
        let c = compare(&bg(), &fg_with_target()).unwrap();
        assert!(!c.is_empty());
        assert!(c.result.has_node("t"));
        assert!(c.result.has_edge("e2"));
        assert!(!c.result.has_edge("e1"));
        // The process anchors the new edge: retained as dummy.
        assert!(diff::is_dummy(&c.result, "p"));
    }

    #[test]
    fn identical_graphs_give_empty_result() {
        let c = compare(&bg(), &bg()).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.matching_cost, 0);
    }

    #[test]
    fn compare_in_agrees_with_one_shot_compare() {
        let bg = bg();
        let fg = fg_with_target();
        let mut session = CorpusSession::new();
        let b = session.add(&bg);
        let f = session.add(&fg);
        let via_session = compare_in(&session, b, f, &fg, None).unwrap();
        let one_shot = compare(&bg, &fg).unwrap();
        assert_eq!(via_session.result, one_shot.result);
        assert_eq!(via_session.matching_cost, one_shot.matching_cost);
    }

    #[test]
    fn compare_in_with_memo_agrees_and_replays_from_cache() {
        let bg = bg();
        let fg = fg_with_target();
        let mut session = CorpusSession::new();
        let b = session.add(&bg);
        let f = session.add(&fg);
        let plain = compare_in(&session, b, f, &fg, None).unwrap();
        let memo = SolveMemo::new();
        let cold = compare_in(&session, b, f, &fg, Some(&memo)).unwrap();
        let warm = compare_in(&session, b, f, &fg, Some(&memo)).unwrap();
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 1, "the replayed cell must come from the cache");
        for c in [&cold, &warm] {
            assert_eq!(c.result, plain.result);
            assert_eq!(c.matching_cost, plain.matching_cost);
        }
    }

    #[test]
    fn oversized_background_is_an_error() {
        let err = compare(&fg_with_target(), &bg()).unwrap_err();
        assert!(matches!(err, PipelineError::BackgroundNotSubgraph));
    }

    #[test]
    fn label_incompatible_background_is_an_error() {
        let mut other = bg();
        other.remove_node("lib").unwrap();
        other.add_node("x", "Socket").unwrap();
        assert!(compare(&other, &fg_with_target()).is_err());
    }
}
