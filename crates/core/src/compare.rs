//! Graph comparison (paper §3.5).
//!
//! The generalized background graph should embed into the generalized
//! foreground graph (recording is append-only); the embedding is found by
//! approximate subgraph isomorphism with property-mismatch cost
//! minimization (paper Listing 4), and the unmatched foreground remainder
//! — with dummy boundary nodes — is the benchmark result.

use std::collections::BTreeSet;

use aspsolver::find_subgraph;
use provgraph::{diff, PropertyGraph};

use crate::PipelineError;

/// Result of the comparison stage.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The benchmark result graph: unmatched foreground structure plus
    /// dummy boundary nodes.
    pub result: PropertyGraph,
    /// Property-mismatch cost of the optimal embedding (0 when the
    /// background matched perfectly).
    pub matching_cost: u64,
}

impl Comparison {
    /// `true` when the recorder captured nothing for the target activity
    /// (the paper's "empty" cells in Table 2).
    pub fn is_empty(&self) -> bool {
        diff::effective_size(&self.result) == 0
    }
}

/// Match `background` into `foreground` and subtract it.
///
/// # Errors
///
/// [`PipelineError::BackgroundNotSubgraph`] when no structure-preserving
/// embedding exists (the recording-monotonicity assumption failed — e.g.
/// when generalization picked a larger background than foreground,
/// paper §3.4).
pub fn compare(
    background: &PropertyGraph,
    foreground: &PropertyGraph,
) -> Result<Comparison, PipelineError> {
    let matching =
        find_subgraph(background, foreground).ok_or(PipelineError::BackgroundNotSubgraph)?;
    let matched_nodes: BTreeSet<String> = matching.node_map.values().cloned().collect();
    let matched_edges: BTreeSet<String> = matching.edge_map.values().cloned().collect();
    let result = diff::subtract(foreground, &matched_nodes, &matched_edges)?;
    Ok(Comparison {
        result,
        matching_cost: matching.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bg() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node("p", "Process").unwrap();
        g.add_node("lib", "Artifact").unwrap();
        g.add_edge("e1", "p", "lib", "Used").unwrap();
        g
    }

    fn fg_with_target() -> PropertyGraph {
        let mut g = bg();
        g.add_node("t", "Artifact").unwrap();
        g.add_edge("e2", "t", "p", "WasGeneratedBy").unwrap();
        g
    }

    #[test]
    fn target_structure_survives() {
        let c = compare(&bg(), &fg_with_target()).unwrap();
        assert!(!c.is_empty());
        assert!(c.result.has_node("t"));
        assert!(c.result.has_edge("e2"));
        assert!(!c.result.has_edge("e1"));
        // The process anchors the new edge: retained as dummy.
        assert!(diff::is_dummy(&c.result, "p"));
    }

    #[test]
    fn identical_graphs_give_empty_result() {
        let c = compare(&bg(), &bg()).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.matching_cost, 0);
    }

    #[test]
    fn oversized_background_is_an_error() {
        let err = compare(&fg_with_target(), &bg()).unwrap_err();
        assert!(matches!(err, PipelineError::BackgroundNotSubgraph));
    }

    #[test]
    fn label_incompatible_background_is_an_error() {
        let mut other = bg();
        other.remove_node("lib").unwrap();
        other.add_node("x", "Socket").unwrap();
        assert!(compare(&other, &fg_with_target()).is_err());
    }
}
