//! The benchmark suite: the 44 syscalls of paper Table 1, each as a
//! [`BenchSpec`] with staging setup, prerequisite *context* ops and the
//! `#ifdef TARGET` *target* ops — plus the paper's Table 2 as ground-truth
//! [`Expectation`]s that the recorder simulations are validated against.

use oskernel::program::{Op, Program, SetupAction};
use oskernel::OpenFlags;

/// One benchmark: the Rust analogue of a `benchmarkProgram/` C file plus
/// its setup script.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Benchmark name (the target syscall, or `scaleN`).
    pub name: String,
    /// Paper Table 1 group (1 files, 2 processes, 3 permissions, 4 pipes).
    pub group: u8,
    /// Staging-directory preparation (runs before recording).
    pub setup: Vec<SetupAction>,
    /// Prerequisite ops included in **both** program variants (e.g. the
    /// `open` before a `close` target).
    pub context: Vec<Op>,
    /// The target ops (the `#ifdef TARGET` section).
    pub target: Vec<Op>,
}

impl BenchSpec {
    /// The foreground program: context plus target.
    pub fn foreground(&self) -> Program {
        let mut p = Program::new(self.name.clone()).exe("/usr/local/bin/bench_fg");
        for s in &self.setup {
            p = p.setup(s.clone());
        }
        p.ops(
            self.context
                .iter()
                .cloned()
                .chain(self.target.iter().cloned()),
        )
    }

    /// The background program: context only.
    pub fn background(&self) -> Program {
        let mut p = Program::new(self.name.clone()).exe("/usr/local/bin/bench_bg");
        for s in &self.setup {
            p = p.setup(s.clone());
        }
        p.ops(self.context.iter().cloned())
    }
}

fn staged(name: &str) -> String {
    format!("/staging/{name}")
}

fn setup_file(name: &str) -> SetupAction {
    SetupAction::CreateFile {
        path: staged(name),
        mode: 0o644,
    }
}

fn open_ctx(path: &str, flags: OpenFlags) -> Op {
    Op::Open {
        path: staged(path),
        flags,
        mode: 0o644,
        fd_var: "id".into(),
    }
}

/// Build the benchmark spec for one Table 1 syscall by name.
///
/// Returns `None` for names outside the suite.
pub fn spec(name: &str) -> Option<BenchSpec> {
    let rw_creat = OpenFlags::RDWR.union(OpenFlags::CREAT);
    let s = |group: u8, setup: Vec<SetupAction>, context: Vec<Op>, target: Vec<Op>| {
        Some(BenchSpec {
            name: name.to_owned(),
            group,
            setup,
            context,
            target,
        })
    };
    match name {
        // ---- group 1: files --------------------------------------------
        "close" => s(
            1,
            vec![],
            vec![open_ctx("test.txt", rw_creat)],
            vec![Op::Close {
                fd_var: "id".into(),
            }],
        ),
        "creat" => s(
            1,
            vec![],
            vec![],
            vec![Op::Creat {
                path: staged("test.txt"),
                mode: 0o644,
                fd_var: "id".into(),
            }],
        ),
        "dup" => s(
            1,
            vec![],
            vec![open_ctx("test.txt", rw_creat)],
            vec![Op::Dup {
                fd_var: "id".into(),
                new_var: "d".into(),
            }],
        ),
        "dup2" => s(
            1,
            vec![],
            vec![open_ctx("test.txt", rw_creat)],
            vec![Op::Dup2 {
                fd_var: "id".into(),
                newfd: 9,
                new_var: "d".into(),
            }],
        ),
        "dup3" => s(
            1,
            vec![],
            vec![open_ctx("test.txt", rw_creat)],
            vec![Op::Dup3 {
                fd_var: "id".into(),
                newfd: 9,
                new_var: "d".into(),
            }],
        ),
        "link" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Link {
                old: staged("test.txt"),
                new: staged("test.link"),
            }],
        ),
        "linkat" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Linkat {
                old: staged("test.txt"),
                new: staged("test.link"),
            }],
        ),
        "symlink" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Symlink {
                target: staged("test.txt"),
                linkpath: staged("test.sym"),
            }],
        ),
        "symlinkat" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Symlinkat {
                target: staged("test.txt"),
                linkpath: staged("test.sym"),
            }],
        ),
        "mknod" => s(
            1,
            vec![],
            vec![],
            vec![Op::Mknod {
                path: staged("test.fifo"),
                mode: 0o644,
            }],
        ),
        "mknodat" => s(
            1,
            vec![],
            vec![],
            vec![Op::Mknodat {
                path: staged("test.fifo"),
                mode: 0o644,
            }],
        ),
        "open" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![open_ctx("test.txt", OpenFlags::RDWR)],
        ),
        "openat" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Openat {
                path: staged("test.txt"),
                flags: OpenFlags::RDWR,
                mode: 0o644,
                fd_var: "id".into(),
            }],
        ),
        "read" => s(
            1,
            vec![setup_file("test.txt")],
            vec![open_ctx("test.txt", OpenFlags::RDONLY)],
            vec![Op::Read {
                fd_var: "id".into(),
                len: 100,
            }],
        ),
        "pread" => s(
            1,
            vec![setup_file("test.txt")],
            vec![open_ctx("test.txt", OpenFlags::RDONLY)],
            vec![Op::Pread {
                fd_var: "id".into(),
                len: 100,
                offset: 0,
            }],
        ),
        "rename" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Rename {
                old: staged("test.txt"),
                new: staged("test.new"),
            }],
        ),
        "renameat" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Renameat {
                old: staged("test.txt"),
                new: staged("test.new"),
            }],
        ),
        "truncate" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Truncate {
                path: staged("test.txt"),
                len: 16,
            }],
        ),
        "ftruncate" => s(
            1,
            vec![setup_file("test.txt")],
            vec![open_ctx("test.txt", OpenFlags::RDWR)],
            vec![Op::Ftruncate {
                fd_var: "id".into(),
                len: 16,
            }],
        ),
        "unlink" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Unlink {
                path: staged("test.txt"),
            }],
        ),
        "unlinkat" => s(
            1,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Unlinkat {
                path: staged("test.txt"),
            }],
        ),
        "write" => s(
            1,
            vec![],
            vec![open_ctx("test.txt", rw_creat)],
            vec![Op::Write {
                fd_var: "id".into(),
                len: 100,
            }],
        ),
        "pwrite" => s(
            1,
            vec![],
            vec![open_ctx("test.txt", rw_creat)],
            vec![Op::Pwrite {
                fd_var: "id".into(),
                len: 100,
                offset: 0,
            }],
        ),
        // ---- group 2: processes ----------------------------------------
        "clone" => s(2, vec![], vec![], vec![Op::CloneProc { child: vec![] }]),
        "execve" => s(
            2,
            vec![],
            vec![],
            vec![Op::Execve {
                path: "/usr/local/bin/bench_bg".into(),
            }],
        ),
        "exit" => s(2, vec![], vec![], vec![Op::ExitOp { code: 0 }]),
        "fork" => s(2, vec![], vec![], vec![Op::Fork { child: vec![] }]),
        "kill" => s(
            2,
            vec![],
            vec![Op::ForkAlive { child: vec![] }],
            vec![Op::KillLastChild { sig: 9 }],
        ),
        "vfork" => s(2, vec![], vec![], vec![Op::Vfork { child: vec![] }]),
        // ---- group 3: permissions --------------------------------------
        "chmod" => s(
            3,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Chmod {
                path: staged("test.txt"),
                mode: 0o600,
            }],
        ),
        "fchmod" => s(
            3,
            vec![setup_file("test.txt")],
            vec![open_ctx("test.txt", OpenFlags::RDWR)],
            vec![Op::Fchmod {
                fd_var: "id".into(),
                mode: 0o600,
            }],
        ),
        "fchmodat" => s(
            3,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Fchmodat {
                path: staged("test.txt"),
                mode: 0o600,
            }],
        ),
        "chown" => s(
            3,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Chown {
                path: staged("test.txt"),
                uid: 500,
                gid: 500,
            }],
        ),
        "fchown" => s(
            3,
            vec![setup_file("test.txt")],
            vec![open_ctx("test.txt", OpenFlags::RDWR)],
            vec![Op::Fchown {
                fd_var: "id".into(),
                uid: 500,
                gid: 500,
            }],
        ),
        "fchownat" => s(
            3,
            vec![setup_file("test.txt")],
            vec![],
            vec![Op::Fchownat {
                path: staged("test.txt"),
                uid: 500,
                gid: 500,
            }],
        ),
        "setgid" => s(3, vec![], vec![], vec![Op::Setgid { gid: 500 }]),
        "setregid" => s(
            3,
            vec![],
            vec![],
            vec![Op::Setregid {
                rgid: Some(500),
                egid: Some(500),
            }],
        ),
        // "our benchmark for setresgid just sets the group id attribute to
        // its current value" (paper §4.3) — root's gid is 0.
        "setresgid" => s(
            3,
            vec![],
            vec![],
            vec![Op::Setresgid {
                rgid: Some(0),
                egid: Some(0),
                sgid: Some(0),
            }],
        ),
        "setuid" => s(3, vec![], vec![], vec![Op::Setuid { uid: 500 }]),
        "setreuid" => s(
            3,
            vec![],
            vec![],
            vec![Op::Setreuid {
                ruid: Some(500),
                euid: Some(500),
            }],
        ),
        // "our benchmark result for setresuid is nonempty, reflecting an
        // actual change of user id" (paper §4.3).
        "setresuid" => s(
            3,
            vec![],
            vec![],
            vec![Op::Setresuid {
                ruid: Some(500),
                euid: Some(500),
                suid: Some(500),
            }],
        ),
        // ---- group 4: pipes --------------------------------------------
        "pipe" => s(
            4,
            vec![],
            vec![],
            vec![Op::PipeOp {
                read_var: "r".into(),
                write_var: "w".into(),
            }],
        ),
        "pipe2" => s(
            4,
            vec![],
            vec![],
            vec![Op::Pipe2Op {
                read_var: "r".into(),
                write_var: "w".into(),
            }],
        ),
        "tee" => s(
            4,
            vec![],
            vec![
                Op::PipeOp {
                    read_var: "r1".into(),
                    write_var: "w1".into(),
                },
                Op::PipeOp {
                    read_var: "r2".into(),
                    write_var: "w2".into(),
                },
                Op::Write {
                    fd_var: "w1".into(),
                    len: 8,
                },
            ],
            vec![Op::Tee {
                in_var: "r1".into(),
                out_var: "w2".into(),
                len: 8,
            }],
        ),
        _ => None,
    }
}

/// Build a *failure-scenario* benchmark: the target call is expected to
/// fail with an access-control error after the benchmark drops privileges
/// (paper §3.1, Alice: "most only take a few minutes to write, by
/// modifying other, similar benchmarks for successful calls").
///
/// Supported scenarios: `open`, `rename`, `unlink`, `chmod`, `truncate`.
pub fn failure_spec(name: &str) -> Option<BenchSpec> {
    let drop_privs = vec![Op::Setuid { uid: 1000 }];
    let secret = || SetupAction::CreateFileOwned {
        path: staged("secret"),
        mode: 0o600,
        uid: 0,
        gid: 0,
    };
    let (setup, target): (Vec<SetupAction>, Op) = match name {
        "open" => (
            vec![secret()],
            Op::Open {
                path: staged("secret"),
                flags: OpenFlags::RDONLY,
                mode: 0,
                fd_var: "id".into(),
            },
        ),
        "rename" => (
            vec![setup_file("mine.txt")],
            Op::Rename {
                old: staged("mine.txt"),
                new: "/etc/passwd".into(),
            },
        ),
        "unlink" => (
            vec![],
            Op::Unlink {
                path: "/etc/passwd".into(),
            },
        ),
        "chmod" => (
            vec![secret()],
            Op::Chmod {
                path: staged("secret"),
                mode: 0o777,
            },
        ),
        "truncate" => (
            vec![secret()],
            Op::Truncate {
                path: staged("secret"),
                len: 0,
            },
        ),
        _ => return None,
    };
    Some(BenchSpec {
        name: format!("{name}-denied"),
        group: 1,
        setup,
        context: drop_privs,
        target: vec![Op::MustFail(Box::new(target))],
    })
}

/// Names of the supported failure scenarios.
pub fn failure_names() -> Vec<&'static str> {
    vec!["open", "rename", "unlink", "chmod", "truncate"]
}

/// All failure-scenario benchmark specs.
pub fn failure_specs() -> Vec<BenchSpec> {
    failure_names()
        .into_iter()
        // provlint: allow(panic-in-lib) -- static name list is mirrored by failure_spec's match arms
        .map(|n| failure_spec(n).expect("every listed failure scenario builds"))
        .collect()
}

/// Names of all 44 benchmarked syscalls, in Table 1/Table 2 order.
pub fn all_names() -> Vec<&'static str> {
    vec![
        "close",
        "creat",
        "dup",
        "dup2",
        "dup3",
        "link",
        "linkat",
        "symlink",
        "symlinkat",
        "mknod",
        "mknodat",
        "open",
        "openat",
        "read",
        "pread",
        "rename",
        "renameat",
        "truncate",
        "ftruncate",
        "unlink",
        "unlinkat",
        "write",
        "pwrite",
        "clone",
        "execve",
        "exit",
        "fork",
        "kill",
        "vfork",
        "chmod",
        "fchmod",
        "fchmodat",
        "chown",
        "fchown",
        "fchownat",
        "setgid",
        "setregid",
        "setresgid",
        "setuid",
        "setreuid",
        "setresuid",
        "pipe",
        "pipe2",
        "tee",
    ]
}

/// All 44 benchmark specs.
pub fn all_specs() -> Vec<BenchSpec> {
    all_names()
        .into_iter()
        // provlint: allow(panic-in-lib) -- static name list is mirrored by spec's match arms
        .map(|n| spec(n).expect("every listed name has a spec"))
        .collect()
}

/// Reason a benchmark cell is empty (paper Table 2 notes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyNote {
    /// Behavior not recorded (by default configuration).
    NR,
    /// Only state changes monitored.
    SC,
    /// Limitation in ProvMark.
    LP,
    /// Disconnected vforked process.
    DV,
}

impl EmptyNote {
    /// The two-letter code used in Table 2.
    pub fn code(self) -> &'static str {
        match self {
            EmptyNote::NR => "NR",
            EmptyNote::SC => "SC",
            EmptyNote::LP => "LP",
            EmptyNote::DV => "DV",
        }
    }
}

/// Expected outcome for one (syscall, tool) cell of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedCell {
    /// The tool records the call ("ok").
    Ok,
    /// Recorded, with a footnote ("ok (DV)", "ok (SC)").
    OkNote(EmptyNote),
    /// Foreground and background were similar; target undetected.
    Empty(EmptyNote),
}

impl ExpectedCell {
    /// `true` when the cell expects a nonempty benchmark result.
    pub fn is_ok(self) -> bool {
        !matches!(self, ExpectedCell::Empty(_))
    }

    /// Render as in the paper's Table 2.
    pub fn render(self) -> String {
        match self {
            ExpectedCell::Ok => "ok".to_owned(),
            ExpectedCell::OkNote(n) => format!("ok ({})", n.code()),
            ExpectedCell::Empty(n) => format!("empty ({})", n.code()),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Expectation {
    /// Syscall name.
    pub syscall: &'static str,
    /// Table 1 group.
    pub group: u8,
    /// Expected SPADE cell.
    pub spade: ExpectedCell,
    /// Expected OPUS cell.
    pub opus: ExpectedCell,
    /// Expected CamFlow cell.
    pub camflow: ExpectedCell,
}

/// The paper's Table 2, verbatim: the ground truth the recorder
/// simulations are validated against (`tests/table2_matrix.rs`).
pub fn table2() -> Vec<Expectation> {
    use EmptyNote::*;
    use ExpectedCell::{Empty, Ok as Okay, OkNote};
    let row = |syscall, group, spade, opus, camflow| Expectation {
        syscall,
        group,
        spade,
        opus,
        camflow,
    };
    vec![
        row("close", 1, Okay, Okay, Empty(LP)),
        row("creat", 1, Okay, Okay, Okay),
        row("dup", 1, Empty(SC), Okay, Empty(NR)),
        row("dup2", 1, Empty(SC), Okay, Empty(NR)),
        row("dup3", 1, Empty(SC), Okay, Empty(NR)),
        row("link", 1, Okay, Okay, Okay),
        row("linkat", 1, Okay, Okay, Okay),
        row("symlink", 1, Okay, Okay, Empty(NR)),
        row("symlinkat", 1, Okay, Okay, Empty(NR)),
        row("mknod", 1, Empty(NR), Okay, Empty(NR)),
        row("mknodat", 1, Empty(NR), Empty(NR), Empty(NR)),
        row("open", 1, Okay, Okay, Okay),
        row("openat", 1, Okay, Okay, Okay),
        row("read", 1, Okay, Empty(NR), Okay),
        row("pread", 1, Okay, Empty(NR), Okay),
        row("rename", 1, Okay, Okay, Okay),
        row("renameat", 1, Okay, Okay, Okay),
        row("truncate", 1, Okay, Okay, Okay),
        row("ftruncate", 1, Okay, Okay, Okay),
        row("unlink", 1, Okay, Okay, Okay),
        row("unlinkat", 1, Okay, Okay, Okay),
        row("write", 1, Okay, Empty(NR), Okay),
        row("pwrite", 1, Okay, Empty(NR), Okay),
        row("clone", 2, Okay, Empty(NR), Okay),
        row("execve", 2, Okay, Okay, Okay),
        row("exit", 2, Empty(LP), Empty(LP), Empty(LP)),
        row("fork", 2, Okay, Okay, Okay),
        row("kill", 2, Empty(LP), Empty(LP), Empty(LP)),
        row("vfork", 2, OkNote(DV), Okay, Okay),
        row("chmod", 3, Okay, Okay, Okay),
        row("fchmod", 3, Okay, Empty(NR), Okay),
        row("fchmodat", 3, Okay, Okay, Okay),
        row("chown", 3, Empty(NR), Okay, Okay),
        row("fchown", 3, Empty(NR), Empty(NR), Okay),
        row("fchownat", 3, Empty(NR), Okay, Okay),
        row("setgid", 3, Okay, Okay, Okay),
        row("setregid", 3, Okay, Okay, Okay),
        row("setresgid", 3, Empty(SC), Empty(NR), Okay),
        row("setuid", 3, Okay, Okay, Okay),
        row("setreuid", 3, Okay, Okay, Okay),
        row("setresuid", 3, OkNote(SC), Empty(NR), Okay),
        row("pipe", 4, Empty(NR), Okay, Empty(NR)),
        row("pipe2", 4, Empty(NR), Okay, Empty(NR)),
        row("tee", 4, Empty(NR), Empty(NR), Okay),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_44_specs_matching_table2() {
        let specs = all_specs();
        assert_eq!(specs.len(), 44);
        let t2 = table2();
        assert_eq!(t2.len(), 44);
        for (spec, exp) in specs.iter().zip(&t2) {
            assert_eq!(spec.name, exp.syscall);
            assert_eq!(spec.group, exp.group);
        }
    }

    #[test]
    fn foreground_extends_background() {
        for spec in all_specs() {
            let fg = spec.foreground();
            let bg = spec.background();
            assert_eq!(
                &fg.ops[..bg.ops.len()],
                &bg.ops[..],
                "{}: background must be a prefix of foreground",
                spec.name
            );
            assert!(fg.ops.len() > bg.ops.len(), "{}: target empty", spec.name);
            assert!(fg.exe_path.ends_with("bench_fg"));
            assert!(bg.exe_path.ends_with("bench_bg"));
        }
    }

    #[test]
    fn every_benchmark_program_succeeds_on_the_kernel() {
        for spec in all_specs() {
            for (variant, prog) in [("fg", spec.foreground()), ("bg", spec.background())] {
                let mut kernel = oskernel::Kernel::with_seed(3);
                let out = kernel.run_program(&prog);
                assert!(
                    out.success,
                    "{} {variant} failed: {:?}",
                    spec.name, out.results
                );
            }
        }
    }

    #[test]
    fn unknown_spec_is_none() {
        assert!(spec("mmap").is_none());
        assert!(failure_spec("mmap").is_none());
    }

    #[test]
    fn failure_specs_run_and_fail_as_expected() {
        for spec in failure_specs() {
            for (variant, prog) in [("fg", spec.foreground()), ("bg", spec.background())] {
                let mut kernel = oskernel::Kernel::with_seed(5);
                let out = kernel.run_program(&prog);
                assert!(out.success, "{} {variant}: {:?}", spec.name, out.results);
            }
            // The foreground target op really failed (inverted criterion).
            let mut kernel = oskernel::Kernel::with_seed(5);
            let out = kernel.run_program(&spec.foreground());
            assert!(
                out.results.last().unwrap().is_err(),
                "{}: target must fail with errno",
                spec.name
            );
        }
    }

    #[test]
    fn group_counts_match_table1() {
        let specs = all_specs();
        let count = |g: u8| specs.iter().filter(|s| s.group == g).count();
        assert_eq!(count(1), 23);
        assert_eq!(count(2), 6);
        assert_eq!(count(3), 12);
        assert_eq!(count(4), 3);
    }

    #[test]
    fn cells_render_like_the_paper() {
        assert_eq!(ExpectedCell::Ok.render(), "ok");
        assert_eq!(ExpectedCell::OkNote(EmptyNote::DV).render(), "ok (DV)");
        assert_eq!(ExpectedCell::Empty(EmptyNote::NR).render(), "empty (NR)");
        assert!(ExpectedCell::OkNote(EmptyNote::SC).is_ok());
        assert!(!ExpectedCell::Empty(EmptyNote::LP).is_ok());
    }
}
