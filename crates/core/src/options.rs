/// Pipeline configuration (the `config.ini` + CLI parameters of the
/// original ProvMark, appendix A.4–A.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkOptions {
    /// Number of recording trials per program variant (paper default: 2;
    /// "more trials … provide a more accurate result as multiple trials
    /// can help to filter out uncertainty").
    pub trials: usize,
    /// Base seed for the per-trial kernels. Trial `i` of the background
    /// variant uses `base_seed + i`; foreground trials continue after.
    pub base_seed: u64,
    /// Enable per-trial startup noise in the kernel, producing occasional
    /// inconsistent trials that the similarity-class filter must discard
    /// (the `filtergraphs` mechanism, appendix A.4).
    pub noise: bool,
    /// Discard obviously incomplete or inconsistent graphs before
    /// generalization (ProvMark's graph filtering; default on for CamFlow).
    pub filter_graphs: bool,
    /// Thread one session-level solve memo (`aspsolver::SolveMemo`)
    /// through each benchmark run, so dense searches replayed across
    /// stages, batches and left-hand sides are cached. Outcomes are
    /// byte-identical either way (the memo only skips re-deriving pure
    /// functions); the switch exists for ablation and for the CI
    /// memo-on/memo-off report diff. Default on.
    pub use_solve_memo: bool,
    /// Persistent solve-cache file backing the memo. When set (and
    /// `use_solve_memo` is on), [`run_benchmark`] warms its memo from
    /// this file before solving and saves the merged contents back
    /// afterwards, so repeated runs — across processes and restarts —
    /// replay prior dense searches instead of re-deriving them. A
    /// missing file is a normal cold start; a corrupt one is reported
    /// and ignored (cold start), never a panic or a wrong answer.
    /// Results are byte-identical with or without the cache, warm or
    /// cold — which is also why the path is **not** part of a run's
    /// recorded identity (`provshard` manifests never serialize it).
    ///
    /// [`run_benchmark`]: crate::pipeline::run_benchmark
    pub solve_cache: Option<std::path::PathBuf>,
    /// Trace directory for structured run telemetry (`provtrace`).
    /// When set, the top-level runners ([`run_benchmark`],
    /// [`run_matrix_cells`]) record spans (cells, rows, stages, solves),
    /// memo/cache events and counters, and flush them durably to
    /// `trace.<label>.<pid>.jsonl` in this directory. Tracing is
    /// observably outcome-neutral: reports are byte-identical with it
    /// on or off, and when unset every instrumentation site is a no-op
    /// branch (no allocation, no lock). Like `solve_cache`, the path is
    /// runner-local configuration — wired per invocation via `--trace`
    /// — and never part of a run's recorded identity (`provshard`
    /// manifests never serialize it).
    ///
    /// [`run_benchmark`]: crate::pipeline::run_benchmark
    /// [`run_matrix_cells`]: crate::pipeline::run_matrix_cells
    pub trace: Option<std::path::PathBuf>,
}

impl Default for BenchmarkOptions {
    fn default() -> Self {
        BenchmarkOptions {
            trials: 2,
            base_seed: 1,
            noise: false,
            filter_graphs: true,
            use_solve_memo: true,
            solve_cache: None,
            trace: None,
        }
    }
}

impl BenchmarkOptions {
    /// Options with a given trial count.
    pub fn with_trials(trials: usize) -> Self {
        BenchmarkOptions {
            trials,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = BenchmarkOptions::default();
        assert_eq!(o.trials, 2, "paper appendix: Number of trials (Default: 2)");
        assert!(!o.noise);
    }

    #[test]
    fn builders() {
        let o = BenchmarkOptions::with_trials(5).seed(42);
        assert_eq!(o.trials, 5);
        assert_eq!(o.base_seed, 42);
    }
}
