//! The ProvMark command-line harness — the analogue of the original's
//! `fullAutomation.py` (single execution) and `runTests.sh` (batch
//! execution), appendix A.5.
//!
//! ```text
//! provmark <tool> <benchmark> [trials] [result-type]
//! provmark <tool> all [trials] [result-type]
//!
//!   tool         spg (SPADE+Graphviz) | opu (OPUS+Neo4j) | cam (CamFlow+ProvJSON)
//!   benchmark    a Table 1 syscall name (e.g. creat), scaleN, or `all`
//!   trials       recording trials per variant (default 2)
//!   result-type  rb = benchmark only (default)
//!                rg = benchmark + generalized fg/bg graphs
//!                rh = HTML page on stdout
//! ```

use provgraph::datalog;
use provmark_core::pipeline::BenchmarkRun;
use provmark_core::report;
use provmark_core::scale::scale_spec;
use provmark_core::suite::{self, BenchSpec};
use provmark_core::tool::{Tool, ToolKind};
use provmark_core::{pipeline, BenchmarkOptions};

fn usage() -> ! {
    eprintln!("usage: provmark <spg|spn|opu|cam> <benchmark|all> [trials] [rb|rg|rh]");
    eprintln!(
        "       benchmarks: {} … or scaleN",
        suite::all_names()[..6].join(", ")
    );
    std::process::exit(2);
}

fn parse_tool(code: &str) -> Option<ToolKind> {
    match code {
        "spg" => Some(ToolKind::Spade),
        "spn" => Some(ToolKind::SpadeNeo4j),
        "opu" => Some(ToolKind::Opus),
        "cam" => Some(ToolKind::CamFlow),
        _ => None,
    }
}

fn lookup_spec(name: &str) -> Option<BenchSpec> {
    if let Some(rest) = name.strip_prefix("scale") {
        return rest
            .parse::<usize>()
            .ok()
            .filter(|n| *n > 0)
            .map(scale_spec);
    }
    suite::spec(name)
}

fn print_run(run: &BenchmarkRun, result_type: &str) {
    println!("== {} : {} ==", run.name, run.status.render());
    print!("{}", report::describe_result(&run.result));
    println!("-- benchmark (Datalog) --");
    print!("{}", datalog::to_canonical_datalog(&run.result, "res"));
    if result_type == "rg" {
        println!("-- generalized foreground --");
        print!(
            "{}",
            datalog::to_canonical_datalog(&run.generalized_fg, "fg")
        );
        println!("-- generalized background --");
        print!(
            "{}",
            datalog::to_canonical_datalog(&run.generalized_bg, "bg")
        );
    }
    println!("-- timing -- {}", run.timings.time_log_line("-", &run.name));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let Some(kind) = parse_tool(&args[0]) else {
        usage()
    };
    let bench = args[1].as_str();
    let trials: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2);
    let result_type = args.get(3).map(String::as_str).unwrap_or("rb");
    if !matches!(result_type, "rb" | "rg" | "rh") {
        usage();
    }
    let opts = BenchmarkOptions::with_trials(trials);

    let specs: Vec<BenchSpec> = if bench == "all" {
        suite::all_specs()
    } else {
        match lookup_spec(bench) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown benchmark `{bench}`");
                usage();
            }
        }
    };

    // One tool instance for the whole batch, as the original harness
    // keeps one daemon running.
    let mut tool = Tool::baseline(kind).instantiate();
    let mut runs: Vec<BenchmarkRun> = Vec::new();
    let mut failures = 0usize;
    for spec in &specs {
        match pipeline::run_benchmark(&mut tool, spec, &opts) {
            Ok(run) => {
                if result_type != "rh" {
                    print_run(&run, result_type);
                    println!();
                }
                runs.push(run);
            }
            Err(e) => {
                eprintln!("{}: pipeline error: {e}", spec.name);
                failures += 1;
            }
        }
    }

    if result_type == "rh" {
        print!("{}", report::render_html(kind, &runs));
    } else if specs.len() > 1 {
        println!("== summary: {} ==", kind.name());
        for run in &runs {
            println!("  {:<12} {}", run.name, run.status.render());
        }
        if failures > 0 {
            println!("  ({failures} benchmark(s) failed to complete)");
        }
    }
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
