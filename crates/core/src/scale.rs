//! Scalability workloads (paper §5.2, Figures 8–10).
//!
//! "In test case scale1, the target action sequence is simply a creation
//! of a file and another deletion of the newly created file. In test case
//! scale2, scale4 and scale8, the same target action is repeated twice,
//! four times, and eight times respectively."
//!
//! Beyond the paper's factors, this reproduction adds **scale16/32/64**
//! ([`EXTENDED_SCALE_FACTORS`]): graphs large enough that the solver's
//! search dominates its compile pass, which is where the one-shot
//! compiled path (compile + search per call) has to prove itself against
//! the string path — at the paper's 20–40-element sizes compile cost
//! dominates microsecond-scale searches. `bench_solver` gates on these.

use oskernel::program::Op;

use crate::suite::BenchSpec;

/// Build the `scaleN` benchmark: N repetitions of (creat + unlink) as the
/// target action sequence.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn scale_spec(n: usize) -> BenchSpec {
    assert!(n > 0, "scale factor must be positive");
    let mut target = Vec::with_capacity(2 * n);
    for i in 0..n {
        let path = format!("/staging/scale_{i}.txt");
        target.push(Op::Creat {
            path: path.clone(),
            mode: 0o644,
            fd_var: format!("fd{i}"),
        });
        target.push(Op::Unlink { path });
    }
    BenchSpec {
        name: format!("scale{n}"),
        group: 1,
        setup: vec![],
        context: vec![],
        target,
    }
}

/// The paper's scale factors.
pub const SCALE_FACTORS: [usize; 4] = [1, 2, 4, 8];

/// Extended scale factors for the solver benchmarks: big enough that
/// search time dominates compile time (see module docs).
pub const EXTENDED_SCALE_FACTORS: [usize; 3] = [16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::Tool;
    use crate::{pipeline, BenchmarkOptions};

    #[test]
    fn scale_spec_sizes() {
        for n in SCALE_FACTORS.into_iter().chain(EXTENDED_SCALE_FACTORS) {
            let s = scale_spec(n);
            assert_eq!(s.target.len(), 2 * n);
            assert_eq!(s.name, format!("scale{n}"));
            assert!(s.context.is_empty());
        }
    }

    #[test]
    fn scale16_runs_end_to_end() {
        // The smallest extended factor still completes the full pipeline
        // (the larger ones are exercised by bench_solver in release mode).
        let mut spade = Tool::spade_baseline().instantiate();
        let run =
            pipeline::run_benchmark(&mut spade, &scale_spec(16), &BenchmarkOptions::default())
                .unwrap();
        assert!(run.status.is_ok());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_zero_panics() {
        let _ = scale_spec(0);
    }

    #[test]
    fn scale1_runs_and_grows_with_factor() {
        let mut spade = Tool::spade_baseline().instantiate();
        let r1 = pipeline::run_benchmark(&mut spade, &scale_spec(1), &BenchmarkOptions::default())
            .unwrap();
        assert!(r1.status.is_ok());
        let r2 = pipeline::run_benchmark(&mut spade, &scale_spec(2), &BenchmarkOptions::default())
            .unwrap();
        assert!(
            r2.result.size() > r1.result.size(),
            "scale2 target graph must be larger than scale1"
        );
    }
}
