//! **ProvMark**: automated provenance expressiveness benchmarking.
//!
//! This crate is the Rust reproduction of the ProvMark system (Chan et al.,
//! Middleware 2019): it identifies the provenance graph structure a capture
//! system records for a target activity, treating the capture system as a
//! black box. The pipeline has the paper's four subsystems (Figure 3):
//!
//! 1. **Recording** ([`tool`]) — run the foreground and background variants
//!    of a benchmark program several times under a recorder (SPADE, OPUS or
//!    CamFlow simulations) and collect each tool's *native* output;
//! 2. **Transformation** ([`tool`]) — map DOT / Neo4j / PROV-JSON output
//!    into the uniform Datalog property-graph representation;
//! 3. **Generalization** ([`generalize`]) — partition trials into
//!    similarity classes, pick the two smallest consistent trials, and
//!    strip volatile properties under an optimal matching;
//! 4. **Comparison** ([`compare`]) — match the generalized background graph
//!    into the foreground graph (approximate subgraph isomorphism) and
//!    subtract it; the remainder plus dummy boundary nodes is the
//!    *benchmark result*.
//!
//! The [`suite`] module defines the 44 syscall benchmarks of the paper's
//! Table 1 together with the expected Table 2 outcome for every
//! (syscall, tool) cell, and [`scale`] generates the scalability workloads
//! of Figures 8–10.
//!
//! # Quickstart
//!
//! ```
//! use provmark_core::{pipeline, suite, tool::Tool, BenchmarkOptions};
//!
//! let spec = suite::spec("creat").expect("creat is in Table 1");
//! let mut tool = Tool::spade_baseline().instantiate();
//! let run = pipeline::run_benchmark(&mut tool, &spec, &BenchmarkOptions::default())
//!     .expect("pipeline runs");
//! assert!(run.status.is_ok(), "SPADE records creat (Table 2)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
mod error;
pub mod generalize;
mod options;
pub mod par;
pub mod pipeline;
pub mod regression;
pub mod report;
pub mod scale;
pub mod suite;
pub mod tool;

pub use error::{PipelineError, WorkerFailure};
pub use options::BenchmarkOptions;
pub use pipeline::{BenchStatus, BenchmarkRun, StageTimings};
pub use suite::{BenchSpec, EmptyNote, Expectation, ExpectedCell};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_example() {
        let spec = suite::spec("creat").unwrap();
        let mut tool = tool::Tool::spade_baseline().instantiate();
        let run = pipeline::run_benchmark(&mut tool, &spec, &BenchmarkOptions::default()).unwrap();
        assert!(run.status.is_ok());
    }
}
