//! Minimal `proptest` stand-in for the offline build.
//!
//! Supports the strategy combinators this workspace uses — integer
//! ranges, tuples, [`Just`], `prop_oneof!`, `prop::sample::select`,
//! `prop::collection::vec`, `prop_map`, and string strategies over a
//! small regex subset (`literal`, `[class]`, `{m,n}` quantifiers, `\`
//! escapes) — driven by a deterministic xorshift RNG.
//!
//! There is **no shrinking**: a failing case panics with the case number
//! and seed printed to stderr so the failure can be replayed by editing
//! the seed into [`TestRunner::new`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to drive strategies (xorshift64* with a
/// splitmix-style seeding).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG from a seed (0 is remapped to a fixed constant).
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0x5DEECE66D } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator.
///
/// The shim's analogue of `proptest::strategy::Strategy`; `generate`
/// replaces `new_tree` + simplification (there is no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty)+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

int_range_strategy!(usize u8 u16 u32 u64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

/// String generation over a small regex subset.
mod regex {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in `{pattern}`");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "trailing escape in `{pattern}`");
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.'),
                        "unsupported regex feature `{c}` in `{pattern}` (shim supports literals, classes and counted repeats)"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repeat in `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let span = u64::from(piece.max - piece.min) + 1;
            let reps = piece.min + rng.below(span) as u32;
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let size = (*hi as u64) - (*lo as u64) + 1;
                            if pick < size {
                                out.push(
                                    char::from_u32(*lo as u32 + pick as u32)
                                        .expect("class range stays in char space"),
                                );
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

/// `prop::sample` — choosing among explicit values.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-run configuration (`with_cases` is the only knob the shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the cases of one property.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    case: u64,
}

impl TestRunner {
    /// Runner for the named property. The base seed is derived from the
    /// name (stable across runs) unless `MINIPROP_SEED` overrides it.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = match std::env::var("MINIPROP_SEED") {
            Ok(s) => s.parse().unwrap_or(0),
            Err(_) => name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
            }),
        };
        TestRunner {
            config,
            seed,
            case: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// RNG for the next case.
    pub fn next_rng(&mut self) -> TestRng {
        let rng = TestRng::from_seed(self.seed.wrapping_add(self.case));
        self.case += 1;
        rng
    }

    /// Current (0-based) case number minus one: the case `next_rng` last
    /// prepared.
    pub fn current_case(&self) -> u64 {
        self.case.saturating_sub(1)
    }

    /// Base seed of the runner.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Prints replay information when a case panics.
pub struct CaseGuard<'a> {
    /// Property name.
    pub name: &'a str,
    /// Case number.
    pub case: u64,
    /// Base seed.
    pub seed: u64,
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "miniprop: property `{}` failed at case {} (base seed {:#x}; rerun with MINIPROP_SEED={} and cases=1 to replay)",
                self.name,
                self.case,
                self.seed,
                self.seed.wrapping_add(self.case),
            );
        }
    }
}

/// The property-test entry macro, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let prop_name = concat!(module_path!(), "::", stringify!($name));
                let mut runner = $crate::TestRunner::new($config, prop_name);
                for _ in 0..runner.cases() {
                    let mut rng = runner.next_rng();
                    let _guard = $crate::CaseGuard {
                        name: prop_name,
                        case: runner.current_case(),
                        seed: runner.seed(),
                    };
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion inside a property (plain `assert!` — no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// Strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (0usize..7).generate(&mut rng);
            assert!(v < 7);
            let w = (1u64..=3).generate(&mut rng);
            assert!((1..=3).contains(&w));
            let (a, b) = ((0usize..2), (5u64..6)).generate(&mut rng);
            assert!(a < 2 && b == 5);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::from_seed(11);
        for _ in 0..200 {
            let s = "k[ab]".generate(&mut rng);
            assert!(s == "ka" || s == "kb", "{s}");
            let t = "[a-z]{0,4}".generate(&mut rng);
            assert!(
                t.len() <= 4 && t.chars().all(|c| c.is_ascii_lowercase()),
                "{t}"
            );
            let u = "[a-zA-Z0-9/\\\\\" ]{0,12}".generate(&mut rng);
            assert!(u.len() <= 12, "{u}");
            assert!(
                u.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "/\\\" ".contains(c)),
                "{u:?}"
            );
        }
    }

    #[test]
    fn select_vec_and_oneof_work() {
        let mut rng = crate::TestRng::from_seed(13);
        let s = prop::sample::select(vec!["P", "A"]);
        let all: Vec<&str> = (0..50).map(|_| s.generate(&mut rng)).collect();
        assert!(all.contains(&"P") && all.contains(&"A"));
        let v = prop::collection::vec(0usize..3, 1..5).generate(&mut rng);
        assert!((1..5).contains(&v.len()));
        let u = prop_oneof![Just(1u8), Just(2u8)];
        let picks: Vec<u8> = (0..50).map(|_| u.generate(&mut rng)).collect();
        assert!(picks.contains(&1) && picks.contains(&2));
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::from_seed(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::from_seed(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated args are in range.
        #[test]
        fn macro_generates_args(x in 0usize..5, label in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(x < 5);
            prop_assert!(label == "a" || label == "b");
        }
    }
}
