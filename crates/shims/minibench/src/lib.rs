//! Minimal `criterion` stand-in for the offline build.
//!
//! Provides the API surface the workspace's benches use — benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`Throughput`] — measured as wall-clock medians over a fixed number of
//! samples, printed one line per benchmark:
//!
//! ```text
//! ablation_solver/generalize_execve/full  median 1.234 ms  (10 samples)
//! ```
//!
//! There is no warm-up tuning, HTML report, or baseline comparison;
//! benches exist here to produce honest relative numbers (and
//! machine-readable output via [`Criterion::json_path`]), not criterion's
//! full statistics machinery. Two noise indicators are provided per
//! measurement: the interquartile range (p25/p75 alongside the median)
//! and a bootstrap confidence interval of the median
//! ([`bootstrap_median_ci`], percentile bootstrap over resampled
//! medians, deterministic RNG). Downstream gates (the solver CI gate)
//! use the bootstrap interval to tell a noisy run from a real
//! regression instead of flapping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Deterministic xorshift64* step (Marsaglia/Vigna) — good enough for
/// bootstrap index sampling, zero dependencies, reproducible runs.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// 95% percentile-bootstrap confidence interval of the **median** of
/// `samples`: draw `resamples` resamples with replacement, take each
/// resample's median (same `sorted[n / 2]` convention as the quartile
/// reporting), and return the 2.5th/97.5th percentiles of those medians.
///
/// Deterministic for a given `(samples, resamples, seed)` triple, so CI
/// gates built on it are reproducible. Returns `(0.0, 0.0)` for empty
/// input and the sample itself for a singleton. Unlike the raw
/// p25/p75 quartiles this narrows with the sample count, which is what
/// makes it a usable noise bound for speedup gates: the interval covers
/// where the median *itself* plausibly lies, not where individual
/// samples land.
pub fn bootstrap_median_ci(samples: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    if samples.len() == 1 {
        return (samples[0], samples[0]);
    }
    let mut state = seed | 1; // xorshift state must be nonzero
    let n = samples.len();
    let mut medians: Vec<f64> = Vec::with_capacity(resamples.max(1));
    let mut resample: Vec<f64> = vec![0.0; n];
    for _ in 0..resamples.max(1) {
        for slot in &mut resample {
            *slot = samples[(xorshift64(&mut state) % n as u64) as usize];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        medians.push(resample[n / 2]);
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("finite medians"));
    let last = medians.len() - 1;
    let lo = ((last as f64) * 0.025).round() as usize;
    let hi = ((last as f64) * 0.975).round() as usize;
    (medians[lo], medians[hi])
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on — every
/// iteration re-runs setup outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh setup for every routine invocation.
    PerIteration,
}

/// Declared throughput of one benchmark (recorded into the report line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter (rendered with
    /// `Display`, like criterion).
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// One measured benchmark, for the JSON report.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median iteration time.
    pub median: Duration,
    /// 25th-percentile iteration time (lower quartile).
    pub p25: Duration,
    /// 75th-percentile iteration time (upper quartile).
    pub p75: Duration,
    /// Lower bound of the 95% bootstrap CI of the median
    /// ([`bootstrap_median_ci`]).
    pub ci_low: Duration,
    /// Upper bound of the 95% bootstrap CI of the median.
    pub ci_high: Duration,
    /// Number of samples measured.
    pub samples: usize,
}

impl Measurement {
    /// Interquartile range relative to the median — a unitless noise
    /// indicator (0 = perfectly stable samples).
    pub fn relative_iqr(&self) -> f64 {
        let median = self.median.as_secs_f64();
        if median == 0.0 {
            return 0.0;
        }
        (self.p75.as_secs_f64() - self.p25.as_secs_f64()) / median
    }
}

/// Timing state handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Measure a routine: per sample, run the routine repeatedly until a
    /// minimum window elapses and record the mean iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            // One untimed warm-up run per sample keeps caches hot without
            // polluting the measurement.
            black_box(routine());
            let mut iters = 0u32;
            let start = Instant::now();
            let mut elapsed;
            loop {
                black_box(routine());
                iters += 1;
                elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(2) || iters >= 1024 {
                    break;
                }
            }
            self.measured.push(elapsed / iters);
        }
    }

    /// Measure a routine with untimed per-iteration setup.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }

    /// `(p25, median, p75)` of the recorded samples.
    fn quartiles(&mut self) -> (Duration, Duration, Duration) {
        if self.measured.is_empty() {
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        self.measured.sort_unstable();
        let n = self.measured.len();
        (
            self.measured[n / 4],
            self.measured[n / 2],
            self.measured[(3 * n) / 4],
        )
    }

    /// Bootstrap CI of the median of the recorded samples, as durations.
    fn median_ci(&self) -> (Duration, Duration) {
        let secs: Vec<f64> = self.measured.iter().map(Duration::as_secs_f64).collect();
        let (lo, hi) = bootstrap_median_ci(&secs, 200, 0x5EED_CAFE);
        (Duration::from_secs_f64(lo), Duration::from_secs_f64(hi))
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the measurement time (accepted for API compatibility; the shim
    /// sizes its measurement window per iteration instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), input, f);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), &(), move |b, ()| f(b));
        self
    }

    fn run<I: ?Sized>(&mut self, id: String, input: &I, mut f: impl FnMut(&mut Bencher, &I)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher, input);
        let samples = bencher.measured.len();
        let (p25, median, p75) = bencher.quartiles();
        let (ci_low, ci_high) = bencher.median_ci();
        let full_id = format!("{}/{}", self.name, id);
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!("  ({n} bytes/iter)"),
            None => String::new(),
        };
        println!(
            "{full_id}  median {median:?}  p25 {p25:?}  p75 {p75:?}  \
             ci95 [{ci_low:?}, {ci_high:?}]  ({samples} samples){tp}"
        );
        self.criterion.measurements.push(Measurement {
            id: full_id,
            median,
            p25,
            p75,
            ci_low,
            ci_high,
            samples,
        });
    }

    /// Finish the group (report output already happened per benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    /// All measurements taken so far (inspected by reporting code).
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, like `criterion`'s builder.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure with no input at the default sample size.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run(name, &(), move |b, ()| f(b));
    }
}

/// Define a benchmark group function, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench `main` function, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.throughput(Throughput::Elements(4));
            g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.bench_with_input(BenchmarkId::new("batched", 2), &2u64, |b, &n| {
                b.iter_batched(
                    || vec![n; 4],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::SmallInput,
                )
            });
            g.finish();
        }
        assert_eq!(c.measurements.len(), 2);
        assert_eq!(c.measurements[0].id, "unit/sum/8");
        assert_eq!(c.measurements[0].samples, 3);
        let m = &c.measurements[0];
        assert!(m.p25 <= m.median && m.median <= m.p75, "quartiles ordered");
        assert!(m.relative_iqr() >= 0.0);
        assert!(m.ci_low <= m.ci_high, "CI bounds ordered");
    }

    #[test]
    fn bootstrap_ci_is_deterministic_ordered_and_within_range() {
        let samples = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0, 3.5];
        let (lo, hi) = bootstrap_median_ci(&samples, 500, 42);
        assert_eq!((lo, hi), bootstrap_median_ci(&samples, 500, 42));
        assert!(lo <= hi);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo >= min && hi <= max, "CI within the sample range");
        // A different seed resamples differently but stays a valid CI.
        let (lo2, hi2) = bootstrap_median_ci(&samples, 500, 7);
        assert!(lo2 <= hi2 && lo2 >= min && hi2 <= max);
    }

    #[test]
    fn bootstrap_ci_narrows_against_quartiles_on_tight_samples() {
        // Constant samples: the median cannot move, CI collapses.
        let samples = [2.0; 16];
        let (lo, hi) = bootstrap_median_ci(&samples, 300, 1);
        assert_eq!((lo, hi), (2.0, 2.0));
    }

    #[test]
    fn bootstrap_ci_edge_cases() {
        assert_eq!(bootstrap_median_ci(&[], 100, 3), (0.0, 0.0));
        assert_eq!(bootstrap_median_ci(&[5.0], 100, 3), (5.0, 5.0));
    }

    #[test]
    fn macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(unit_group, target);
        unit_group();
    }
}
