//! Minimal `serde_json` stand-in for the offline build.
//!
//! Implements the subset of the `serde_json` API this workspace uses:
//! [`Value`], [`Map`], [`json!`], [`to_string`], [`to_string_pretty`] and
//! [`from_str`]. Instead of serde's derive machinery, serializable types
//! implement the [`ToJson`] / [`FromJson`] traits by hand.
//!
//! Numbers are stored as `f64`; integer-valued numbers render without a
//! decimal point so `{"v": 3}` round-trips as `3`, matching what the
//! pipeline expects when it stringifies non-string property values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Ordered (sorted-by-key) JSON object map, like `serde_json::Map` in its
/// default configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Insert a key/value pair; returns the previous value if present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The string slice, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, when this value is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number, when this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, when this value is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<BTreeMap<String, T>> for Value {
    fn from(m: BTreeMap<String, T>) -> Self {
        Value::Object(m.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

/// Build a [`Value`] from any expression convertible into one.
///
/// Only the expression form of `serde_json::json!` is supported — the
/// workspace never uses the literal-object form.
#[macro_export]
macro_rules! json {
    ($e:expr) => {
        $crate::Value::from($e)
    };
}

/// Types that can render themselves as a JSON [`Value`].
///
/// The hand-written analogue of `serde::Serialize` for this workspace.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Types that can be reconstructed from a JSON [`Value`].
///
/// The hand-written analogue of `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Convert from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value does not have the expected shape.
    fn from_json(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize a value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serialize a value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed value does not
/// convert into `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_json(value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("{what} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Decode surrogate pairs; lone or mismatched
                            // surrogates become the replacement character.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes.get(self.pos + 1) == Some(&b'\\')
                                && self.bytes.get(self.pos + 2) == Some(&b'u')
                            {
                                let after_high = self.pos;
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if (0xDC00..0xE000).contains(&low) {
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(combined).unwrap_or('\u{FFFD}'));
                                } else {
                                    // Not a low surrogate: emit U+FFFD for
                                    // the high half and re-parse the second
                                    // escape on its own.
                                    self.pos = after_high;
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one step. `"` and `\` are ASCII, so they can never
                    // appear inside a multi-byte UTF-8 sequence — and the
                    // input arrived as &str, so the run is valid UTF-8.
                    let run_end = self.bytes[self.pos..]
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .map(|off| self.pos + off)
                        .unwrap_or(self.bytes.len());
                    let run = std::str::from_utf8(&self.bytes[self.pos..run_end])
                        .expect("input is &str and runs split at ASCII boundaries");
                    out.push_str(run);
                    self.pos = run_end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        // self.pos is at 'u'; consume its 4 hex digits, leaving pos on the
        // final digit (the caller advances past it).
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], Value::Number(1.0));
        assert_eq!(v["b"]["c"], "x\ny");
        assert_eq!(v["e"], Value::Bool(true));
        let printed = to_string(&v).unwrap();
        let v2: Value = from_str(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.5).to_string(), "3.5");
        assert_eq!(Value::Number(-7.0).to_string(), "-7");
    }

    #[test]
    fn escapes_roundtrip() {
        for s in [
            "a\"b",
            "a\\b",
            "a/b",
            "tab\there",
            "nl\nhere",
            "\u{1F600}",
            "q\u{07}z",
        ] {
            let v = Value::String(s.to_owned());
            let text = to_string(&v).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "through {text}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v, "Aé😀");
    }

    #[test]
    fn surrogate_pairs_and_malformed_surrogates() {
        // A valid pair decodes to the supplementary-plane character.
        let v: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(v, "😀");
        // Lone high surrogate at end of string: replacement character.
        let v: Value = from_str(r#""\ud800""#).unwrap();
        assert_eq!(v, "\u{FFFD}");
        // High surrogate followed by a non-low \u escape must not panic
        // (this underflowed before): both halves become replacements.
        let v: Value = from_str(r#""\ud800\ud801""#).unwrap();
        assert_eq!(v, "\u{FFFD}\u{FFFD}");
        // High surrogate followed by an ordinary escape.
        let v: Value = from_str(r#""\ud800\n""#).unwrap();
        assert_eq!(v, "\u{FFFD}\n");
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // The per-character UTF-8 revalidation made this quadratic; a
        // 400 KB literal took seconds. Keep it comfortably sub-second.
        let body: String = "abcé".repeat(100_000);
        let doc = format!("\"{body}\"");
        let t0 = std::time::Instant::now();
        let v: Value = from_str(&doc).unwrap();
        assert_eq!(v, body.as_str());
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "string parsing should be linear, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_print_indents() {
        let mut m = Map::new();
        m.insert("k".into(), Value::String("v".into()));
        let text = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(text, "{\n  \"k\": \"v\"\n}");
    }

    #[test]
    fn json_macro_and_from_impls() {
        let mut inner = Map::new();
        inner.insert("x".into(), Value::Number(1.0));
        let mut doc: BTreeMap<String, Map<String, Value>> = BTreeMap::new();
        doc.insert("bucket".into(), inner);
        let v = json!(doc);
        assert_eq!(v["bucket"]["x"], Value::Number(1.0));
    }

    #[test]
    fn index_on_missing_is_null() {
        let v: Value = from_str("{}").unwrap();
        assert_eq!(v["missing"]["deeper"], Value::Null);
        assert_eq!(v[3], Value::Null);
    }
}
