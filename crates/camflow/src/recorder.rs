//! The CamFlow LSM-hook state machine.

use std::collections::{BTreeMap, BTreeSet};

use oskernel::{EventLog, LsmEvent, LsmHook, LsmObject, Pid};
use provgraph::{PropertyGraph, Props};
use serde_json::{json, Map, Value};

use crate::CamFlowConfig;

/// A node as CamFlow's relay serializes it.
#[derive(Debug, Clone)]
struct CfNode {
    id: String,
    /// PROV category: `entity`, `activity` or `agent`.
    category: &'static str,
    props: Props,
}

/// An edge as CamFlow's relay serializes it.
#[derive(Debug, Clone)]
struct CfEdge {
    id: String,
    /// PROV relation (`used`, `wasGeneratedBy`, ...).
    relation: String,
    src: String,
    tgt: String,
    props: Props,
}

/// Output of one recording session: the PROV-JSON text plus bookkeeping
/// that tests and the pipeline can inspect.
#[derive(Debug, Clone)]
pub struct SessionOutput {
    /// The serialized PROV-JSON document.
    pub provjson: String,
    /// Node ids whose serialization was *skipped* because they were
    /// already emitted in an earlier session (only non-empty when the
    /// re-serialization workaround is disabled).
    pub skipped_nodes: Vec<String>,
}

/// Identity of a kernel object in CamFlow's persistent state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ObjKey {
    /// An inode, scoped by the boot that allocated it.
    Inode(u64, u64),
    /// A path name, scoped by boot (dentries do not survive reboots).
    Path(u64, String),
    /// A task, scoped by boot (pids recycle across boots).
    Task(u64, Pid),
    /// The machine itself: the only cross-boot identity.
    Machine,
}

/// The simulated CamFlow daemon (`camflowd`): persistent across recording
/// sessions, exactly like the real kernel-resident state.
#[derive(Debug, Clone)]
pub struct CamFlowRecorder {
    /// Recorder configuration.
    pub config: CamFlowConfig,
    /// Current node id per kernel object (latest version).
    current: BTreeMap<ObjKey, String>,
    /// Version counter per kernel object.
    version: BTreeMap<ObjKey, u64>,
    /// Stored node data for every node ever created.
    nodes: BTreeMap<String, CfNode>,
    /// Ids serialized in *any* previous session (serialize-once state).
    serialized: BTreeSet<String>,
    next_node: u64,
    next_edge: u64,
}

impl Default for CamFlowRecorder {
    fn default() -> Self {
        Self::new(CamFlowConfig::default())
    }
}

impl CamFlowRecorder {
    /// Create a daemon with the given configuration.
    pub fn new(config: CamFlowConfig) -> Self {
        CamFlowRecorder {
            config,
            current: BTreeMap::new(),
            version: BTreeMap::new(),
            nodes: BTreeMap::new(),
            serialized: BTreeSet::new(),
            next_node: 0,
            next_edge: 0,
        }
    }

    /// Create a daemon with the baseline (0.4.5) configuration.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Run one recording session over a kernel event log and serialize
    /// what this session observes.
    pub fn record_session(&mut self, log: &EventLog) -> SessionOutput {
        let mut session = Session {
            daemon: self,
            new_nodes: Vec::new(),
            edges: Vec::new(),
            referenced: BTreeSet::new(),
        };
        for ev in log.lsm_events() {
            session.handle(ev);
        }
        session.finish()
    }

    /// Convenience: record a session and parse the PROV-JSON back into a
    /// property graph.
    ///
    /// # Errors
    ///
    /// Fails when the output references nodes that were never serialized —
    /// the pre-workaround CamFlow failure mode (paper §3.2).
    pub fn record_session_graph(
        &mut self,
        log: &EventLog,
    ) -> Result<PropertyGraph, provgraph::GraphError> {
        let out = self.record_session(log);
        provgraph::provjson::parse_provjson(&out.provjson)
    }

    fn fresh_node_id(&mut self) -> String {
        self.next_node += 1;
        format!("cf:{}", self.next_node)
    }

    fn fresh_edge_id(&mut self) -> String {
        self.next_edge += 1;
        format!("cf:e{}", self.next_edge)
    }

    /// Does version 0.4.5 serialize records for this hook at all?
    fn handles_hook(hook: LsmHook) -> bool {
        !matches!(
            hook,
            // Not recorded in 0.4.5 (Table 2: symlink/mknod/pipe empty NR;
            // kill/exit invisible; close's file_free lands outside the
            // recording window).
            LsmHook::InodeSymlink
                | LsmHook::InodeMknod
                | LsmHook::TaskKill
                | LsmHook::TaskFree
                | LsmHook::FileFree
        )
    }
}

/// One recording session in flight.
struct Session<'a> {
    daemon: &'a mut CamFlowRecorder,
    /// Nodes created during this session (always serialized).
    new_nodes: Vec<String>,
    /// Edges created during this session.
    edges: Vec<CfEdge>,
    /// All node ids referenced by this session's edges or creations.
    referenced: BTreeSet<String>,
}

impl<'a> Session<'a> {
    fn create_node(&mut self, key: ObjKey, category: &'static str, props: Props) -> String {
        let id = self.daemon.fresh_node_id();
        let version = self.daemon.version.get(&key).copied().unwrap_or(0);
        let mut props = props;
        props.insert("cf:version".to_owned(), version.to_string());
        self.daemon.nodes.insert(
            id.clone(),
            CfNode {
                id: id.clone(),
                category,
                props,
            },
        );
        self.daemon.current.insert(key, id.clone());
        self.new_nodes.push(id.clone());
        self.referenced.insert(id.clone());
        id
    }

    fn add_edge(&mut self, relation: &str, src: &str, tgt: &str, props: Props) {
        let id = self.daemon.fresh_edge_id();
        self.referenced.insert(src.to_owned());
        self.referenced.insert(tgt.to_owned());
        self.edges.push(CfEdge {
            id,
            relation: relation.to_owned(),
            src: src.to_owned(),
            tgt: tgt.to_owned(),
            props,
        });
    }

    /// The machine agent node (one per boot).
    fn machine(&mut self, ev: &LsmEvent) -> String {
        if let Some(id) = self.daemon.current.get(&ObjKey::Machine) {
            self.referenced.insert(id.clone());
            return id.clone();
        }
        let mut props = Props::new();
        props.insert("prov:type".to_owned(), "machine".to_owned());
        props.insert("cf:date".to_owned(), ev.jiffies.to_string()); // volatile
        self.create_node(ObjKey::Machine, "agent", props)
    }

    /// Current task activity node for a pid, creating it if unseen.
    fn task(&mut self, ev: &LsmEvent) -> String {
        let key = ObjKey::Task(ev.boot, ev.pid);
        if let Some(id) = self.daemon.current.get(&key) {
            self.referenced.insert(id.clone());
            return id.clone();
        }
        let mut props = Props::new();
        props.insert("prov:type".to_owned(), "task".to_owned());
        props.insert("cf:pid".to_owned(), ev.pid.to_string());
        props.insert("cf:uid".to_owned(), ev.creds.uid.to_string());
        props.insert("cf:gid".to_owned(), ev.creds.gid.to_string());
        props.insert("cf:jiffies".to_owned(), ev.jiffies.to_string()); // volatile
        let id = self.create_node(key, "activity", props);
        let machine = self.machine(ev);
        self.add_edge("wasAssociatedWith", &id, &machine, Props::new());
        id
    }

    /// New version of a task (credential change, exec).
    fn new_task_version(&mut self, ev: &LsmEvent, why: &str) -> String {
        let old = self.task(ev);
        let key = ObjKey::Task(ev.boot, ev.pid);
        *self.daemon.version.entry(key.clone()).or_insert(0) += 1;
        let mut props = Props::new();
        props.insert("prov:type".to_owned(), "task".to_owned());
        props.insert("cf:pid".to_owned(), ev.pid.to_string());
        props.insert("cf:uid".to_owned(), ev.creds.uid.to_string());
        props.insert("cf:gid".to_owned(), ev.creds.gid.to_string());
        props.insert("cf:jiffies".to_owned(), ev.jiffies.to_string());
        let id = self.create_node(key, "activity", props);
        let mut eprops = Props::new();
        eprops.insert("cf:type".to_owned(), why.to_owned());
        self.add_edge("wasInformedBy", &id, &old, eprops);
        let machine = self.machine(ev);
        self.add_edge("wasAssociatedWith", &id, &machine, Props::new());
        id
    }

    /// Current entity node for an inode object.
    fn inode_entity(&mut self, obj: &LsmObject, ev: &LsmEvent) -> Option<String> {
        let LsmObject::Inode {
            ino,
            kind,
            mode,
            uid,
        } = obj
        else {
            return None;
        };
        let key = ObjKey::Inode(ev.boot, *ino);
        if let Some(id) = self.daemon.current.get(&key) {
            self.referenced.insert(id.clone());
            return Some(id.clone());
        }
        let mut props = Props::new();
        props.insert("prov:type".to_owned(), kind.clone());
        props.insert("cf:ino".to_owned(), ino.to_string()); // volatile
        props.insert("cf:mode".to_owned(), format!("{mode:o}"));
        props.insert("cf:uid".to_owned(), uid.to_string());
        props.insert("cf:date".to_owned(), ev.jiffies.to_string()); // volatile
        Some(self.create_node(key, "entity", props))
    }

    /// New version of an inode entity (write, setattr).
    fn new_inode_version(&mut self, obj: &LsmObject, ev: &LsmEvent) -> Option<String> {
        let old = self.inode_entity(obj, ev)?;
        let LsmObject::Inode {
            ino,
            kind,
            mode,
            uid,
        } = obj
        else {
            return None;
        };
        let key = ObjKey::Inode(ev.boot, *ino);
        *self.daemon.version.entry(key.clone()).or_insert(0) += 1;
        let mut props = Props::new();
        props.insert("prov:type".to_owned(), kind.clone());
        props.insert("cf:ino".to_owned(), ino.to_string());
        props.insert("cf:mode".to_owned(), format!("{mode:o}"));
        props.insert("cf:uid".to_owned(), uid.to_string());
        props.insert("cf:date".to_owned(), ev.jiffies.to_string());
        let id = self.create_node(key, "entity", props);
        self.add_edge("wasDerivedFrom", &id, &old, Props::new());
        Some(id)
    }

    /// Entity node for a path name.
    fn path_entity(&mut self, path: &str, ev: &LsmEvent) -> String {
        let key = ObjKey::Path(ev.boot, path.to_owned());
        if let Some(id) = self.daemon.current.get(&key) {
            self.referenced.insert(id.clone());
            return id.clone();
        }
        let mut props = Props::new();
        props.insert("prov:type".to_owned(), "path".to_owned());
        props.insert("cf:pathname".to_owned(), path.to_owned());
        props.insert("cf:date".to_owned(), ev.jiffies.to_string()); // volatile
        self.create_node(key, "entity", props)
    }

    fn typed(cf_type: &str) -> Props {
        let mut p = Props::new();
        p.insert("cf:type".to_owned(), cf_type.to_owned());
        p
    }

    fn handle(&mut self, ev: &LsmEvent) {
        if !CamFlowRecorder::handles_hook(ev.hook) {
            return;
        }
        if !ev.allowed && !self.daemon.config.record_denied {
            // Denied operations are observable in principle but not
            // recorded by default (paper §3.1, Alice).
            return;
        }
        match ev.hook {
            LsmHook::FileOpen => {
                let task = self.task(ev);
                let Some(inode) = ev.objects.first().and_then(|o| self.inode_entity(o, ev)) else {
                    return;
                };
                if let Some(LsmObject::Path { path }) = ev.objects.get(1) {
                    let path = path.clone();
                    let p = self.path_entity(&path, ev);
                    self.add_edge("named", &inode, &p, Props::new());
                }
                self.add_edge("used", &task, &inode, Self::typed("open"));
            }
            LsmHook::FilePermissionRead => {
                let task = self.task(ev);
                match ev.objects.first() {
                    Some(obj @ LsmObject::Inode { .. }) => {
                        if let Some(inode) = self.inode_entity(obj, ev) {
                            self.add_edge("used", &task, &inode, Self::typed("read"));
                        }
                    }
                    Some(LsmObject::Path { path }) => {
                        let path = path.clone();
                        let p = self.path_entity(&path, ev);
                        self.add_edge("used", &task, &p, Self::typed("read"));
                    }
                    _ => {}
                }
            }
            LsmHook::FilePermissionWrite => {
                let task = self.task(ev);
                match ev.objects.first() {
                    Some(obj @ LsmObject::Inode { .. }) => {
                        if let Some(v) = self.new_inode_version(obj, ev) {
                            self.add_edge("wasGeneratedBy", &v, &task, Self::typed("write"));
                        }
                    }
                    Some(LsmObject::Path { path }) => {
                        let path = path.clone();
                        let p = self.path_entity(&path, ev);
                        self.add_edge("wasGeneratedBy", &p, &task, Self::typed("write"));
                    }
                    _ => {}
                }
            }
            LsmHook::InodeCreate => {
                let task = self.task(ev);
                if let Some(LsmObject::Path { path }) = ev.objects.first() {
                    let path = path.clone();
                    let p = self.path_entity(&path, ev);
                    self.add_edge("wasGeneratedBy", &p, &task, Self::typed("create"));
                }
            }
            LsmHook::InodeLink => {
                let task = self.task(ev);
                let Some(inode) = ev.objects.first().and_then(|o| self.inode_entity(o, ev)) else {
                    return;
                };
                if let Some(LsmObject::Path { path }) = ev.objects.get(1) {
                    let path = path.clone();
                    let p = self.path_entity(&path, ev);
                    self.add_edge("named", &inode, &p, Props::new());
                    self.add_edge("wasGeneratedBy", &p, &task, Self::typed("link"));
                }
            }
            LsmHook::InodeRename => {
                // "CamFlow represents a rename as adding a new path
                // associated with the file object; the old path does not
                // appear in the benchmark result" (paper §4.1).
                let task = self.task(ev);
                let Some(inode) = ev.objects.first().and_then(|o| self.inode_entity(o, ev)) else {
                    return;
                };
                if let Some(LsmObject::Path { path }) = ev.objects.get(2) {
                    let path = path.clone();
                    let p = self.path_entity(&path, ev);
                    self.add_edge("named", &inode, &p, Props::new());
                    self.add_edge("wasGeneratedBy", &p, &task, Self::typed("rename"));
                }
            }
            LsmHook::InodeUnlink => {
                let task = self.task(ev);
                if let Some(inode) = ev.objects.first().and_then(|o| self.inode_entity(o, ev)) {
                    self.add_edge("used", &task, &inode, Self::typed("unlink"));
                }
            }
            LsmHook::InodeSetattr => {
                let task = self.task(ev);
                if let Some(v) = ev
                    .objects
                    .first()
                    .and_then(|o| self.new_inode_version(o, ev))
                {
                    self.add_edge("wasGeneratedBy", &v, &task, Self::typed("setattr"));
                }
            }
            LsmHook::InodeSetown => {
                let task = self.task(ev);
                if let Some(v) = ev
                    .objects
                    .first()
                    .and_then(|o| self.new_inode_version(o, ev))
                {
                    self.add_edge("wasGeneratedBy", &v, &task, Self::typed("setown"));
                }
            }
            LsmHook::TaskAlloc => {
                let parent = self.task(ev);
                if let Some(LsmObject::Task { pid }) = ev.objects.first() {
                    let mut child_ev = ev.clone();
                    child_ev.pid = *pid;
                    let child = self.task(&child_ev);
                    self.add_edge("wasInformedBy", &child, &parent, Self::typed("fork"));
                }
            }
            LsmHook::BprmCheck => {
                let new_task = self.new_task_version(ev, "execve");
                if let Some(inode) = ev.objects.first().and_then(|o| self.inode_entity(o, ev)) {
                    self.add_edge("used", &new_task, &inode, Self::typed("exec"));
                    if let Some(LsmObject::Path { path }) = ev.objects.get(1) {
                        let path = path.clone();
                        let p = self.path_entity(&path, ev);
                        self.add_edge("named", &inode, &p, Props::new());
                    }
                }
            }
            LsmHook::TaskFixSetuid => {
                self.new_task_version(ev, "setuid");
            }
            LsmHook::TaskFixSetgid => {
                self.new_task_version(ev, "setgid");
            }
            LsmHook::FileSplice => {
                let task = self.task(ev);
                let (Some(LsmObject::Path { path: p_in }), Some(LsmObject::Path { path: p_out })) =
                    (ev.objects.first(), ev.objects.get(1))
                else {
                    return;
                };
                let (p_in, p_out) = (p_in.clone(), p_out.clone());
                let src = self.path_entity(&p_in, ev);
                let dst = self.path_entity(&p_out, ev);
                self.add_edge("wasDerivedFrom", &dst, &src, Self::typed("tee"));
                self.add_edge("used", &task, &src, Self::typed("tee"));
            }
            // Filtered out in handles_hook.
            LsmHook::InodeSymlink
            | LsmHook::InodeMknod
            | LsmHook::TaskKill
            | LsmHook::TaskFree
            | LsmHook::FileFree => {}
            _ => {}
        }
    }

    /// Serialize the session: new nodes always; previously-serialized
    /// referenced nodes only under the workaround.
    fn finish(self) -> SessionOutput {
        let Session {
            daemon,
            new_nodes,
            edges,
            referenced,
        } = self;
        let mut emit: Vec<&CfNode> = Vec::new();
        let mut skipped: Vec<String> = Vec::new();
        let new_set: BTreeSet<&String> = new_nodes.iter().collect();
        for id in &referenced {
            let Some(node) = daemon.nodes.get(id) else {
                continue;
            };
            if new_set.contains(id) || !daemon.serialized.contains(id) {
                emit.push(node);
            } else if daemon.config.reserialize_workaround {
                // 0.4.5 workaround: re-serialize when referenced again.
                emit.push(node);
            } else {
                skipped.push(id.clone());
            }
        }
        // Build the PROV-JSON document directly so that (without the
        // workaround) dangling references survive into the output, exactly
        // like the real relay.
        let mut doc: BTreeMap<String, Map<String, Value>> = BTreeMap::new();
        for n in &emit {
            let mut obj = Map::new();
            for (k, v) in &n.props {
                obj.insert(k.clone(), Value::String(v.clone()));
            }
            doc.entry(n.category.to_owned())
                .or_default()
                .insert(n.id.clone(), Value::Object(obj));
            daemon.serialized.insert(n.id.clone());
        }
        for e in &edges {
            let (src_key, tgt_key) = match e.relation.as_str() {
                "used" => ("prov:activity", "prov:entity"),
                "wasGeneratedBy" => ("prov:entity", "prov:activity"),
                "wasInformedBy" => ("prov:informed", "prov:informant"),
                "wasDerivedFrom" => ("prov:generatedEntity", "prov:usedEntity"),
                "wasAssociatedWith" => ("prov:activity", "prov:agent"),
                _ => ("provmark:from", "provmark:to"),
            };
            let bucket = if src_key == "provmark:from" {
                "provmark:relation"
            } else {
                e.relation.as_str()
            };
            let mut obj = Map::new();
            if bucket == "provmark:relation" {
                obj.insert(
                    "provmark:label".to_owned(),
                    Value::String(e.relation.clone()),
                );
            }
            obj.insert(src_key.to_owned(), Value::String(e.src.clone()));
            obj.insert(tgt_key.to_owned(), Value::String(e.tgt.clone()));
            for (k, v) in &e.props {
                obj.insert(k.clone(), Value::String(v.clone()));
            }
            doc.entry(bucket.to_owned())
                .or_default()
                .insert(e.id.clone(), Value::Object(obj));
        }
        let provjson =
            serde_json::to_string_pretty(&json!(doc)).expect("prov-json document serializes");
        SessionOutput {
            provjson,
            skipped_nodes: skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::program::{Op, Program, SetupAction};
    use oskernel::{Kernel, OpenFlags};

    fn run_log(ops: Vec<Op>, setup: Vec<SetupAction>, seed: u64) -> Kernel {
        let mut prog = Program::new("test");
        for s in setup {
            prog = prog.setup(s);
        }
        prog = prog.ops(ops);
        let mut kernel = Kernel::with_seed(seed);
        kernel.run_program(&prog);
        kernel
    }

    fn graph(ops: Vec<Op>, setup: Vec<SetupAction>) -> PropertyGraph {
        let kernel = run_log(ops, setup, 1);
        CamFlowRecorder::baseline()
            .record_session_graph(kernel.event_log())
            .unwrap()
    }

    fn edge_with_type<'a>(g: &'a PropertyGraph, cf_type: &str) -> Option<&'a provgraph::EdgeData> {
        g.edges()
            .find(|e| e.props.get("cf:type").map(String::as_str) == Some(cf_type))
    }

    #[test]
    fn open_creates_inode_path_and_used_edge() {
        let g = graph(
            vec![Op::Open {
                path: "t".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            }],
            vec![],
        );
        assert!(edge_with_type(&g, "open").is_some());
        assert!(g
            .nodes()
            .any(|n| n.props.get("cf:pathname").map(String::as_str) == Some("/staging/t")));
        assert!(g.edges().any(|e| e.label.as_str() == "named"));
    }

    #[test]
    fn rename_adds_new_path_old_path_absent_from_activity() {
        let g = graph(
            vec![Op::Rename {
                old: "a".into(),
                new: "b".into(),
            }],
            vec![SetupAction::CreateFile {
                path: "/staging/a".into(),
                mode: 0o644,
            }],
        );
        let rename_edge = edge_with_type(&g, "rename").expect("rename recorded");
        let new_path = g.node(&rename_edge.src).unwrap();
        assert_eq!(
            new_path.props.get("cf:pathname").map(String::as_str),
            Some("/staging/b"),
            "rename appears as a new path for the file object (§4.1)"
        );
        // The old path gains no edges from the rename (it may exist from
        // setup-time opens — but nothing in the rename structure links it).
        assert!(!g.nodes().any(|n| {
            n.props.get("cf:pathname").map(String::as_str) == Some("/staging/a")
                && g.out_edges(&n.id)
                    .chain(g.in_edges(&n.id))
                    .any(|e| e.props.get("cf:type").map(String::as_str) == Some("rename"))
        }));
    }

    #[test]
    fn denied_operations_not_recorded_by_default() {
        let ops = vec![
            Op::Setuid { uid: 1000 },
            Op::RenameExpectFailure {
                old: "mine".into(),
                new: "/etc/passwd".into(),
            },
        ];
        let setup = vec![SetupAction::CreateFile {
            path: "/staging/mine".into(),
            mode: 0o644,
        }];
        let g = graph(ops.clone(), setup.clone());
        assert!(
            edge_with_type(&g, "rename").is_none(),
            "denied rename dropped"
        );
        // With the extension enabled, the denied hook is visible.
        let kernel = run_log(ops, setup, 1);
        let mut rec = CamFlowRecorder::new(CamFlowConfig {
            record_denied: true,
            ..CamFlowConfig::default()
        });
        let g2 = rec.record_session_graph(kernel.event_log()).unwrap();
        assert!(edge_with_type(&g2, "rename").is_some());
    }

    #[test]
    fn symlink_and_mknod_not_recorded() {
        let base = graph(vec![], vec![]);
        let sym = graph(
            vec![Op::Symlink {
                target: "/staging/x".into(),
                linkpath: "s".into(),
            }],
            vec![SetupAction::CreateFile {
                path: "/staging/x".into(),
                mode: 0o644,
            }],
        );
        // Setup file never touched during recording; symlink unhandled.
        assert_eq!(sym.size(), base.size(), "symlink empty (NR) in 0.4.5");
        let mk = graph(
            vec![Op::Mknod {
                path: "f".into(),
                mode: 0o644,
            }],
            vec![],
        );
        assert_eq!(mk.size(), base.size(), "mknod empty (NR)");
    }

    #[test]
    fn pipe_unrecorded_tee_recorded() {
        let base = graph(vec![], vec![]);
        let pipe = graph(
            vec![Op::PipeOp {
                read_var: "r".into(),
                write_var: "w".into(),
            }],
            vec![],
        );
        assert_eq!(pipe.size(), base.size(), "pipe empty (NR)");
        let tee = graph(
            vec![
                Op::PipeOp {
                    read_var: "r1".into(),
                    write_var: "w1".into(),
                },
                Op::Pipe2Op {
                    read_var: "r2".into(),
                    write_var: "w2".into(),
                },
                Op::Write {
                    fd_var: "w1".into(),
                    len: 4,
                },
                Op::Tee {
                    in_var: "r1".into(),
                    out_var: "w2".into(),
                    len: 4,
                },
            ],
            vec![],
        );
        assert!(edge_with_type(&tee, "tee").is_some(), "tee recorded (ok)");
    }

    #[test]
    fn setid_family_always_recorded_even_without_change() {
        let base = graph(vec![], vec![]);
        let g = graph(
            vec![Op::Setresgid {
                rgid: Some(0),
                egid: Some(0),
                sgid: Some(0),
            }],
            vec![],
        );
        assert!(
            g.size() > base.size(),
            "CamFlow tracks all set*id calls (Table 2: all ok)"
        );
        assert!(g
            .edges()
            .any(|e| e.props.get("cf:type").map(String::as_str) == Some("setgid")));
    }

    #[test]
    fn writes_create_versions() {
        let g = graph(
            vec![
                Op::Open {
                    path: "t".into(),
                    flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                    mode: 0o644,
                    fd_var: "id".into(),
                },
                Op::Write {
                    fd_var: "id".into(),
                    len: 5,
                },
                Op::Write {
                    fd_var: "id".into(),
                    len: 5,
                },
            ],
            vec![],
        );
        let derived = g
            .edges()
            .filter(|e| e.label.as_str() == "wasDerivedFrom")
            .count();
        assert!(derived >= 2, "each write derives a new entity version");
    }

    #[test]
    fn fork_connects_tasks() {
        let g = graph(vec![Op::Fork { child: vec![] }], vec![]);
        assert!(g.edges().any(|e| e.label.as_str() == "wasInformedBy"
            && e.props.get("cf:type").map(String::as_str) == Some("fork")));
    }

    #[test]
    fn machine_agent_present_and_associated() {
        let g = graph(vec![], vec![]);
        let machine = g
            .nodes()
            .find(|n| n.props.get("prov:type").map(String::as_str) == Some("machine"))
            .expect("machine agent");
        assert_eq!(machine.label.as_str(), "agent");
        assert!(g
            .edges()
            .any(|e| e.label.as_str() == "wasAssociatedWith" && e.tgt == machine.id));
    }

    #[test]
    fn serialize_once_quirk_without_workaround() {
        let mut rec = CamFlowRecorder::new(CamFlowConfig {
            reserialize_workaround: false,
            ..CamFlowConfig::default()
        });
        let k1 = run_log(vec![], vec![], 1);
        let first = rec.record_session(k1.event_log());
        assert!(first.skipped_nodes.is_empty(), "first session emits all");
        provgraph::provjson::parse_provjson(&first.provjson).unwrap();
        // Second session re-references shared objects (machine, lib paths)
        // whose serialization is now skipped → dangling references.
        let k2 = run_log(vec![], vec![], 2);
        let second = rec.record_session(k2.event_log());
        assert!(
            !second.skipped_nodes.is_empty(),
            "second session must skip already-serialized nodes"
        );
        assert!(
            provgraph::provjson::parse_provjson(&second.provjson).is_err(),
            "pre-workaround output is unusable for benchmarking (§3.2)"
        );
    }

    #[test]
    fn workaround_keeps_sessions_parseable_and_similar() {
        let mut rec = CamFlowRecorder::baseline();
        let ops = vec![Op::Creat {
            path: "t".into(),
            mode: 0o644,
            fd_var: "id".into(),
        }];
        let k1 = run_log(ops.clone(), vec![], 1);
        let g1 = rec.record_session_graph(k1.event_log()).unwrap();
        let k2 = run_log(ops, vec![], 2);
        let g2 = rec.record_session_graph(k2.event_log()).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(
            g1.node_label_multiset(),
            g2.node_label_multiset(),
            "sessions over the same program must be shape-compatible"
        );
    }

    #[test]
    fn close_leaves_no_record() {
        let open_only = graph(
            vec![Op::Open {
                path: "t".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            }],
            vec![],
        );
        let with_close = graph(
            vec![
                Op::Open {
                    path: "t".into(),
                    flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                    mode: 0o644,
                    fd_var: "id".into(),
                },
                Op::Close {
                    fd_var: "id".into(),
                },
            ],
            vec![],
        );
        assert_eq!(
            open_only.size(),
            with_close.size(),
            "file_free lands outside the recording window (empty, LP)"
        );
    }

    #[test]
    fn dup_invisible() {
        let base = graph(
            vec![Op::Open {
                path: "t".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            }],
            vec![],
        );
        let with_dup = graph(
            vec![
                Op::Open {
                    path: "t".into(),
                    flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                    mode: 0o644,
                    fd_var: "id".into(),
                },
                Op::Dup {
                    fd_var: "id".into(),
                    new_var: "d".into(),
                },
            ],
            vec![],
        );
        assert_eq!(base.size(), with_dup.size(), "dup empty (NR)");
    }
}
