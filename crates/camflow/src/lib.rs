//! Simulated **CamFlow** provenance recorder (paper §2, Figure 2).
//!
//! CamFlow captures whole-system provenance from inside the kernel via
//! Linux Security Module (and NetFilter) hooks, relaying records to user
//! space for serialization as W3C PROV-JSON. This simulation consumes the
//! [`oskernel`] LSM event stream and reproduces the behaviours the paper
//! reports for CamFlow 0.4.5:
//!
//! - whole-system, **stateful** capture: object identities (inodes, paths,
//!   tasks) persist across recording sessions, and "CamFlow only serialized
//!   nodes and edges once, when first seen" — version 0.4.5 added the
//!   re-serialization workaround that makes repeated benchmarking possible
//!   (§3.2). Disable [`CamFlowConfig::reserialize_workaround`] to reproduce
//!   the pre-workaround failure (edges referencing never-serialized nodes);
//! - built-in **versioning**: writes create new entity versions connected
//!   by `wasDerivedFrom`; credential changes create new task versions;
//! - hook coverage of 0.4.5 (Table 2): `symlink`, `mknod`, `pipe` and
//!   `dup` are not recorded; `tee` *is*; `close` is only visible as an
//!   eventual kernel structure free, outside the recording window;
//! - denied operations are observable in principle but **not recorded** by
//!   default (§3.1, Alice) — [`CamFlowConfig::record_denied`] exposes the
//!   extension;
//! - `rename` appears as "adding a new path associated with the file
//!   object; the old path does not appear" (§4.1, Figure 1b).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod recorder;

pub use recorder::{CamFlowRecorder, SessionOutput};

/// Configuration surface of the simulated CamFlow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CamFlowConfig {
    /// Re-serialize already-seen nodes when they are referenced in a later
    /// session (the 0.4.5 workaround ProvMark depends on, §3.2). With
    /// `false`, later sessions emit edges whose endpoints are missing from
    /// the output, and transformation fails.
    pub reserialize_workaround: bool,
    /// Record LSM events for operations the kernel denied. Off by default:
    /// "CamFlow can in principle monitor failed system calls … but does
    /// not do so in this case" (§3.1).
    pub record_denied: bool,
}

impl Default for CamFlowConfig {
    fn default() -> Self {
        CamFlowConfig {
            reserialize_workaround: true,
            record_denied: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_0_4_5_behaviour() {
        let c = CamFlowConfig::default();
        assert!(c.reserialize_workaround);
        assert!(!c.record_denied);
    }
}
