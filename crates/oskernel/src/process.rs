use std::collections::BTreeMap;

use crate::types::{Gid, Pid, Uid};

/// POSIX credential set: real, effective, and saved user/group ids.
///
/// The `setres[ug]id` family manipulates all three; the distinction matters
/// for the paper's observation that SPADE only notices `setresgid` when an
/// attribute actually *changes* (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credentials {
    /// Real user id.
    pub uid: Uid,
    /// Effective user id (used for permission checks).
    pub euid: Uid,
    /// Saved user id.
    pub suid: Uid,
    /// Real group id.
    pub gid: Gid,
    /// Effective group id.
    pub egid: Gid,
    /// Saved group id.
    pub sgid: Gid,
}

impl Credentials {
    /// Root credentials (all ids zero).
    pub fn root() -> Self {
        Credentials {
            uid: 0,
            euid: 0,
            suid: 0,
            gid: 0,
            egid: 0,
            sgid: 0,
        }
    }

    /// An ordinary user with all user ids `uid` and group ids `gid`.
    pub fn user(uid: Uid, gid: Gid) -> Self {
        Credentials {
            uid,
            euid: uid,
            suid: uid,
            gid,
            egid: gid,
            sgid: gid,
        }
    }

    /// `true` if the process may switch to arbitrary ids (root privilege).
    pub fn privileged(&self) -> bool {
        self.euid == 0
    }
}

/// One slot in a process's file descriptor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    /// Index into the kernel's open file description table. `dup`ed and
    /// `fork`-inherited descriptors share the description (offset, flags).
    pub ofd: usize,
    /// Close-on-exec flag (per descriptor, not per description).
    pub cloexec: bool,
}

/// Lifecycle state of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Scheduled and runnable.
    Running,
    /// Suspended in `vfork` until the child exits or execs.
    VforkWait,
    /// Terminated normally with the given exit code.
    Exited(i32),
    /// Terminated by a signal (e.g. `kill`); no normal exit record.
    Killed(i32),
}

/// A simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id (volatile across trials).
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Credentials.
    pub creds: Credentials,
    /// File descriptor table.
    pub fds: BTreeMap<i32, FdEntry>,
    /// Executable path (`/usr/bin/bench_fg` etc.).
    pub exe: String,
    /// Short command name (basename of `exe`), as audit's `comm` field.
    pub comm: String,
    /// Current working directory.
    pub cwd: String,
    /// Environment variables (recorded by OPUS at exec time).
    pub env: BTreeMap<String, String>,
    /// Lifecycle state.
    pub state: ProcessState,
    /// `true` while this process was created by `vfork` and has not yet
    /// exited or execed (its parent is suspended).
    pub vfork_child: bool,
}

impl Process {
    /// Create a fresh process.
    pub fn new(pid: Pid, ppid: Pid, creds: Credentials, exe: &str) -> Self {
        let comm = exe.rsplit('/').next().unwrap_or(exe).to_owned();
        Process {
            pid,
            ppid,
            creds,
            fds: BTreeMap::new(),
            exe: exe.to_owned(),
            comm,
            cwd: "/".to_owned(),
            env: BTreeMap::new(),
            state: ProcessState::Running,
            vfork_child: false,
        }
    }

    /// Lowest unused descriptor number (POSIX allocation rule).
    pub fn lowest_free_fd(&self) -> i32 {
        let mut fd = 0;
        while self.fds.contains_key(&fd) {
            fd += 1;
        }
        fd
    }

    /// `true` if the process has terminated (exited or killed).
    pub fn terminated(&self) -> bool {
        matches!(
            self.state,
            ProcessState::Exited(_) | ProcessState::Killed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creds_constructors() {
        let r = Credentials::root();
        assert!(r.privileged());
        let u = Credentials::user(1000, 100);
        assert_eq!(u.euid, 1000);
        assert_eq!(u.sgid, 100);
        assert!(!u.privileged());
    }

    #[test]
    fn lowest_free_fd_fills_gaps() {
        let mut p = Process::new(10, 1, Credentials::root(), "/bin/x");
        assert_eq!(p.lowest_free_fd(), 0);
        p.fds.insert(
            0,
            FdEntry {
                ofd: 0,
                cloexec: false,
            },
        );
        p.fds.insert(
            1,
            FdEntry {
                ofd: 1,
                cloexec: false,
            },
        );
        p.fds.insert(
            3,
            FdEntry {
                ofd: 2,
                cloexec: false,
            },
        );
        assert_eq!(p.lowest_free_fd(), 2);
    }

    #[test]
    fn comm_is_basename() {
        let p = Process::new(10, 1, Credentials::root(), "/usr/bin/bench_fg");
        assert_eq!(p.comm, "bench_fg");
    }

    #[test]
    fn terminated_states() {
        let mut p = Process::new(10, 1, Credentials::root(), "/bin/x");
        assert!(!p.terminated());
        p.state = ProcessState::Exited(0);
        assert!(p.terminated());
        p.state = ProcessState::Killed(9);
        assert!(p.terminated());
    }
}
