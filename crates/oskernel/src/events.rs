//! Observation events emitted by the kernel at the three layers the
//! provenance recorders hook (paper Figure 2).

use std::collections::BTreeMap;
use std::fmt;

use crate::errno::Errno;
use crate::process::Credentials;
use crate::types::{Ino, Mode, Pid};

/// The 44 benchmarked system calls (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
#[non_exhaustive]
pub enum Syscall {
    // Group 1: files
    Close,
    Creat,
    Dup,
    Dup2,
    Dup3,
    Link,
    Linkat,
    Symlink,
    Symlinkat,
    Mknod,
    Mknodat,
    Open,
    Openat,
    Read,
    Pread,
    Rename,
    Renameat,
    Truncate,
    Ftruncate,
    Unlink,
    Unlinkat,
    Write,
    Pwrite,
    // Group 2: processes
    Clone,
    Execve,
    Exit,
    Fork,
    Kill,
    Vfork,
    // Group 3: permissions
    Chmod,
    Fchmod,
    Fchmodat,
    Chown,
    Fchown,
    Fchownat,
    Setgid,
    Setregid,
    Setresgid,
    Setuid,
    Setreuid,
    Setresuid,
    // Group 4: pipes
    Pipe,
    Pipe2,
    Tee,
}

impl Syscall {
    /// The lowercase syscall name as it appears in audit logs.
    pub fn name(self) -> &'static str {
        match self {
            Syscall::Close => "close",
            Syscall::Creat => "creat",
            Syscall::Dup => "dup",
            Syscall::Dup2 => "dup2",
            Syscall::Dup3 => "dup3",
            Syscall::Link => "link",
            Syscall::Linkat => "linkat",
            Syscall::Symlink => "symlink",
            Syscall::Symlinkat => "symlinkat",
            Syscall::Mknod => "mknod",
            Syscall::Mknodat => "mknodat",
            Syscall::Open => "open",
            Syscall::Openat => "openat",
            Syscall::Read => "read",
            Syscall::Pread => "pread",
            Syscall::Rename => "rename",
            Syscall::Renameat => "renameat",
            Syscall::Truncate => "truncate",
            Syscall::Ftruncate => "ftruncate",
            Syscall::Unlink => "unlink",
            Syscall::Unlinkat => "unlinkat",
            Syscall::Write => "write",
            Syscall::Pwrite => "pwrite",
            Syscall::Clone => "clone",
            Syscall::Execve => "execve",
            Syscall::Exit => "exit",
            Syscall::Fork => "fork",
            Syscall::Kill => "kill",
            Syscall::Vfork => "vfork",
            Syscall::Chmod => "chmod",
            Syscall::Fchmod => "fchmod",
            Syscall::Fchmodat => "fchmodat",
            Syscall::Chown => "chown",
            Syscall::Fchown => "fchown",
            Syscall::Fchownat => "fchownat",
            Syscall::Setgid => "setgid",
            Syscall::Setregid => "setregid",
            Syscall::Setresgid => "setresgid",
            Syscall::Setuid => "setuid",
            Syscall::Setreuid => "setreuid",
            Syscall::Setresuid => "setresuid",
            Syscall::Pipe => "pipe",
            Syscall::Pipe2 => "pipe2",
            Syscall::Tee => "tee",
        }
    }

    /// The paper's Table 1 group (1 files, 2 processes, 3 permissions,
    /// 4 pipes).
    pub fn group(self) -> u8 {
        use Syscall::*;
        match self {
            Close | Creat | Dup | Dup2 | Dup3 | Link | Linkat | Symlink | Symlinkat | Mknod
            | Mknodat | Open | Openat | Read | Pread | Rename | Renameat | Truncate | Ftruncate
            | Unlink | Unlinkat | Write | Pwrite => 1,
            Clone | Execve | Exit | Fork | Kill | Vfork => 2,
            Chmod | Fchmod | Fchmodat | Chown | Fchown | Fchownat | Setgid | Setregid
            | Setresgid | Setuid | Setreuid | Setresuid => 3,
            Pipe | Pipe2 | Tee => 4,
        }
    }

    /// All 44 benchmarked syscalls in Table 1 order.
    pub fn all() -> &'static [Syscall] {
        use Syscall::*;
        &[
            Close, Creat, Dup, Dup2, Dup3, Link, Linkat, Symlink, Symlinkat, Mknod, Mknodat, Open,
            Openat, Read, Pread, Rename, Renameat, Truncate, Ftruncate, Unlink, Unlinkat, Write,
            Pwrite, Clone, Execve, Exit, Fork, Kill, Vfork, Chmod, Fchmod, Fchmodat, Chown, Fchown,
            Fchownat, Setgid, Setregid, Setresgid, Setuid, Setreuid, Setresuid, Pipe, Pipe2, Tee,
        ]
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A filesystem path referenced by a syscall, as recorded in an audit
/// `PATH` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRecord {
    /// The path string as the process supplied it (normalized).
    pub name: String,
    /// Inode number, when the object existed.
    pub inode: Option<Ino>,
    /// Mode bits of the object, when it existed.
    pub mode: Option<Mode>,
    /// Role of this path in the call (`"NORMAL"`, `"PARENT"`, `"CREATE"`,
    /// `"DELETE"`), mirroring audit's `nametype`.
    pub nametype: String,
}

/// A Linux Audit record, emitted at syscall **exit** (consumed by SPADE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic serial number (volatile across trials).
    pub serial: u64,
    /// Event timestamp (volatile).
    pub time: u64,
    /// Calling process.
    pub pid: Pid,
    /// Parent of the calling process.
    pub ppid: Pid,
    /// Credentials at syscall time.
    pub creds: Credentials,
    /// Which syscall.
    pub syscall: Syscall,
    /// Return value (negative errno on failure).
    pub exit: i64,
    /// `true` when the call succeeded.
    pub success: bool,
    /// Raw argument summary (`a0`..`a3` equivalents, stringified).
    pub args: Vec<String>,
    /// Paths touched by the call.
    pub paths: Vec<PathRecord>,
    /// Executable of the calling process.
    pub exe: String,
    /// Command name of the calling process.
    pub comm: String,
    /// Working directory.
    pub cwd: String,
    /// For process-creation calls, the pid of the new child.
    pub child_pid: Option<Pid>,
}

/// A C library call observed by interposition (consumed by OPUS).
///
/// Unlike audit records, libc calls are visible *even when they fail*, and
/// calls that bypass libc (raw `clone`) never appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibcCall {
    /// Sequence number within the trace (volatile).
    pub seq: u64,
    /// Timestamp (volatile).
    pub time: u64,
    /// Calling process.
    pub pid: Pid,
    /// Wrapped function name (`"open"`, `"fopen"`, ...).
    pub func: String,
    /// Stringified arguments.
    pub args: Vec<String>,
    /// Return value.
    pub ret: i64,
    /// Errno when the call failed.
    pub errno: Option<Errno>,
    /// Environment snapshot, attached to `execve` wrappers only (OPUS
    /// records process environments, making its graphs large — paper §5.1).
    pub env: Option<BTreeMap<String, String>>,
}

/// Kernel objects referenced by an LSM hook invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmObject {
    /// An inode (with its kind name and mode).
    Inode {
        /// Inode number.
        ino: Ino,
        /// Object kind name (`"file"`, `"fifo"`, ...).
        kind: String,
        /// Permission bits.
        mode: Mode,
        /// Owner uid.
        uid: u32,
    },
    /// A path string naming an object.
    Path {
        /// Normalized absolute path.
        path: String,
    },
    /// Another task.
    Task {
        /// Its pid.
        pid: Pid,
    },
}

/// LSM hook identities fired by the simulated kernel (consumed by CamFlow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
#[non_exhaustive]
pub enum LsmHook {
    FileOpen,
    FilePermissionRead,
    FilePermissionWrite,
    InodeCreate,
    InodeLink,
    InodeSymlink,
    InodeMknod,
    InodeRename,
    InodeUnlink,
    InodeSetattr,
    InodeSetown,
    TaskAlloc,
    TaskFixSetuid,
    TaskFixSetgid,
    TaskKill,
    TaskFree,
    BprmCheck,
    FileSplice,
    FileFree,
}

impl LsmHook {
    /// Hook name as CamFlow logs it.
    pub fn name(self) -> &'static str {
        match self {
            LsmHook::FileOpen => "file_open",
            LsmHook::FilePermissionRead => "file_permission:read",
            LsmHook::FilePermissionWrite => "file_permission:write",
            LsmHook::InodeCreate => "inode_create",
            LsmHook::InodeLink => "inode_link",
            LsmHook::InodeSymlink => "inode_symlink",
            LsmHook::InodeMknod => "inode_mknod",
            LsmHook::InodeRename => "inode_rename",
            LsmHook::InodeUnlink => "inode_unlink",
            LsmHook::InodeSetattr => "inode_setattr",
            LsmHook::InodeSetown => "inode_setown",
            LsmHook::TaskAlloc => "task_alloc",
            LsmHook::TaskFixSetuid => "task_fix_setuid",
            LsmHook::TaskFixSetgid => "task_fix_setgid",
            LsmHook::TaskKill => "task_kill",
            LsmHook::TaskFree => "task_free",
            LsmHook::BprmCheck => "bprm_check",
            LsmHook::FileSplice => "file_splice",
            LsmHook::FileFree => "file_free",
        }
    }
}

/// One LSM hook invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmEvent {
    /// Boot identity of the kernel that fired the hook. Kernel objects
    /// (inodes, tasks) are only meaningful within one boot; stateful
    /// consumers (CamFlow) must scope identities by it.
    pub boot: u64,
    /// Sequence number (volatile).
    pub seq: u64,
    /// Timestamp in jiffies (volatile).
    pub jiffies: u64,
    /// Which hook fired.
    pub hook: LsmHook,
    /// The acting task.
    pub pid: Pid,
    /// Credentials of the acting task.
    pub creds: Credentials,
    /// Objects involved, in hook-specific order.
    pub objects: Vec<LsmObject>,
    /// `true` when the kernel permitted the operation. Hooks fire before
    /// the operation, so denied operations still produce events.
    pub allowed: bool,
}

/// Any event at any observation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Audit layer (SPADE's source).
    Audit(AuditRecord),
    /// C library layer (OPUS's source).
    Libc(LibcCall),
    /// LSM layer (CamFlow's source).
    Lsm(LsmEvent),
}

/// Ordered log of all events a kernel run produced.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterate only the audit records.
    pub fn audit_records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.events.iter().filter_map(|e| match e {
            Event::Audit(r) => Some(r),
            _ => None,
        })
    }

    /// Iterate only the libc calls.
    pub fn libc_calls(&self) -> impl Iterator<Item = &LibcCall> {
        self.events.iter().filter_map(|e| match e {
            Event::Libc(c) => Some(c),
            _ => None,
        })
    }

    /// Iterate only the LSM events.
    pub fn lsm_events(&self) -> impl Iterator<Item = &LsmEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Lsm(l) => Some(l),
            _ => None,
        })
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_44_syscalls_in_4_groups() {
        let all = Syscall::all();
        assert_eq!(all.len(), 44);
        assert_eq!(all.iter().filter(|s| s.group() == 1).count(), 23);
        assert_eq!(all.iter().filter(|s| s.group() == 2).count(), 6);
        assert_eq!(all.iter().filter(|s| s.group() == 3).count(), 12);
        assert_eq!(all.iter().filter(|s| s.group() == 4).count(), 3);
    }

    #[test]
    fn syscall_names_lowercase_unique() {
        let mut names: Vec<&str> = Syscall::all().iter().map(|s| s.name()).collect();
        names.sort();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
        assert!(names.iter().all(|n| n
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())));
    }

    #[test]
    fn event_log_filters_by_layer() {
        let mut log = EventLog::new();
        log.push(Event::Libc(LibcCall {
            seq: 1,
            time: 0,
            pid: 1,
            func: "open".into(),
            args: vec![],
            ret: 3,
            errno: None,
            env: None,
        }));
        log.push(Event::Lsm(LsmEvent {
            boot: 1,
            seq: 2,
            jiffies: 0,
            hook: LsmHook::FileOpen,
            pid: 1,
            creds: Credentials::root(),
            objects: vec![],
            allowed: true,
        }));
        assert_eq!(log.len(), 2);
        assert_eq!(log.audit_records().count(), 0);
        assert_eq!(log.libc_calls().count(), 1);
        assert_eq!(log.lsm_events().count(), 1);
    }

    #[test]
    fn hook_names_stable() {
        assert_eq!(LsmHook::FileOpen.name(), "file_open");
        assert_eq!(LsmHook::TaskFixSetuid.name(), "task_fix_setuid");
    }
}
