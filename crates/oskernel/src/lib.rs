//! A deterministic Linux-like kernel simulator: the substrate under the
//! three provenance recorders.
//!
//! The ProvMark paper benchmarks provenance capture systems that observe a
//! real Linux kernel at three different layers (paper Figure 2):
//!
//! - **Linux Audit** — syscall records emitted at syscall *exit*
//!   (consumed by SPADE);
//! - **C library interposition** — wrapped libc calls, visible even when
//!   the underlying syscall fails (consumed by OPUS);
//! - **Linux Security Module hooks** — security hook invocations fired
//!   from inside kernel operations (consumed by CamFlow).
//!
//! This crate simulates a kernel with processes, credentials, file
//! descriptor tables, inodes, a path namespace, and pipes; implements the
//! 44 syscalls of the paper's Table 1; and emits faithful event streams at
//! all three observation layers. Behavioural quirks that the paper's
//! results depend on are reproduced:
//!
//! - audit records are emitted at syscall **exit**, and a `vfork` parent is
//!   suspended until its child exits or calls `execve`, so the child's
//!   records appear *before* the parent's `vfork` record (the cause of
//!   SPADE's disconnected-vfork anomaly, paper §4.2);
//! - `kill` terminates the target without a normal exit record;
//! - process startup produces boilerplate provenance (fork, execve, loader
//!   opening shared libraries) that ProvMark must subtract;
//! - timestamps, pids, inode numbers and audit serials are *volatile*: they
//!   differ between trials (seeded, reproducible) so that the
//!   generalization stage has real transient data to strip.
//!
//! # Example
//!
//! ```
//! use oskernel::{Kernel, OpenFlags};
//! use oskernel::program::{Program, Op};
//!
//! let prog = Program::new("close")
//!     .op(Op::Open {
//!         path: "test.txt".into(),
//!         flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
//!         mode: 0o644,
//!         fd_var: "id".into(),
//!     })
//!     .op(Op::Close { fd_var: "id".into() });
//! let mut kernel = Kernel::with_seed(1);
//! let outcome = kernel.run_program(&prog);
//! assert!(outcome.success);
//! assert!(!kernel.events().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod errno;
mod events;
mod fs;
mod kernel;
mod pipe;
mod process;
pub mod program;
mod types;

pub use errno::Errno;
pub use events::{
    AuditRecord, Event, EventLog, LibcCall, LsmEvent, LsmHook, LsmObject, PathRecord, Syscall,
};
pub use fs::{Inode, InodeKind, Namespace};
pub use kernel::{Kernel, ProgramOutcome};
pub use pipe::Pipe;
pub use process::{Credentials, FdEntry, Process, ProcessState};
pub use types::{Gid, Ino, Mode, OpenFlags, Pid, Uid};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, Program};

    #[test]
    fn doc_example_runs() {
        let prog = Program::new("close")
            .op(Op::Open {
                path: "test.txt".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            })
            .op(Op::Close {
                fd_var: "id".into(),
            });
        let mut kernel = Kernel::with_seed(1);
        let outcome = kernel.run_program(&prog);
        assert!(outcome.success, "{:?}", outcome);
    }
}
