use std::collections::VecDeque;

/// An anonymous pipe: a bounded in-kernel byte buffer with a read end and a
/// write end (paper Table 1 group 4: `pipe[2]`, `tee`).
#[derive(Debug, Clone, Default)]
pub struct Pipe {
    buffer: VecDeque<u8>,
    /// `true` while at least one write-end descriptor is open.
    pub write_open: bool,
    /// `true` while at least one read-end descriptor is open.
    pub read_open: bool,
}

/// Default pipe capacity (64 KiB, as on Linux).
pub const PIPE_CAPACITY: usize = 65536;

impl Pipe {
    /// Create an empty pipe with both ends open.
    pub fn new() -> Self {
        Pipe {
            buffer: VecDeque::new(),
            write_open: true,
            read_open: true,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Write up to `data.len()` bytes; returns bytes accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        let room = PIPE_CAPACITY.saturating_sub(self.buffer.len());
        let n = room.min(data.len());
        self.buffer.extend(&data[..n]);
        n
    }

    /// Read and consume up to `len` bytes.
    pub fn read(&mut self, len: usize) -> Vec<u8> {
        let n = len.min(self.buffer.len());
        self.buffer.drain(..n).collect()
    }

    /// Copy up to `len` bytes into `other` **without consuming** them —
    /// the semantics of `tee(2)`.
    pub fn tee_into(&self, other: &mut Pipe, len: usize) -> usize {
        let n = len.min(self.buffer.len());
        let bytes: Vec<u8> = self.buffer.iter().take(n).copied().collect();
        other.write(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut p = Pipe::new();
        assert_eq!(p.write(b"hello"), 5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.read(3), b"hel");
        assert_eq!(p.read(10), b"lo");
        assert!(p.is_empty());
    }

    #[test]
    fn capacity_bounded() {
        let mut p = Pipe::new();
        let big = vec![0u8; PIPE_CAPACITY + 100];
        assert_eq!(p.write(&big), PIPE_CAPACITY);
        assert_eq!(p.write(b"x"), 0);
    }

    #[test]
    fn tee_does_not_consume() {
        let mut a = Pipe::new();
        a.write(b"data");
        let mut b = Pipe::new();
        let n = a.tee_into(&mut b, 4);
        assert_eq!(n, 4);
        assert_eq!(a.len(), 4, "tee must not consume the source");
        assert_eq!(b.read(4), b"data");
    }

    #[test]
    fn tee_respects_available() {
        let a = {
            let mut p = Pipe::new();
            p.write(b"ab");
            p
        };
        let mut b = Pipe::new();
        assert_eq!(a.tee_into(&mut b, 100), 2);
    }
}
