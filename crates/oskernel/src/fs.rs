//! In-memory filesystem: inodes plus a path namespace.

use std::collections::BTreeMap;

use crate::errno::Errno;
use crate::process::Credentials;
use crate::types::{Gid, Ino, Mode, Uid};

/// What kind of object an inode is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file with byte contents.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link holding its target path.
    Symlink(String),
    /// Named pipe (FIFO) — also used for anonymous pipes.
    Fifo,
    /// Character device.
    CharDevice,
    /// Block device.
    BlockDevice,
}

impl InodeKind {
    /// Short name used in audit records and provenance properties.
    pub fn name(&self) -> &'static str {
        match self {
            InodeKind::Regular => "file",
            InodeKind::Directory => "directory",
            InodeKind::Symlink(_) => "link",
            InodeKind::Fifo => "fifo",
            InodeKind::CharDevice => "character",
            InodeKind::BlockDevice => "block",
        }
    }
}

/// One inode: the kernel-side identity of a filesystem object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number (volatile across trials).
    pub ino: Ino,
    /// Object kind.
    pub kind: InodeKind,
    /// Permission bits (e.g. `0o644`).
    pub mode: Mode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Hard link count.
    pub nlink: u32,
    /// Size in bytes.
    pub size: u64,
    /// Version counter bumped on every content or metadata change.
    pub version: u64,
}

impl Inode {
    fn new(ino: Ino, kind: InodeKind, mode: Mode, uid: Uid, gid: Gid) -> Self {
        Inode {
            ino,
            kind,
            mode,
            uid,
            gid,
            nlink: 1,
            size: 0,
            version: 0,
        }
    }

    /// `true` if `creds` may access with the requested bits
    /// (read/write/execute), using standard owner/group/other semantics.
    /// Root (euid 0) bypasses permission checks, as on Linux.
    pub fn may_access(&self, creds: &Credentials, read: bool, write: bool, exec: bool) -> bool {
        if creds.euid == 0 {
            return true;
        }
        let shift = if creds.euid == self.uid {
            6
        } else if creds.egid == self.gid {
            3
        } else {
            0
        };
        let bits = (self.mode >> shift) & 0o7;
        (!read || bits & 0o4 != 0) && (!write || bits & 0o2 != 0) && (!exec || bits & 0o1 != 0)
    }
}

/// Path namespace mapping absolute paths to inodes.
///
/// Paths are normalized absolute strings (`/staging/test.txt`). The
/// namespace owns the inode table; hard links make several paths share an
/// inode number.
#[derive(Debug, Clone, Default)]
pub struct Namespace {
    inodes: BTreeMap<Ino, Inode>,
    paths: BTreeMap<String, Ino>,
    next_ino: Ino,
}

impl Namespace {
    /// Create a namespace containing only the root directory.
    ///
    /// `ino_base` seeds inode numbering; trials use different bases so that
    /// inode numbers are volatile, as on a real machine.
    pub fn new(ino_base: Ino) -> Self {
        let mut ns = Namespace {
            inodes: BTreeMap::new(),
            paths: BTreeMap::new(),
            next_ino: ino_base.max(2),
        };
        let root = ns.alloc_inode(InodeKind::Directory, 0o755, 0, 0);
        ns.paths.insert("/".to_owned(), root);
        ns
    }

    fn alloc_inode(&mut self, kind: InodeKind, mode: Mode, uid: Uid, gid: Gid) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes
            .insert(ino, Inode::new(ino, kind, mode, uid, gid));
        ino
    }

    /// Normalize a path: ensure leading `/`, collapse duplicate slashes,
    /// strip a trailing slash (except for root).
    pub fn normalize(path: &str) -> String {
        let mut out = String::from("/");
        for comp in path.split('/') {
            if comp.is_empty() || comp == "." {
                continue;
            }
            if !out.ends_with('/') {
                out.push('/');
            }
            out.push_str(comp);
        }
        out
    }

    /// Split a normalized path into (parent path, final component).
    pub fn split(path: &str) -> (String, String) {
        let norm = Self::normalize(path);
        match norm.rfind('/') {
            Some(0) => ("/".to_owned(), norm[1..].to_owned()),
            Some(i) => (norm[..i].to_owned(), norm[i + 1..].to_owned()),
            None => ("/".to_owned(), norm),
        }
    }

    /// Look up a path without following a final symlink.
    pub fn lookup(&self, path: &str) -> Option<Ino> {
        self.paths.get(&Self::normalize(path)).copied()
    }

    /// Look up a path, following final symlinks (up to 8 hops).
    pub fn resolve(&self, path: &str) -> Result<Ino, Errno> {
        let mut current = Self::normalize(path);
        for _ in 0..8 {
            let ino = *self.paths.get(&current).ok_or(Errno::ENOENT)?;
            match &self.inodes[&ino].kind {
                InodeKind::Symlink(target) => {
                    current = Self::normalize(target);
                }
                _ => return Ok(ino),
            }
        }
        Err(Errno::EINVAL)
    }

    /// Immutable inode access.
    pub fn inode(&self, ino: Ino) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    /// Mutable inode access.
    pub fn inode_mut(&mut self, ino: Ino) -> Option<&mut Inode> {
        self.inodes.get_mut(&ino)
    }

    /// Iterate all `(path, ino)` bindings (deterministic order).
    pub fn bindings(&self) -> impl Iterator<Item = (&str, Ino)> {
        self.paths.iter().map(|(p, &i)| (p.as_str(), i))
    }

    /// The parent directory's inode, checking it exists and is a directory.
    pub fn parent_dir(&self, path: &str) -> Result<(String, String, Ino), Errno> {
        let (parent, name) = Self::split(path);
        if name.is_empty() {
            return Err(Errno::EINVAL);
        }
        let pino = self.paths.get(&parent).copied().ok_or(Errno::ENOENT)?;
        match self.inodes[&pino].kind {
            InodeKind::Directory => Ok((parent, name, pino)),
            _ => Err(Errno::ENOTDIR),
        }
    }

    /// Check that `creds` may create/remove entries in the parent directory
    /// of `path` (write + search permission on the directory).
    pub fn check_parent_writable(&self, path: &str, creds: &Credentials) -> Result<Ino, Errno> {
        let (_, _, pino) = self.parent_dir(path)?;
        let dir = &self.inodes[&pino];
        if !dir.may_access(creds, false, true, true) {
            return Err(Errno::EACCES);
        }
        Ok(pino)
    }

    /// Create a new filesystem object at `path`.
    pub fn create(
        &mut self,
        path: &str,
        kind: InodeKind,
        mode: Mode,
        creds: &Credentials,
    ) -> Result<Ino, Errno> {
        let norm = Self::normalize(path);
        if self.paths.contains_key(&norm) {
            return Err(Errno::EEXIST);
        }
        self.check_parent_writable(&norm, creds)?;
        let ino = self.alloc_inode(kind, mode, creds.euid, creds.egid);
        self.paths.insert(norm, ino);
        Ok(ino)
    }

    /// Create a directory (used for staging setup; not a benchmarked call).
    pub fn mkdir(&mut self, path: &str, mode: Mode, creds: &Credentials) -> Result<Ino, Errno> {
        self.create(path, InodeKind::Directory, mode, creds)
    }

    /// Add a hard link `new_path` → the inode at `old_path`.
    pub fn link(
        &mut self,
        old_path: &str,
        new_path: &str,
        creds: &Credentials,
    ) -> Result<Ino, Errno> {
        let ino = self.lookup(old_path).ok_or(Errno::ENOENT)?;
        if matches!(self.inodes[&ino].kind, InodeKind::Directory) {
            return Err(Errno::EPERM);
        }
        let norm = Self::normalize(new_path);
        if self.paths.contains_key(&norm) {
            return Err(Errno::EEXIST);
        }
        self.check_parent_writable(&norm, creds)?;
        self.paths.insert(norm, ino);
        let inode = self.inodes.get_mut(&ino).expect("linked inode exists");
        inode.nlink += 1;
        inode.version += 1;
        Ok(ino)
    }

    /// Create a symlink at `path` pointing to `target`.
    pub fn symlink(&mut self, target: &str, path: &str, creds: &Credentials) -> Result<Ino, Errno> {
        self.create(path, InodeKind::Symlink(target.to_owned()), 0o777, creds)
    }

    /// Remove the entry at `path`; drops the inode when `nlink` hits zero.
    pub fn unlink(&mut self, path: &str, creds: &Credentials) -> Result<Ino, Errno> {
        let norm = Self::normalize(path);
        let ino = self.paths.get(&norm).copied().ok_or(Errno::ENOENT)?;
        if matches!(self.inodes[&ino].kind, InodeKind::Directory) {
            return Err(Errno::EISDIR);
        }
        self.check_parent_writable(&norm, creds)?;
        self.paths.remove(&norm);
        let inode = self.inodes.get_mut(&ino).expect("unlinked inode exists");
        inode.nlink -= 1;
        inode.version += 1;
        if inode.nlink == 0 {
            self.inodes.remove(&ino);
        }
        Ok(ino)
    }

    /// Rename `old_path` to `new_path`, replacing any existing target.
    ///
    /// Returns `(moved inode, replaced inode if any)`.
    pub fn rename(
        &mut self,
        old_path: &str,
        new_path: &str,
        creds: &Credentials,
    ) -> Result<(Ino, Option<Ino>), Errno> {
        let old_norm = Self::normalize(old_path);
        let new_norm = Self::normalize(new_path);
        let ino = self.paths.get(&old_norm).copied().ok_or(Errno::ENOENT)?;
        self.check_parent_writable(&old_norm, creds)?;
        self.check_parent_writable(&new_norm, creds)?;
        let replaced = self.paths.get(&new_norm).copied();
        if replaced == Some(ino) {
            // POSIX: renaming onto the same file (same path or another
            // hard link of the same inode) succeeds and does nothing.
            return Ok((ino, None));
        }
        if let Some(r) = replaced {
            if matches!(self.inodes[&r].kind, InodeKind::Directory) {
                return Err(Errno::EISDIR);
            }
            let inode = self.inodes.get_mut(&r).expect("replaced inode exists");
            inode.nlink -= 1;
            if inode.nlink == 0 {
                self.inodes.remove(&r);
            }
        }
        self.paths.remove(&old_norm);
        self.paths.insert(new_norm, ino);
        let inode = self.inodes.get_mut(&ino).expect("renamed inode exists");
        inode.version += 1;
        Ok((ino, replaced))
    }

    /// All paths currently bound to `ino`.
    pub fn paths_of(&self, ino: Ino) -> Vec<&str> {
        self.paths
            .iter()
            .filter(|(_, &i)| i == ino)
            .map(|(p, _)| p.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root_creds() -> Credentials {
        Credentials::root()
    }

    fn user_creds() -> Credentials {
        Credentials::user(1000, 1000)
    }

    fn ns_with_tmp() -> Namespace {
        let mut ns = Namespace::new(100);
        ns.mkdir("/tmp", 0o777, &root_creds()).unwrap();
        ns.mkdir("/etc", 0o755, &root_creds()).unwrap();
        ns
    }

    #[test]
    fn normalize_paths() {
        assert_eq!(Namespace::normalize("/a//b/"), "/a/b");
        assert_eq!(Namespace::normalize("a/b"), "/a/b");
        assert_eq!(Namespace::normalize("/"), "/");
        assert_eq!(Namespace::normalize("/./a"), "/a");
    }

    #[test]
    fn split_parent_and_name() {
        assert_eq!(Namespace::split("/a/b"), ("/a".into(), "b".into()));
        assert_eq!(Namespace::split("/a"), ("/".into(), "a".into()));
    }

    #[test]
    fn create_and_lookup() {
        let mut ns = ns_with_tmp();
        let ino = ns
            .create("/tmp/f", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        assert_eq!(ns.lookup("/tmp/f"), Some(ino));
        assert_eq!(ns.inode(ino).unwrap().uid, 1000);
        assert_eq!(ns.inode(ino).unwrap().nlink, 1);
    }

    #[test]
    fn create_rejects_existing_and_missing_parent() {
        let mut ns = ns_with_tmp();
        ns.create("/tmp/f", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        assert_eq!(
            ns.create("/tmp/f", InodeKind::Regular, 0o644, &user_creds()),
            Err(Errno::EEXIST)
        );
        assert_eq!(
            ns.create("/nodir/f", InodeKind::Regular, 0o644, &user_creds()),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn create_in_unwritable_dir_denied_for_user_not_root() {
        let mut ns = ns_with_tmp();
        assert_eq!(
            ns.create("/etc/evil", InodeKind::Regular, 0o644, &user_creds()),
            Err(Errno::EACCES)
        );
        assert!(ns
            .create("/etc/ok", InodeKind::Regular, 0o644, &root_creds())
            .is_ok());
    }

    #[test]
    fn hard_link_shares_inode_and_counts() {
        let mut ns = ns_with_tmp();
        let ino = ns
            .create("/tmp/a", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        let linked = ns.link("/tmp/a", "/tmp/b", &user_creds()).unwrap();
        assert_eq!(ino, linked);
        assert_eq!(ns.inode(ino).unwrap().nlink, 2);
        ns.unlink("/tmp/a", &user_creds()).unwrap();
        assert_eq!(ns.inode(ino).unwrap().nlink, 1);
        ns.unlink("/tmp/b", &user_creds()).unwrap();
        assert!(ns.inode(ino).is_none(), "inode freed at nlink 0");
    }

    #[test]
    fn link_to_directory_rejected() {
        let mut ns = ns_with_tmp();
        assert_eq!(ns.link("/tmp", "/tmp2", &root_creds()), Err(Errno::EPERM));
    }

    #[test]
    fn symlink_resolution() {
        let mut ns = ns_with_tmp();
        let ino = ns
            .create("/tmp/real", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        ns.symlink("/tmp/real", "/tmp/sym", &user_creds()).unwrap();
        assert_eq!(ns.resolve("/tmp/sym").unwrap(), ino);
        // lookup does not follow
        assert_ne!(ns.lookup("/tmp/sym"), Some(ino));
    }

    #[test]
    fn symlink_loop_detected() {
        let mut ns = ns_with_tmp();
        ns.symlink("/tmp/b", "/tmp/a", &user_creds()).unwrap();
        ns.symlink("/tmp/a", "/tmp/b", &user_creds()).unwrap();
        assert_eq!(ns.resolve("/tmp/a"), Err(Errno::EINVAL));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut ns = ns_with_tmp();
        let a = ns
            .create("/tmp/a", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        let b = ns
            .create("/tmp/b", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        let (moved, replaced) = ns.rename("/tmp/a", "/tmp/b", &user_creds()).unwrap();
        assert_eq!(moved, a);
        assert_eq!(replaced, Some(b));
        assert_eq!(ns.lookup("/tmp/b"), Some(a));
        assert_eq!(ns.lookup("/tmp/a"), None);
        assert!(ns.inode(b).is_none(), "replaced inode freed");
    }

    #[test]
    fn rename_onto_itself_is_a_noop() {
        let mut ns = ns_with_tmp();
        let a = ns
            .create("/tmp/a", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        assert_eq!(
            ns.rename("/tmp/a", "/tmp/a", &user_creds()).unwrap(),
            (a, None)
        );
        assert_eq!(ns.lookup("/tmp/a"), Some(a));
        // Hard-link variant: rename between two names of the same inode.
        ns.link("/tmp/a", "/tmp/b", &user_creds()).unwrap();
        assert_eq!(
            ns.rename("/tmp/a", "/tmp/b", &user_creds()).unwrap(),
            (a, None)
        );
        assert_eq!(ns.inode(a).unwrap().nlink, 2, "no link may be lost");
    }

    #[test]
    fn rename_into_protected_dir_denied() {
        let mut ns = ns_with_tmp();
        ns.create("/tmp/mine", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        assert_eq!(
            ns.rename("/tmp/mine", "/etc/passwd", &user_creds()),
            Err(Errno::EACCES)
        );
    }

    #[test]
    fn unlink_missing_and_directory() {
        let mut ns = ns_with_tmp();
        assert_eq!(ns.unlink("/tmp/none", &user_creds()), Err(Errno::ENOENT));
        assert_eq!(ns.unlink("/tmp", &root_creds()), Err(Errno::EISDIR));
    }

    #[test]
    fn permission_bits() {
        let inode = Inode::new(5, InodeKind::Regular, 0o640, 1000, 1000);
        let owner = Credentials::user(1000, 1000);
        let group = Credentials::user(2000, 1000);
        let other = Credentials::user(3000, 3000);
        assert!(inode.may_access(&owner, true, true, false));
        assert!(inode.may_access(&group, true, false, false));
        assert!(!inode.may_access(&group, false, true, false));
        assert!(!inode.may_access(&other, true, false, false));
        assert!(inode.may_access(&Credentials::root(), true, true, true));
    }

    #[test]
    fn paths_of_lists_all_links() {
        let mut ns = ns_with_tmp();
        let ino = ns
            .create("/tmp/a", InodeKind::Regular, 0o644, &user_creds())
            .unwrap();
        ns.link("/tmp/a", "/tmp/b", &user_creds()).unwrap();
        let paths = ns.paths_of(ino);
        assert_eq!(paths, vec!["/tmp/a", "/tmp/b"]);
    }

    #[test]
    fn ino_base_offsets_numbering() {
        let ns1 = Namespace::new(1000);
        let ns2 = Namespace::new(5000);
        let i1 = ns1.lookup("/").unwrap();
        let i2 = ns2.lookup("/").unwrap();
        assert_ne!(i1, i2, "inode numbers are volatile across trials");
    }
}
