//! The kernel proper: global state plus the 44 syscall implementations.
//!
//! Every syscall implementation follows the same shape:
//!
//! 1. fire the LSM hooks the real kernel would fire (even for operations
//!    that end up denied — LSM hooks run *before* the operation);
//! 2. mutate kernel state;
//! 3. emit an audit record at syscall **exit** (deferred for `vfork`);
//! 4. emit the libc wrapper event (skipped for raw `clone`).

use std::collections::BTreeMap;

use crate::errno::{Errno, SysResult};
use crate::events::{
    AuditRecord, Event, EventLog, LibcCall, LsmEvent, LsmHook, LsmObject, PathRecord, Syscall,
};
use crate::fs::{InodeKind, Namespace};
use crate::pipe::Pipe;
use crate::process::{Credentials, FdEntry, Process, ProcessState};
use crate::program::{Op, Program};
use crate::types::{Gid, Ino, Mode, OpenFlags, Pid, Uid};

/// What an open file description refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OfdTarget {
    /// A filesystem inode.
    Inode(Ino),
    /// The read end of pipe `i`.
    PipeRead(usize),
    /// The write end of pipe `i`.
    PipeWrite(usize),
}

/// A kernel open file description, shared by `dup`ed / inherited fds.
#[derive(Debug, Clone)]
struct OpenDescription {
    target: OfdTarget,
    flags: OpenFlags,
    offset: u64,
    /// Number of fd-table slots referencing this description.
    refs: usize,
    /// Path used at open time (for audit path reconstruction).
    opened_path: Option<String>,
}

/// Outcome of running a whole benchmark program.
#[derive(Debug, Clone)]
pub struct ProgramOutcome {
    /// `true` when every non-expected-failure op succeeded.
    pub success: bool,
    /// Per-op results in execution order (`Ok(ret)` or `Err(errno)`).
    pub results: Vec<SysResult>,
    /// Pid of the benchmark process (the one that execs the program).
    pub bench_pid: Pid,
}

/// A deferred audit record for a suspended `vfork` parent.
#[derive(Debug, Clone)]
struct PendingVforkAudit {
    parent: Pid,
    child: Pid,
}

/// The simulated kernel.
///
/// Construct with [`Kernel::with_seed`]; the seed determines all volatile
/// values (timestamps, pid/inode numbering, audit serials, boot id), so two
/// kernels with the same seed produce byte-identical event logs while two
/// different seeds model two recording trials.
#[derive(Debug, Clone)]
pub struct Kernel {
    ns: Namespace,
    procs: BTreeMap<Pid, Process>,
    ofds: Vec<OpenDescription>,
    pipes: Vec<Pipe>,
    log: EventLog,
    next_pid: Pid,
    serial: u64,
    seq: u64,
    clock: u64,
    boot_id: String,
    boot: u64,
    recording: bool,
    pending_vfork: Vec<PendingVforkAudit>,
    /// Shell process that launches benchmark programs.
    shell_pid: Pid,
    /// When set, an extra loader path is touched during startup (noise).
    pub startup_noise: bool,
}

impl Kernel {
    /// Create a kernel whose volatile values derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        let mix = seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let pid_base = 1000 + (mix % 2000) as Pid;
        let ino_base = 100_000 + (mix % 50_000);
        let mut kernel = Kernel {
            ns: Namespace::new(ino_base),
            procs: BTreeMap::new(),
            ofds: Vec::new(),
            pipes: Vec::new(),
            log: EventLog::new(),
            next_pid: pid_base,
            serial: 1 + mix % 10_000,
            seq: 1 + mix % 100_000,
            clock: 1_700_000_000_000 + mix % 1_000_000_000,
            boot_id: format!("{mix:032x}"),
            boot: mix,
            recording: false,
            pending_vfork: Vec::new(),
            shell_pid: 0,
            startup_noise: false,
        };
        kernel.populate_base_filesystem();
        // The benchmark harness runs as root, as ProvMark does in its VMs.
        let shell = kernel.spawn_raw(1, Credentials::root(), "/bin/sh");
        kernel.procs.get_mut(&shell).expect("shell lives").cwd = "/staging".to_owned();
        kernel.shell_pid = shell;
        kernel
    }

    /// Resolve a possibly-relative path against the process's cwd.
    fn abs(&self, pid: Pid, path: &str) -> String {
        if path.starts_with('/') {
            Namespace::normalize(path)
        } else {
            let cwd = &self.procs[&pid].cwd;
            Namespace::normalize(&format!("{cwd}/{path}"))
        }
    }

    /// The boot id (volatile property recorders may attach).
    pub fn boot_id(&self) -> &str {
        &self.boot_id
    }

    /// Pid of the launcher shell.
    pub fn shell_pid(&self) -> Pid {
        self.shell_pid
    }

    /// All events recorded so far.
    pub fn events(&self) -> &[Event] {
        self.log.events()
    }

    /// The full event log.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Immutable view of the filesystem namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Look up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Enable or disable event emission.
    ///
    /// ProvMark's recording stage prepares the staging directory *before*
    /// starting the capture tool; state changes made while recording is off
    /// leave no events.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Run setup actions (staging preparation) without emitting events.
    pub fn setup(&mut self, f: impl FnOnce(&mut Namespace)) {
        let was = self.recording;
        self.recording = false;
        f(&mut self.ns);
        self.recording = was;
    }

    fn populate_base_filesystem(&mut self) {
        let root = Credentials::root();
        for dir in [
            "/bin",
            "/lib",
            "/etc",
            "/tmp",
            "/staging",
            "/usr",
            "/usr/local",
            "/usr/local/bin",
        ] {
            self.ns
                .mkdir(
                    dir,
                    if dir == "/tmp" || dir == "/staging" {
                        0o777
                    } else {
                        0o755
                    },
                    &root,
                )
                .expect("base directory creates");
        }
        for file in [
            "/bin/sh",
            "/lib/ld-linux.so",
            "/lib/libc.so",
            "/etc/ld.so.cache",
            "/usr/local/bin/bench_fg",
            "/usr/local/bin/bench_bg",
        ] {
            self.ns
                .create(file, InodeKind::Regular, 0o755, &root)
                .expect("base file creates");
        }
        self.ns
            .create("/etc/passwd", InodeKind::Regular, 0o644, &root)
            .expect("passwd creates");
    }

    fn spawn_raw(&mut self, ppid: Pid, creds: Credentials, exe: &str) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.procs.insert(pid, Process::new(pid, ppid, creds, exe));
        pid
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1 + (self.serial % 3);
        self.clock
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    // ----- event emission -------------------------------------------------

    fn emit_lsm(&mut self, pid: Pid, hook: LsmHook, objects: Vec<LsmObject>, allowed: bool) {
        if !self.recording {
            return;
        }
        let creds = self.procs[&pid].creds;
        let seq = self.next_seq();
        let jiffies = self.tick();
        self.log.push(Event::Lsm(LsmEvent {
            boot: self.boot,
            seq,
            jiffies,
            hook,
            pid,
            creds,
            objects,
            allowed,
        }));
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_audit(
        &mut self,
        pid: Pid,
        syscall: Syscall,
        result: &SysResult,
        args: Vec<String>,
        paths: Vec<PathRecord>,
        child_pid: Option<Pid>,
    ) {
        if !self.recording {
            return;
        }
        let proc = &self.procs[&pid];
        let record = AuditRecord {
            serial: self.serial,
            time: self.clock,
            pid,
            ppid: proc.ppid,
            creds: proc.creds,
            syscall,
            exit: match result {
                Ok(v) => *v,
                Err(e) => e.ret(),
            },
            success: result.is_ok(),
            args,
            paths,
            exe: proc.exe.clone(),
            comm: proc.comm.clone(),
            cwd: proc.cwd.clone(),
            child_pid,
        };
        self.serial += 1;
        self.tick();
        self.log.push(Event::Audit(record));
    }

    fn emit_libc(
        &mut self,
        pid: Pid,
        func: &str,
        args: Vec<String>,
        result: &SysResult,
        env: Option<BTreeMap<String, String>>,
    ) {
        if !self.recording {
            return;
        }
        let seq = self.next_seq();
        let time = self.tick();
        self.log.push(Event::Libc(LibcCall {
            seq,
            time,
            pid,
            func: func.to_owned(),
            args,
            ret: match result {
                Ok(v) => *v,
                Err(e) => e.ret(),
            },
            errno: result.err(),
            env,
        }));
    }

    fn path_record(&self, path: &str, nametype: &str) -> PathRecord {
        let norm = Namespace::normalize(path);
        let ino = self.ns.lookup(&norm);
        let mode = ino.and_then(|i| self.ns.inode(i)).map(|i| i.mode);
        PathRecord {
            name: norm,
            inode: ino,
            mode,
            nametype: nametype.to_owned(),
        }
    }

    fn inode_object(&self, ino: Ino) -> LsmObject {
        match self.ns.inode(ino) {
            Some(inode) => LsmObject::Inode {
                ino,
                kind: inode.kind.name().to_owned(),
                mode: inode.mode,
                uid: inode.uid,
            },
            None => LsmObject::Inode {
                ino,
                kind: "file".to_owned(),
                mode: 0,
                uid: 0,
            },
        }
    }

    // ----- fd helpers ------------------------------------------------------

    fn alloc_ofd(&mut self, target: OfdTarget, flags: OpenFlags, path: Option<String>) -> usize {
        self.ofds.push(OpenDescription {
            target,
            flags,
            offset: 0,
            refs: 1,
            opened_path: path,
        });
        self.ofds.len() - 1
    }

    fn install_fd(&mut self, pid: Pid, ofd: usize, cloexec: bool) -> i32 {
        let proc = self.procs.get_mut(&pid).expect("live process");
        let fd = proc.lowest_free_fd();
        proc.fds.insert(fd, FdEntry { ofd, cloexec });
        fd
    }

    fn fd_entry(&self, pid: Pid, fd: i32) -> Result<FdEntry, Errno> {
        self.procs
            .get(&pid)
            .and_then(|p| p.fds.get(&fd))
            .copied()
            .ok_or(Errno::EBADF)
    }

    fn drop_ofd_ref(&mut self, ofd: usize) {
        let d = &mut self.ofds[ofd];
        d.refs = d.refs.saturating_sub(1);
        if d.refs == 0 {
            match d.target {
                OfdTarget::PipeRead(i) => self.pipes[i].read_open = false,
                OfdTarget::PipeWrite(i) => self.pipes[i].write_open = false,
                OfdTarget::Inode(_) => {}
            }
        }
    }

    /// Resolve an fd to the path it was opened with (for audit records).
    fn fd_path(&self, pid: Pid, fd: i32) -> Option<String> {
        let entry = self.fd_entry(pid, fd).ok()?;
        self.ofds[entry.ofd].opened_path.clone()
    }

    fn fd_ino(&self, pid: Pid, fd: i32) -> Result<Ino, Errno> {
        let entry = self.fd_entry(pid, fd)?;
        match self.ofds[entry.ofd].target {
            OfdTarget::Inode(ino) => Ok(ino),
            _ => Err(Errno::EINVAL),
        }
    }

    // ----- group 1: file syscalls ------------------------------------------

    fn do_open(&mut self, pid: Pid, path: &str, flags: OpenFlags, mode: Mode) -> SysResult {
        let creds = self.procs[&pid].creds;
        let norm = Namespace::normalize(path);
        let existing = self.ns.resolve(&norm).ok();
        let (ino, created) = match existing {
            Some(ino) => {
                if flags.contains(OpenFlags::CREAT) && flags.contains(OpenFlags::EXCL) {
                    return Err(Errno::EEXIST);
                }
                (ino, false)
            }
            None => {
                if !flags.contains(OpenFlags::CREAT) {
                    return Err(Errno::ENOENT);
                }
                self.emit_lsm(
                    pid,
                    LsmHook::InodeCreate,
                    vec![LsmObject::Path { path: norm.clone() }],
                    true,
                );
                let ino = self.ns.create(&norm, InodeKind::Regular, mode, &creds)?;
                (ino, true)
            }
        };
        let inode = self.ns.inode(ino).ok_or(Errno::ENOENT)?;
        if matches!(inode.kind, InodeKind::Directory) && flags.writable() {
            return Err(Errno::EISDIR);
        }
        let allowed =
            created || inode.may_access(&creds, flags.readable(), flags.writable(), false);
        self.emit_lsm(
            pid,
            LsmHook::FileOpen,
            vec![
                self.inode_object(ino),
                LsmObject::Path { path: norm.clone() },
            ],
            allowed,
        );
        if !allowed {
            return Err(Errno::EACCES);
        }
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            let inode = self.ns.inode_mut(ino).expect("opened inode");
            inode.size = 0;
            inode.version += 1;
        }
        let ofd = self.alloc_ofd(OfdTarget::Inode(ino), flags, Some(norm));
        Ok(self.install_fd(pid, ofd, flags.contains(OpenFlags::CLOEXEC)) as i64)
    }

    /// `open(2)`.
    pub fn sys_open(&mut self, pid: Pid, path: &str, flags: OpenFlags, mode: Mode) -> SysResult {
        self.sys_open_variant(pid, path, flags, mode, Syscall::Open, "open")
    }

    /// `openat(2)` (dirfd fixed at `AT_FDCWD`; absolute paths only).
    pub fn sys_openat(&mut self, pid: Pid, path: &str, flags: OpenFlags, mode: Mode) -> SysResult {
        self.sys_open_variant(pid, path, flags, mode, Syscall::Openat, "openat")
    }

    /// `creat(2)` — `open` with `O_WRONLY|O_CREAT|O_TRUNC`.
    pub fn sys_creat(&mut self, pid: Pid, path: &str, mode: Mode) -> SysResult {
        let flags = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        self.sys_open_variant(pid, path, flags, mode, Syscall::Creat, "creat")
    }

    fn sys_open_variant(
        &mut self,
        pid: Pid,
        path: &str,
        flags: OpenFlags,
        mode: Mode,
        syscall: Syscall,
        func: &str,
    ) -> SysResult {
        let path = &self.abs(pid, path);
        let existed = self.ns.lookup(path).is_some();
        let r = self.do_open(pid, path, flags, mode);
        let nametype = if !existed && r.is_ok() {
            "CREATE"
        } else {
            "NORMAL"
        };
        let paths = vec![self.path_record(path, nametype)];
        let args = vec![path.to_owned(), flags.to_string(), format!("{mode:o}")];
        self.emit_audit(pid, syscall, &r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `close(2)`.
    pub fn sys_close(&mut self, pid: Pid, fd: i32) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = (|| -> SysResult {
            let entry = self.fd_entry(pid, fd)?;
            self.procs
                .get_mut(&pid)
                .expect("live process")
                .fds
                .remove(&fd);
            self.drop_ofd_ref(entry.ofd);
            Ok(0)
        })();
        // CamFlow's view of `close` is the kernel eventually freeing the
        // file structure — not reliably within the recording window
        // (paper §4.1). We therefore fire no LSM hook at close time.
        let paths = path
            .as_deref()
            .map(|p| vec![self.path_record(p, "NORMAL")])
            .unwrap_or_default();
        let args = vec![fd.to_string()];
        self.emit_audit(pid, Syscall::Close, &r, args.clone(), paths, None);
        self.emit_libc(pid, "close", args, &r, None);
        r
    }

    fn do_dup(&mut self, pid: Pid, oldfd: i32, newfd: Option<i32>, cloexec: bool) -> SysResult {
        let entry = self.fd_entry(pid, oldfd)?;
        self.ofds[entry.ofd].refs += 1;
        let proc = self.procs.get_mut(&pid).expect("live process");
        let fd = match newfd {
            Some(nf) => {
                if let Some(old) = proc.fds.insert(
                    nf,
                    FdEntry {
                        ofd: entry.ofd,
                        cloexec,
                    },
                ) {
                    // Implicit close of the previous occupant.
                    self.drop_ofd_ref(old.ofd);
                }
                nf
            }
            None => {
                let nf = proc.lowest_free_fd();
                proc.fds.insert(
                    nf,
                    FdEntry {
                        ofd: entry.ofd,
                        cloexec,
                    },
                );
                nf
            }
        };
        Ok(fd as i64)
    }

    /// `dup(2)`. No LSM hook fires: file-descriptor duplication is
    /// process-local state invisible to CamFlow (Table 2: `dup` empty/NR).
    pub fn sys_dup(&mut self, pid: Pid, fd: i32) -> SysResult {
        let r = self.do_dup(pid, fd, None, false);
        let args = vec![fd.to_string()];
        self.emit_audit(pid, Syscall::Dup, &r, args.clone(), vec![], None);
        self.emit_libc(pid, "dup", args, &r, None);
        r
    }

    /// `dup2(2)`.
    pub fn sys_dup2(&mut self, pid: Pid, oldfd: i32, newfd: i32) -> SysResult {
        let r = self.do_dup(pid, oldfd, Some(newfd), false);
        let args = vec![oldfd.to_string(), newfd.to_string()];
        self.emit_audit(pid, Syscall::Dup2, &r, args.clone(), vec![], None);
        self.emit_libc(pid, "dup2", args, &r, None);
        r
    }

    /// `dup3(2)`.
    pub fn sys_dup3(&mut self, pid: Pid, oldfd: i32, newfd: i32, cloexec: bool) -> SysResult {
        let r = if oldfd == newfd {
            Err(Errno::EINVAL)
        } else {
            self.do_dup(pid, oldfd, Some(newfd), cloexec)
        };
        let args = vec![oldfd.to_string(), newfd.to_string()];
        self.emit_audit(pid, Syscall::Dup3, &r, args.clone(), vec![], None);
        self.emit_libc(pid, "dup3", args, &r, None);
        r
    }

    fn do_read(&mut self, pid: Pid, fd: i32, len: u64, offset: Option<u64>) -> SysResult {
        let entry = self.fd_entry(pid, fd)?;
        let ofd = &self.ofds[entry.ofd];
        if !ofd.flags.readable() {
            return Err(Errno::EBADF);
        }
        match ofd.target.clone() {
            OfdTarget::Inode(ino) => {
                self.emit_lsm(
                    pid,
                    LsmHook::FilePermissionRead,
                    vec![self.inode_object(ino)],
                    true,
                );
                let size = self.ns.inode(ino).map(|i| i.size).unwrap_or(0);
                let pos = offset.unwrap_or(self.ofds[entry.ofd].offset);
                let n = len.min(size.saturating_sub(pos));
                if offset.is_none() {
                    self.ofds[entry.ofd].offset = pos + n;
                }
                Ok(n as i64)
            }
            OfdTarget::PipeRead(i) => {
                self.emit_lsm(
                    pid,
                    LsmHook::FilePermissionRead,
                    vec![LsmObject::Path {
                        path: format!("pipe:[{i}]"),
                    }],
                    true,
                );
                let data = self.pipes[i].read(len as usize);
                Ok(data.len() as i64)
            }
            OfdTarget::PipeWrite(_) => Err(Errno::EBADF),
        }
    }

    fn do_write(&mut self, pid: Pid, fd: i32, len: u64, offset: Option<u64>) -> SysResult {
        let entry = self.fd_entry(pid, fd)?;
        let ofd = &self.ofds[entry.ofd];
        if !ofd.flags.writable() {
            return Err(Errno::EBADF);
        }
        match ofd.target.clone() {
            OfdTarget::Inode(ino) => {
                self.emit_lsm(
                    pid,
                    LsmHook::FilePermissionWrite,
                    vec![self.inode_object(ino)],
                    true,
                );
                let pos = offset.unwrap_or(self.ofds[entry.ofd].offset);
                let inode = self.ns.inode_mut(ino).ok_or(Errno::ENOENT)?;
                inode.size = inode.size.max(pos + len);
                inode.version += 1;
                if offset.is_none() {
                    self.ofds[entry.ofd].offset = pos + len;
                }
                Ok(len as i64)
            }
            OfdTarget::PipeWrite(i) => {
                if !self.pipes[i].read_open {
                    return Err(Errno::EPIPE);
                }
                self.emit_lsm(
                    pid,
                    LsmHook::FilePermissionWrite,
                    vec![LsmObject::Path {
                        path: format!("pipe:[{i}]"),
                    }],
                    true,
                );
                let data = vec![0u8; len as usize];
                let n = self.pipes[i].write(&data);
                Ok(n as i64)
            }
            OfdTarget::PipeRead(_) => Err(Errno::EBADF),
        }
    }

    /// `read(2)`.
    pub fn sys_read(&mut self, pid: Pid, fd: i32, len: u64) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = self.do_read(pid, fd, len, None);
        self.finish_io(pid, Syscall::Read, "read", fd, len, path, &r);
        r
    }

    /// `pread(2)`.
    pub fn sys_pread(&mut self, pid: Pid, fd: i32, len: u64, offset: u64) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = self.do_read(pid, fd, len, Some(offset));
        self.finish_io(pid, Syscall::Pread, "pread", fd, len, path, &r);
        r
    }

    /// `write(2)`.
    pub fn sys_write(&mut self, pid: Pid, fd: i32, len: u64) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = self.do_write(pid, fd, len, None);
        self.finish_io(pid, Syscall::Write, "write", fd, len, path, &r);
        r
    }

    /// `pwrite(2)`.
    pub fn sys_pwrite(&mut self, pid: Pid, fd: i32, len: u64, offset: u64) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = self.do_write(pid, fd, len, Some(offset));
        self.finish_io(pid, Syscall::Pwrite, "pwrite", fd, len, path, &r);
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_io(
        &mut self,
        pid: Pid,
        syscall: Syscall,
        func: &str,
        fd: i32,
        len: u64,
        path: Option<String>,
        r: &SysResult,
    ) {
        let paths = path
            .as_deref()
            .map(|p| vec![self.path_record(p, "NORMAL")])
            .unwrap_or_default();
        let args = vec![fd.to_string(), len.to_string()];
        self.emit_audit(pid, syscall, r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, r, None);
    }

    fn sys_link_variant(
        &mut self,
        pid: Pid,
        old: &str,
        new: &str,
        syscall: Syscall,
        func: &str,
    ) -> SysResult {
        let old = &self.abs(pid, old);
        let new = &self.abs(pid, new);
        let creds = self.procs[&pid].creds;
        let target_ino = self.ns.lookup(old);
        if let Some(ino) = target_ino {
            self.emit_lsm(
                pid,
                LsmHook::InodeLink,
                vec![
                    self.inode_object(ino),
                    LsmObject::Path {
                        path: Namespace::normalize(new),
                    },
                ],
                true,
            );
        }
        let r = self.ns.link(old, new, &creds).map(|_| 0i64);
        let paths = vec![
            self.path_record(old, "NORMAL"),
            self.path_record(new, if r.is_ok() { "CREATE" } else { "NORMAL" }),
        ];
        let args = vec![old.to_owned(), new.to_owned()];
        self.emit_audit(pid, syscall, &r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `link(2)`.
    pub fn sys_link(&mut self, pid: Pid, old: &str, new: &str) -> SysResult {
        self.sys_link_variant(pid, old, new, Syscall::Link, "link")
    }

    /// `linkat(2)` (`AT_FDCWD` only).
    pub fn sys_linkat(&mut self, pid: Pid, old: &str, new: &str) -> SysResult {
        self.sys_link_variant(pid, old, new, Syscall::Linkat, "linkat")
    }

    fn sys_symlink_variant(
        &mut self,
        pid: Pid,
        target: &str,
        linkpath: &str,
        syscall: Syscall,
        func: &str,
    ) -> SysResult {
        let target = &self.abs(pid, target);
        let linkpath = &self.abs(pid, linkpath);
        let creds = self.procs[&pid].creds;
        self.emit_lsm(
            pid,
            LsmHook::InodeSymlink,
            vec![LsmObject::Path {
                path: Namespace::normalize(linkpath),
            }],
            true,
        );
        let r = self.ns.symlink(target, linkpath, &creds).map(|_| 0i64);
        let paths = vec![self.path_record(linkpath, if r.is_ok() { "CREATE" } else { "NORMAL" })];
        let args = vec![target.to_owned(), linkpath.to_owned()];
        self.emit_audit(pid, syscall, &r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `symlink(2)`.
    pub fn sys_symlink(&mut self, pid: Pid, target: &str, linkpath: &str) -> SysResult {
        self.sys_symlink_variant(pid, target, linkpath, Syscall::Symlink, "symlink")
    }

    /// `symlinkat(2)` (`AT_FDCWD` only).
    pub fn sys_symlinkat(&mut self, pid: Pid, target: &str, linkpath: &str) -> SysResult {
        self.sys_symlink_variant(pid, target, linkpath, Syscall::Symlinkat, "symlinkat")
    }

    fn sys_mknod_variant(
        &mut self,
        pid: Pid,
        path: &str,
        kind: InodeKind,
        mode: Mode,
        syscall: Syscall,
        func: &str,
    ) -> SysResult {
        let path = &self.abs(pid, path);
        let creds = self.procs[&pid].creds;
        self.emit_lsm(
            pid,
            LsmHook::InodeMknod,
            vec![LsmObject::Path {
                path: Namespace::normalize(path),
            }],
            true,
        );
        let r = self.ns.create(path, kind, mode, &creds).map(|_| 0i64);
        let paths = vec![self.path_record(path, if r.is_ok() { "CREATE" } else { "NORMAL" })];
        let args = vec![path.to_owned(), format!("{mode:o}")];
        self.emit_audit(pid, syscall, &r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `mknod(2)` — creates a FIFO node in the benchmarks.
    pub fn sys_mknod(&mut self, pid: Pid, path: &str, mode: Mode) -> SysResult {
        self.sys_mknod_variant(pid, path, InodeKind::Fifo, mode, Syscall::Mknod, "mknod")
    }

    /// `mknodat(2)` (`AT_FDCWD` only).
    pub fn sys_mknodat(&mut self, pid: Pid, path: &str, mode: Mode) -> SysResult {
        self.sys_mknod_variant(
            pid,
            path,
            InodeKind::Fifo,
            mode,
            Syscall::Mknodat,
            "mknodat",
        )
    }

    fn sys_rename_variant(
        &mut self,
        pid: Pid,
        old: &str,
        new: &str,
        syscall: Syscall,
        func: &str,
    ) -> SysResult {
        let old = &self.abs(pid, old);
        let new = &self.abs(pid, new);
        let creds = self.procs[&pid].creds;
        if let Some(ino) = self.ns.lookup(old) {
            self.emit_lsm(
                pid,
                LsmHook::InodeRename,
                vec![
                    self.inode_object(ino),
                    LsmObject::Path {
                        path: Namespace::normalize(old),
                    },
                    LsmObject::Path {
                        path: Namespace::normalize(new),
                    },
                ],
                self.ns.check_parent_writable(new, &creds).is_ok(),
            );
        }
        let r = self.ns.rename(old, new, &creds).map(|_| 0i64);
        let paths = vec![
            self.path_record(old, "DELETE"),
            self.path_record(new, if r.is_ok() { "CREATE" } else { "NORMAL" }),
        ];
        let args = vec![old.to_owned(), new.to_owned()];
        self.emit_audit(pid, syscall, &r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `rename(2)`.
    pub fn sys_rename(&mut self, pid: Pid, old: &str, new: &str) -> SysResult {
        self.sys_rename_variant(pid, old, new, Syscall::Rename, "rename")
    }

    /// `renameat(2)` (`AT_FDCWD` only).
    pub fn sys_renameat(&mut self, pid: Pid, old: &str, new: &str) -> SysResult {
        self.sys_rename_variant(pid, old, new, Syscall::Renameat, "renameat")
    }

    fn do_truncate(&mut self, pid: Pid, ino: Ino, len: u64) -> SysResult {
        let creds = self.procs[&pid].creds;
        let inode = self.ns.inode(ino).ok_or(Errno::ENOENT)?;
        let allowed = inode.may_access(&creds, false, true, false);
        self.emit_lsm(
            pid,
            LsmHook::InodeSetattr,
            vec![self.inode_object(ino)],
            allowed,
        );
        if !allowed {
            return Err(Errno::EACCES);
        }
        let inode = self.ns.inode_mut(ino).expect("checked inode");
        inode.size = len;
        inode.version += 1;
        Ok(0)
    }

    /// `truncate(2)`.
    pub fn sys_truncate(&mut self, pid: Pid, path: &str, len: u64) -> SysResult {
        let path = &self.abs(pid, path);
        let r = match self.ns.resolve(path) {
            Ok(ino) => self.do_truncate(pid, ino, len),
            Err(e) => Err(e),
        };
        let paths = vec![self.path_record(path, "NORMAL")];
        let args = vec![path.to_owned(), len.to_string()];
        self.emit_audit(pid, Syscall::Truncate, &r, args.clone(), paths, None);
        self.emit_libc(pid, "truncate", args, &r, None);
        r
    }

    /// `ftruncate(2)`.
    pub fn sys_ftruncate(&mut self, pid: Pid, fd: i32, len: u64) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = match self.fd_ino(pid, fd) {
            Ok(ino) => self.do_truncate(pid, ino, len),
            Err(e) => Err(e),
        };
        let paths = path
            .as_deref()
            .map(|p| vec![self.path_record(p, "NORMAL")])
            .unwrap_or_default();
        let args = vec![fd.to_string(), len.to_string()];
        self.emit_audit(pid, Syscall::Ftruncate, &r, args.clone(), paths, None);
        self.emit_libc(pid, "ftruncate", args, &r, None);
        r
    }

    fn sys_unlink_variant(
        &mut self,
        pid: Pid,
        path: &str,
        syscall: Syscall,
        func: &str,
    ) -> SysResult {
        let path = &self.abs(pid, path);
        let creds = self.procs[&pid].creds;
        if let Some(ino) = self.ns.lookup(path) {
            self.emit_lsm(
                pid,
                LsmHook::InodeUnlink,
                vec![
                    self.inode_object(ino),
                    LsmObject::Path {
                        path: Namespace::normalize(path),
                    },
                ],
                self.ns.check_parent_writable(path, &creds).is_ok(),
            );
        }
        // Capture the audit path record *before* the entry disappears.
        let pre_path = self.path_record(path, "DELETE");
        let r = self.ns.unlink(path, &creds).map(|_| 0i64);
        let args = vec![path.to_owned()];
        self.emit_audit(pid, syscall, &r, args.clone(), vec![pre_path], None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `unlink(2)`.
    pub fn sys_unlink(&mut self, pid: Pid, path: &str) -> SysResult {
        self.sys_unlink_variant(pid, path, Syscall::Unlink, "unlink")
    }

    /// `unlinkat(2)` (`AT_FDCWD` only).
    pub fn sys_unlinkat(&mut self, pid: Pid, path: &str) -> SysResult {
        self.sys_unlink_variant(pid, path, Syscall::Unlinkat, "unlinkat")
    }

    // ----- group 2: process syscalls ----------------------------------------

    fn clone_process(&mut self, parent: Pid, vfork: bool) -> Pid {
        let parent_proc = self.procs[&parent].clone();
        let child_pid = self.next_pid;
        self.next_pid += 1;
        let mut child = Process::new(child_pid, parent, parent_proc.creds, &parent_proc.exe);
        child.cwd = parent_proc.cwd.clone();
        child.env = parent_proc.env.clone();
        child.comm = parent_proc.comm.clone();
        // Inherit the fd table; each inherited fd bumps its description.
        child.fds = parent_proc.fds.clone();
        for entry in child.fds.values() {
            self.ofds[entry.ofd].refs += 1;
        }
        child.vfork_child = vfork;
        self.procs.insert(child_pid, child);
        self.emit_lsm(
            parent,
            LsmHook::TaskAlloc,
            vec![LsmObject::Task { pid: child_pid }],
            true,
        );
        child_pid
    }

    /// `fork(2)`. The audit record is emitted immediately (at fork's exit
    /// in the parent); the child runs afterwards.
    pub fn sys_fork(&mut self, pid: Pid) -> SysResult {
        let child = self.clone_process(pid, false);
        let r = Ok(child as i64);
        self.emit_audit(pid, Syscall::Fork, &r, vec![], vec![], Some(child));
        self.emit_libc(pid, "fork", vec![], &r, None);
        r
    }

    /// `vfork(2)`. The parent is suspended; its audit record is **deferred**
    /// until the child exits or execs (Linux audit reports at syscall exit),
    /// which is exactly why SPADE shows vforked children disconnected
    /// (paper §4.2, note DV).
    pub fn sys_vfork(&mut self, pid: Pid) -> SysResult {
        let child = self.clone_process(pid, true);
        self.procs.get_mut(&pid).expect("parent lives").state = ProcessState::VforkWait;
        self.pending_vfork
            .push(PendingVforkAudit { parent: pid, child });
        Ok(child as i64)
    }

    /// `clone(2)` invoked **directly** (not through a libc wrapper), as the
    /// benchmark programs do — so no libc event is emitted and OPUS is
    /// blind to it (Table 2: `clone` empty/NR for OPUS).
    pub fn sys_clone(&mut self, pid: Pid) -> SysResult {
        let child = self.clone_process(pid, false);
        let r = Ok(child as i64);
        self.emit_audit(
            pid,
            Syscall::Clone,
            &r,
            vec!["CLONE_VM".into()],
            vec![],
            Some(child),
        );
        r
    }

    fn release_vfork_parent(&mut self, child: Pid) {
        let pending: Vec<PendingVforkAudit> = self
            .pending_vfork
            .iter()
            .filter(|p| p.child == child)
            .cloned()
            .collect();
        self.pending_vfork.retain(|p| p.child != child);
        for p in pending {
            if let Some(parent) = self.procs.get_mut(&p.parent) {
                if parent.state == ProcessState::VforkWait {
                    parent.state = ProcessState::Running;
                }
            }
            let r = Ok(p.child as i64);
            self.emit_audit(p.parent, Syscall::Vfork, &r, vec![], vec![], Some(p.child));
            self.emit_libc(p.parent, "vfork", vec![], &r, None);
        }
        if let Some(proc) = self.procs.get_mut(&child) {
            proc.vfork_child = false;
        }
    }

    /// `execve(2)`: replace the process image. Fires `bprm_check`; closes
    /// cloexec descriptors; releases a vfork-suspended parent.
    pub fn sys_execve(
        &mut self,
        pid: Pid,
        path: &str,
        env: &BTreeMap<String, String>,
    ) -> SysResult {
        let path = &self.abs(pid, path);
        let creds = self.procs[&pid].creds;
        let r: SysResult = match self.ns.resolve(path) {
            Ok(ino) => {
                let inode = self.ns.inode(ino).expect("resolved inode");
                let allowed = inode.may_access(&creds, true, false, true);
                self.emit_lsm(
                    pid,
                    LsmHook::BprmCheck,
                    vec![
                        self.inode_object(ino),
                        LsmObject::Path {
                            path: Namespace::normalize(path),
                        },
                    ],
                    allowed,
                );
                if allowed {
                    Ok(0)
                } else {
                    Err(Errno::EACCES)
                }
            }
            Err(e) => Err(e),
        };
        if r.is_ok() {
            let norm = Namespace::normalize(path);
            let proc = self.procs.get_mut(&pid).expect("live process");
            proc.exe = norm.clone();
            proc.comm = norm.rsplit('/').next().unwrap_or(&norm).to_owned();
            proc.env = env.clone();
            let cloexec: Vec<i32> = proc
                .fds
                .iter()
                .filter(|(_, e)| e.cloexec)
                .map(|(fd, _)| *fd)
                .collect();
            for fd in cloexec {
                if let Some(entry) = self
                    .procs
                    .get_mut(&pid)
                    .expect("live process")
                    .fds
                    .remove(&fd)
                {
                    self.drop_ofd_ref(entry.ofd);
                }
            }
        }
        let paths = vec![self.path_record(path, "NORMAL")];
        let args = vec![path.to_owned()];
        self.emit_audit(pid, Syscall::Execve, &r, args.clone(), paths, None);
        self.emit_libc(pid, "execve", args, &r, Some(env.clone()));
        if r.is_ok() && self.procs[&pid].vfork_child {
            self.release_vfork_parent(pid);
        }
        r
    }

    /// `exit(2)`: terminate normally. Releases a vfork-suspended parent.
    pub fn sys_exit(&mut self, pid: Pid, code: i32) -> SysResult {
        self.emit_lsm(pid, LsmHook::TaskFree, vec![LsmObject::Task { pid }], true);
        let was_vfork_child = self.procs[&pid].vfork_child;
        // Close all fds.
        let fds: Vec<FdEntry> = self.procs[&pid].fds.values().copied().collect();
        for e in fds {
            self.drop_ofd_ref(e.ofd);
        }
        let proc = self.procs.get_mut(&pid).expect("live process");
        proc.fds.clear();
        proc.state = ProcessState::Exited(code);
        let r = Ok(0i64);
        self.emit_audit(pid, Syscall::Exit, &r, vec![code.to_string()], vec![], None);
        self.emit_libc(pid, "exit", vec![code.to_string()], &r, None);
        if was_vfork_child {
            self.release_vfork_parent(pid);
        }
        r
    }

    /// `kill(2)`: deliver a fatal signal. The target terminates **without**
    /// a normal exit record — the deviation from ProvMark's assumptions
    /// that makes the `kill`/`exit` benchmarks empty (note LP).
    pub fn sys_kill(&mut self, pid: Pid, target: Pid, sig: i32) -> SysResult {
        let r: SysResult = (|| {
            let target_proc = self.procs.get(&target).ok_or(Errno::ESRCH)?;
            let creds = self.procs[&pid].creds;
            if !creds.privileged() && creds.euid != target_proc.creds.uid {
                return Err(Errno::EPERM);
            }
            Ok(0)
        })();
        self.emit_lsm(
            pid,
            LsmHook::TaskKill,
            vec![LsmObject::Task { pid: target }],
            r.is_ok(),
        );
        if r.is_ok() {
            let fds: Vec<FdEntry> = self.procs[&target].fds.values().copied().collect();
            for e in fds {
                self.drop_ofd_ref(e.ofd);
            }
            let proc = self.procs.get_mut(&target).expect("target lives");
            proc.fds.clear();
            proc.state = ProcessState::Killed(sig);
        }
        let args = vec![target.to_string(), sig.to_string()];
        self.emit_audit(pid, Syscall::Kill, &r, args.clone(), vec![], None);
        self.emit_libc(pid, "kill", args, &r, None);
        r
    }

    // ----- group 3: permission syscalls --------------------------------------

    fn do_chmod(&mut self, pid: Pid, ino: Ino, mode: Mode) -> SysResult {
        let creds = self.procs[&pid].creds;
        let inode = self.ns.inode(ino).ok_or(Errno::ENOENT)?;
        let allowed = creds.privileged() || creds.euid == inode.uid;
        self.emit_lsm(
            pid,
            LsmHook::InodeSetattr,
            vec![self.inode_object(ino)],
            allowed,
        );
        if !allowed {
            return Err(Errno::EPERM);
        }
        let inode = self.ns.inode_mut(ino).expect("checked inode");
        inode.mode = mode & 0o7777;
        inode.version += 1;
        Ok(0)
    }

    /// `chmod(2)`.
    pub fn sys_chmod(&mut self, pid: Pid, path: &str, mode: Mode) -> SysResult {
        let path = &self.abs(pid, path);
        let r = match self.ns.resolve(path) {
            Ok(ino) => self.do_chmod(pid, ino, mode),
            Err(e) => Err(e),
        };
        self.finish_perm_path(pid, Syscall::Chmod, "chmod", path, &format!("{mode:o}"), &r);
        r
    }

    /// `fchmod(2)`.
    pub fn sys_fchmod(&mut self, pid: Pid, fd: i32, mode: Mode) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = match self.fd_ino(pid, fd) {
            Ok(ino) => self.do_chmod(pid, ino, mode),
            Err(e) => Err(e),
        };
        self.finish_perm_fd(
            pid,
            Syscall::Fchmod,
            "fchmod",
            fd,
            path,
            &format!("{mode:o}"),
            &r,
        );
        r
    }

    /// `fchmodat(2)` (`AT_FDCWD` only).
    pub fn sys_fchmodat(&mut self, pid: Pid, path: &str, mode: Mode) -> SysResult {
        let path = &self.abs(pid, path);
        let r = match self.ns.resolve(path) {
            Ok(ino) => self.do_chmod(pid, ino, mode),
            Err(e) => Err(e),
        };
        self.finish_perm_path(
            pid,
            Syscall::Fchmodat,
            "fchmodat",
            path,
            &format!("{mode:o}"),
            &r,
        );
        r
    }

    fn do_chown(&mut self, pid: Pid, ino: Ino, uid: Uid, gid: Gid) -> SysResult {
        let creds = self.procs[&pid].creds;
        let allowed = creds.privileged();
        self.emit_lsm(
            pid,
            LsmHook::InodeSetown,
            vec![self.inode_object(ino)],
            allowed,
        );
        if !allowed {
            return Err(Errno::EPERM);
        }
        let inode = self.ns.inode_mut(ino).ok_or(Errno::ENOENT)?;
        inode.uid = uid;
        inode.gid = gid;
        inode.version += 1;
        Ok(0)
    }

    /// `chown(2)`.
    pub fn sys_chown(&mut self, pid: Pid, path: &str, uid: Uid, gid: Gid) -> SysResult {
        let path = &self.abs(pid, path);
        let r = match self.ns.resolve(path) {
            Ok(ino) => self.do_chown(pid, ino, uid, gid),
            Err(e) => Err(e),
        };
        self.finish_perm_path(
            pid,
            Syscall::Chown,
            "chown",
            path,
            &format!("{uid}:{gid}"),
            &r,
        );
        r
    }

    /// `fchown(2)`.
    pub fn sys_fchown(&mut self, pid: Pid, fd: i32, uid: Uid, gid: Gid) -> SysResult {
        let path = self.fd_path(pid, fd);
        let r = match self.fd_ino(pid, fd) {
            Ok(ino) => self.do_chown(pid, ino, uid, gid),
            Err(e) => Err(e),
        };
        self.finish_perm_fd(
            pid,
            Syscall::Fchown,
            "fchown",
            fd,
            path,
            &format!("{uid}:{gid}"),
            &r,
        );
        r
    }

    /// `fchownat(2)` (`AT_FDCWD` only).
    pub fn sys_fchownat(&mut self, pid: Pid, path: &str, uid: Uid, gid: Gid) -> SysResult {
        let path = &self.abs(pid, path);
        let r = match self.ns.resolve(path) {
            Ok(ino) => self.do_chown(pid, ino, uid, gid),
            Err(e) => Err(e),
        };
        self.finish_perm_path(
            pid,
            Syscall::Fchownat,
            "fchownat",
            path,
            &format!("{uid}:{gid}"),
            &r,
        );
        r
    }

    fn finish_perm_path(
        &mut self,
        pid: Pid,
        syscall: Syscall,
        func: &str,
        path: &str,
        arg: &str,
        r: &SysResult,
    ) {
        let paths = vec![self.path_record(path, "NORMAL")];
        let args = vec![path.to_owned(), arg.to_owned()];
        self.emit_audit(pid, syscall, r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, r, None);
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_perm_fd(
        &mut self,
        pid: Pid,
        syscall: Syscall,
        func: &str,
        fd: i32,
        path: Option<String>,
        arg: &str,
        r: &SysResult,
    ) {
        let paths = path
            .as_deref()
            .map(|p| vec![self.path_record(p, "NORMAL")])
            .unwrap_or_default();
        let args = vec![fd.to_string(), arg.to_owned()];
        self.emit_audit(pid, syscall, r, args.clone(), paths, None);
        self.emit_libc(pid, func, args, r, None);
    }

    /// Shared implementation of the `set*uid`/`set*gid` family.
    ///
    /// `changed` in the audit args records whether any credential actually
    /// changed — SPADE's simplify mode only reacts to observed changes,
    /// which is why `setresgid` to the current value goes unnoticed
    /// (paper §4.3).
    fn set_creds(
        &mut self,
        pid: Pid,
        syscall: Syscall,
        func: &str,
        update: impl FnOnce(&mut Credentials) -> Result<(), Errno>,
        is_uid: bool,
    ) -> SysResult {
        let old = self.procs[&pid].creds;
        let mut new = old;
        let r: SysResult = match update(&mut new) {
            Ok(()) => Ok(0),
            Err(e) => Err(e),
        };
        let hook = if is_uid {
            LsmHook::TaskFixSetuid
        } else {
            LsmHook::TaskFixSetgid
        };
        self.emit_lsm(pid, hook, vec![LsmObject::Task { pid }], r.is_ok());
        let changed = new != old;
        if r.is_ok() {
            self.procs.get_mut(&pid).expect("live process").creds = new;
        }
        let args = vec![
            format!("changed={}", changed && r.is_ok()),
            format!("uid={}:{}:{}", new.uid, new.euid, new.suid),
            format!("gid={}:{}:{}", new.gid, new.egid, new.sgid),
        ];
        self.emit_audit(pid, syscall, &r, args.clone(), vec![], None);
        self.emit_libc(pid, func, args, &r, None);
        r
    }

    /// `setuid(2)`.
    pub fn sys_setuid(&mut self, pid: Pid, uid: Uid) -> SysResult {
        let priv_ = self.procs[&pid].creds.privileged();
        self.set_creds(
            pid,
            Syscall::Setuid,
            "setuid",
            |c| {
                if priv_ {
                    c.uid = uid;
                    c.euid = uid;
                    c.suid = uid;
                    Ok(())
                } else if uid == c.uid || uid == c.suid {
                    c.euid = uid;
                    Ok(())
                } else {
                    Err(Errno::EPERM)
                }
            },
            true,
        )
    }

    /// `setreuid(2)`.
    pub fn sys_setreuid(&mut self, pid: Pid, ruid: Option<Uid>, euid: Option<Uid>) -> SysResult {
        let priv_ = self.procs[&pid].creds.privileged();
        self.set_creds(
            pid,
            Syscall::Setreuid,
            "setreuid",
            |c| {
                let target_r = ruid.unwrap_or(c.uid);
                let target_e = euid.unwrap_or(c.euid);
                if !priv_
                    && (![c.uid, c.euid, c.suid].contains(&target_r)
                        || ![c.uid, c.euid, c.suid].contains(&target_e))
                {
                    return Err(Errno::EPERM);
                }
                c.uid = target_r;
                c.euid = target_e;
                Ok(())
            },
            true,
        )
    }

    /// `setresuid(2)`.
    pub fn sys_setresuid(
        &mut self,
        pid: Pid,
        ruid: Option<Uid>,
        euid: Option<Uid>,
        suid: Option<Uid>,
    ) -> SysResult {
        let priv_ = self.procs[&pid].creds.privileged();
        self.set_creds(
            pid,
            Syscall::Setresuid,
            "setresuid",
            |c| {
                let (r, e, s) = (
                    ruid.unwrap_or(c.uid),
                    euid.unwrap_or(c.euid),
                    suid.unwrap_or(c.suid),
                );
                if !priv_
                    && [r, e, s]
                        .iter()
                        .any(|v| ![c.uid, c.euid, c.suid].contains(v))
                {
                    return Err(Errno::EPERM);
                }
                c.uid = r;
                c.euid = e;
                c.suid = s;
                Ok(())
            },
            true,
        )
    }

    /// `setgid(2)`.
    pub fn sys_setgid(&mut self, pid: Pid, gid: Gid) -> SysResult {
        let priv_ = self.procs[&pid].creds.privileged();
        self.set_creds(
            pid,
            Syscall::Setgid,
            "setgid",
            |c| {
                if priv_ {
                    c.gid = gid;
                    c.egid = gid;
                    c.sgid = gid;
                    Ok(())
                } else if gid == c.gid || gid == c.sgid {
                    c.egid = gid;
                    Ok(())
                } else {
                    Err(Errno::EPERM)
                }
            },
            false,
        )
    }

    /// `setregid(2)`.
    pub fn sys_setregid(&mut self, pid: Pid, rgid: Option<Gid>, egid: Option<Gid>) -> SysResult {
        let priv_ = self.procs[&pid].creds.privileged();
        self.set_creds(
            pid,
            Syscall::Setregid,
            "setregid",
            |c| {
                let target_r = rgid.unwrap_or(c.gid);
                let target_e = egid.unwrap_or(c.egid);
                if !priv_
                    && (![c.gid, c.egid, c.sgid].contains(&target_r)
                        || ![c.gid, c.egid, c.sgid].contains(&target_e))
                {
                    return Err(Errno::EPERM);
                }
                c.gid = target_r;
                c.egid = target_e;
                Ok(())
            },
            false,
        )
    }

    /// `setresgid(2)`.
    pub fn sys_setresgid(
        &mut self,
        pid: Pid,
        rgid: Option<Gid>,
        egid: Option<Gid>,
        sgid: Option<Gid>,
    ) -> SysResult {
        let priv_ = self.procs[&pid].creds.privileged();
        self.set_creds(
            pid,
            Syscall::Setresgid,
            "setresgid",
            |c| {
                let (r, e, s) = (
                    rgid.unwrap_or(c.gid),
                    egid.unwrap_or(c.egid),
                    sgid.unwrap_or(c.sgid),
                );
                if !priv_
                    && [r, e, s]
                        .iter()
                        .any(|v| ![c.gid, c.egid, c.sgid].contains(v))
                {
                    return Err(Errno::EPERM);
                }
                c.gid = r;
                c.egid = e;
                c.sgid = s;
                Ok(())
            },
            false,
        )
    }

    // ----- group 4: pipe syscalls --------------------------------------------

    fn do_pipe(&mut self, pid: Pid, cloexec: bool) -> Result<(i32, i32), Errno> {
        self.pipes.push(Pipe::new());
        let idx = self.pipes.len() - 1;
        let r_ofd = self.alloc_ofd(
            OfdTarget::PipeRead(idx),
            OpenFlags::RDONLY,
            Some(format!("pipe:[{idx}]")),
        );
        let rfd = self.install_fd(pid, r_ofd, cloexec);
        let w_ofd = self.alloc_ofd(
            OfdTarget::PipeWrite(idx),
            OpenFlags::WRONLY,
            Some(format!("pipe:[{idx}]")),
        );
        let wfd = self.install_fd(pid, w_ofd, cloexec);
        Ok((rfd, wfd))
    }

    fn sys_pipe_variant(
        &mut self,
        pid: Pid,
        cloexec: bool,
        syscall: Syscall,
        func: &str,
    ) -> Result<(i32, i32), Errno> {
        // No LSM hook: CamFlow does not observe pipe creation
        // (Table 2: `pipe` empty/NR for CamFlow).
        let r = self.do_pipe(pid, cloexec);
        let sys_r: SysResult = r.map(|_| 0i64);
        let args = match &r {
            Ok((rf, wf)) => vec![rf.to_string(), wf.to_string()],
            Err(_) => vec![],
        };
        self.emit_audit(pid, syscall, &sys_r, args.clone(), vec![], None);
        self.emit_libc(pid, func, args, &sys_r, None);
        r
    }

    /// `pipe(2)`. Returns the `(read fd, write fd)` pair.
    pub fn sys_pipe(&mut self, pid: Pid) -> Result<(i32, i32), Errno> {
        self.sys_pipe_variant(pid, false, Syscall::Pipe, "pipe")
    }

    /// `pipe2(2)` with `O_CLOEXEC`.
    pub fn sys_pipe2(&mut self, pid: Pid) -> Result<(i32, i32), Errno> {
        self.sys_pipe_variant(pid, true, Syscall::Pipe2, "pipe2")
    }

    /// `tee(2)`: duplicate up to `len` bytes from one pipe to another
    /// without consuming the source.
    pub fn sys_tee(&mut self, pid: Pid, fd_in: i32, fd_out: i32, len: u64) -> SysResult {
        let r: SysResult = (|| {
            let in_entry = self.fd_entry(pid, fd_in)?;
            let out_entry = self.fd_entry(pid, fd_out)?;
            let in_pipe = match self.ofds[in_entry.ofd].target {
                OfdTarget::PipeRead(i) => i,
                _ => return Err(Errno::EINVAL),
            };
            let out_pipe = match self.ofds[out_entry.ofd].target {
                OfdTarget::PipeWrite(i) => i,
                _ => return Err(Errno::EINVAL),
            };
            if in_pipe == out_pipe {
                return Err(Errno::EINVAL);
            }
            self.emit_lsm(
                pid,
                LsmHook::FileSplice,
                vec![
                    LsmObject::Path {
                        path: format!("pipe:[{in_pipe}]"),
                    },
                    LsmObject::Path {
                        path: format!("pipe:[{out_pipe}]"),
                    },
                ],
                true,
            );
            let (src, dst) = if in_pipe < out_pipe {
                let (a, b) = self.pipes.split_at_mut(out_pipe);
                (&a[in_pipe], &mut b[0])
            } else {
                let (a, b) = self.pipes.split_at_mut(in_pipe);
                (&b[0], &mut a[out_pipe])
            };
            Ok(src.tee_into(dst, len as usize) as i64)
        })();
        let args = vec![fd_in.to_string(), fd_out.to_string(), len.to_string()];
        self.emit_audit(pid, Syscall::Tee, &r, args.clone(), vec![], None);
        self.emit_libc(pid, "tee", args, &r, None);
        r
    }

    // ----- program execution ---------------------------------------------------

    /// Run a benchmark program, including realistic process startup:
    /// the shell forks, the child execs the program binary, the dynamic
    /// loader touches its libraries, the program body runs, and the process
    /// exits. Returns per-op results.
    pub fn run_program(&mut self, program: &Program) -> ProgramOutcome {
        // Stage the filesystem without recording.
        for action in &program.setup {
            self.setup(|ns| action.apply(ns));
        }
        self.set_recording(true);

        // Process startup boilerplate (background provenance, paper §3).
        let shell = self.shell_pid;
        let bench_pid = match self.sys_fork(shell) {
            Ok(pid) => pid as Pid,
            Err(_) => unreachable!("fork of shell cannot fail"),
        };
        let env: BTreeMap<String, String> = [
            ("PATH".to_owned(), "/usr/local/bin:/bin".to_owned()),
            ("HOME".to_owned(), "/staging".to_owned()),
            ("LANG".to_owned(), "C.UTF-8".to_owned()),
        ]
        .into_iter()
        .collect();
        let _ = self.sys_execve(bench_pid, &program.exe_path, &env);
        self.loader_boilerplate(bench_pid);

        // The program body.
        let mut results = Vec::new();
        let mut success = true;
        self.run_ops(bench_pid, &program.ops, &mut results, &mut success);

        // Implicit exit (every process has one — why the `exit` benchmark
        // is empty, paper §4.2).
        if !self.procs[&bench_pid].terminated() {
            let _ = self.sys_exit(bench_pid, 0);
        }
        self.set_recording(false);
        ProgramOutcome {
            success,
            results,
            bench_pid,
        }
    }

    fn loader_boilerplate(&mut self, pid: Pid) {
        let mut libs = vec!["/lib/ld-linux.so", "/lib/libc.so"];
        if self.startup_noise {
            libs.push("/etc/ld.so.cache");
        }
        for lib in libs {
            if let Ok(fd) = self.sys_open(pid, lib, OpenFlags::RDONLY, 0) {
                let fd = fd as i32;
                let _ = self.sys_read(pid, fd, 832);
                let _ = self.sys_close(pid, fd);
            }
        }
    }

    fn run_ops(&mut self, pid: Pid, ops: &[Op], results: &mut Vec<SysResult>, success: &mut bool) {
        // Per-process register file mapping fd variable names to numbers.
        let mut fd_vars: BTreeMap<String, i32> = BTreeMap::new();
        let mut last_child: Option<Pid> = None;
        self.run_ops_inner(pid, ops, results, success, &mut fd_vars, &mut last_child);
    }

    fn run_ops_inner(
        &mut self,
        pid: Pid,
        ops: &[Op],
        results: &mut Vec<SysResult>,
        success: &mut bool,
        fd_vars: &mut BTreeMap<String, i32>,
        last_child: &mut Option<Pid>,
    ) {
        for op in ops {
            if self.procs[&pid].terminated() {
                break;
            }
            let expect_failure = op.expects_failure();
            let r = self.run_op(pid, op, results, success, fd_vars, last_child);
            results.push(r);
            let ok = if expect_failure {
                r.is_err()
            } else {
                r.is_ok()
            };
            if !ok {
                *success = false;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_op(
        &mut self,
        pid: Pid,
        op: &Op,
        results: &mut Vec<SysResult>,
        success: &mut bool,
        fd_vars: &mut BTreeMap<String, i32>,
        last_child: &mut Option<Pid>,
    ) -> SysResult {
        let fd_of = |vars: &BTreeMap<String, i32>, name: &str| -> Result<i32, Errno> {
            vars.get(name).copied().ok_or(Errno::EBADF)
        };
        match op {
            Op::Open {
                path,
                flags,
                mode,
                fd_var,
            } => {
                let r = self.sys_open(pid, path, *flags, *mode);
                if let Ok(fd) = r {
                    fd_vars.insert(fd_var.clone(), fd as i32);
                }
                r
            }
            Op::Openat {
                path,
                flags,
                mode,
                fd_var,
            } => {
                let r = self.sys_openat(pid, path, *flags, *mode);
                if let Ok(fd) = r {
                    fd_vars.insert(fd_var.clone(), fd as i32);
                }
                r
            }
            Op::Creat { path, mode, fd_var } => {
                let r = self.sys_creat(pid, path, *mode);
                if let Ok(fd) = r {
                    fd_vars.insert(fd_var.clone(), fd as i32);
                }
                r
            }
            Op::Close { fd_var } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_close(pid, fd)
            }
            Op::Dup { fd_var, new_var } => {
                let fd = fd_of(fd_vars, fd_var)?;
                let r = self.sys_dup(pid, fd);
                if let Ok(nfd) = r {
                    fd_vars.insert(new_var.clone(), nfd as i32);
                }
                r
            }
            Op::Dup2 {
                fd_var,
                newfd,
                new_var,
            } => {
                let fd = fd_of(fd_vars, fd_var)?;
                let r = self.sys_dup2(pid, fd, *newfd);
                if let Ok(nfd) = r {
                    fd_vars.insert(new_var.clone(), nfd as i32);
                }
                r
            }
            Op::Dup3 {
                fd_var,
                newfd,
                new_var,
            } => {
                let fd = fd_of(fd_vars, fd_var)?;
                let r = self.sys_dup3(pid, fd, *newfd, false);
                if let Ok(nfd) = r {
                    fd_vars.insert(new_var.clone(), nfd as i32);
                }
                r
            }
            Op::Read { fd_var, len } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_read(pid, fd, *len)
            }
            Op::Pread {
                fd_var,
                len,
                offset,
            } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_pread(pid, fd, *len, *offset)
            }
            Op::Write { fd_var, len } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_write(pid, fd, *len)
            }
            Op::Pwrite {
                fd_var,
                len,
                offset,
            } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_pwrite(pid, fd, *len, *offset)
            }
            Op::Link { old, new } => self.sys_link(pid, old, new),
            Op::Linkat { old, new } => self.sys_linkat(pid, old, new),
            Op::Symlink { target, linkpath } => self.sys_symlink(pid, target, linkpath),
            Op::Symlinkat { target, linkpath } => self.sys_symlinkat(pid, target, linkpath),
            Op::Mknod { path, mode } => self.sys_mknod(pid, path, *mode),
            Op::Mknodat { path, mode } => self.sys_mknodat(pid, path, *mode),
            Op::Rename { old, new } => self.sys_rename(pid, old, new),
            Op::Renameat { old, new } => self.sys_renameat(pid, old, new),
            Op::RenameExpectFailure { old, new } => self.sys_rename(pid, old, new),
            Op::MustFail(inner) => self.run_op(pid, inner, results, success, fd_vars, last_child),
            Op::Truncate { path, len } => self.sys_truncate(pid, path, *len),
            Op::Ftruncate { fd_var, len } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_ftruncate(pid, fd, *len)
            }
            Op::Unlink { path } => self.sys_unlink(pid, path),
            Op::Unlinkat { path } => self.sys_unlinkat(pid, path),
            Op::Fork { child } => {
                let r = self.sys_fork(pid);
                if let Ok(cpid) = r {
                    let cpid = cpid as Pid;
                    *last_child = Some(cpid);
                    let mut child_vars = fd_vars.clone();
                    let mut child_last = None;
                    self.run_ops_inner(
                        cpid,
                        child,
                        results,
                        success,
                        &mut child_vars,
                        &mut child_last,
                    );
                    if !self.procs[&cpid].terminated() {
                        let _ = self.sys_exit(cpid, 0);
                    }
                }
                r
            }
            Op::ForkAlive { child } => {
                let r = self.sys_fork(pid);
                if let Ok(cpid) = r {
                    let cpid = cpid as Pid;
                    *last_child = Some(cpid);
                    let mut child_vars = fd_vars.clone();
                    let mut child_last = None;
                    self.run_ops_inner(
                        cpid,
                        child,
                        results,
                        success,
                        &mut child_vars,
                        &mut child_last,
                    );
                    // Deliberately no implicit exit: the child keeps
                    // running (the kill benchmark's victim).
                }
                r
            }
            Op::Vfork { child } => {
                let r = self.sys_vfork(pid);
                if let Ok(cpid) = r {
                    let cpid = cpid as Pid;
                    *last_child = Some(cpid);
                    let mut child_vars = fd_vars.clone();
                    let mut child_last = None;
                    self.run_ops_inner(
                        cpid,
                        child,
                        results,
                        success,
                        &mut child_vars,
                        &mut child_last,
                    );
                    if !self.procs[&cpid].terminated() {
                        let _ = self.sys_exit(cpid, 0);
                    }
                }
                r
            }
            Op::CloneProc { child } => {
                let r = self.sys_clone(pid);
                if let Ok(cpid) = r {
                    let cpid = cpid as Pid;
                    *last_child = Some(cpid);
                    let mut child_vars = fd_vars.clone();
                    let mut child_last = None;
                    self.run_ops_inner(
                        cpid,
                        child,
                        results,
                        success,
                        &mut child_vars,
                        &mut child_last,
                    );
                    if !self.procs[&cpid].terminated() {
                        let _ = self.sys_exit(cpid, 0);
                    }
                }
                r
            }
            Op::Execve { path } => {
                let env = self.procs[&pid].env.clone();
                self.sys_execve(pid, path, &env)
            }
            Op::ExitOp { code } => self.sys_exit(pid, *code),
            Op::KillLastChild { sig } => {
                let target = last_child.ok_or(Errno::ESRCH)?;
                self.sys_kill(pid, target, *sig)
            }
            Op::Chmod { path, mode } => self.sys_chmod(pid, path, *mode),
            Op::Fchmod { fd_var, mode } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_fchmod(pid, fd, *mode)
            }
            Op::Fchmodat { path, mode } => self.sys_fchmodat(pid, path, *mode),
            Op::Chown { path, uid, gid } => self.sys_chown(pid, path, *uid, *gid),
            Op::Fchown { fd_var, uid, gid } => {
                let fd = fd_of(fd_vars, fd_var)?;
                self.sys_fchown(pid, fd, *uid, *gid)
            }
            Op::Fchownat { path, uid, gid } => self.sys_fchownat(pid, path, *uid, *gid),
            Op::Setuid { uid } => self.sys_setuid(pid, *uid),
            Op::Setreuid { ruid, euid } => self.sys_setreuid(pid, *ruid, *euid),
            Op::Setresuid { ruid, euid, suid } => self.sys_setresuid(pid, *ruid, *euid, *suid),
            Op::Setgid { gid } => self.sys_setgid(pid, *gid),
            Op::Setregid { rgid, egid } => self.sys_setregid(pid, *rgid, *egid),
            Op::Setresgid { rgid, egid, sgid } => self.sys_setresgid(pid, *rgid, *egid, *sgid),
            Op::PipeOp {
                read_var,
                write_var,
            } => match self.sys_pipe(pid) {
                Ok((rfd, wfd)) => {
                    fd_vars.insert(read_var.clone(), rfd);
                    fd_vars.insert(write_var.clone(), wfd);
                    Ok(0)
                }
                Err(e) => Err(e),
            },
            Op::Pipe2Op {
                read_var,
                write_var,
            } => match self.sys_pipe2(pid) {
                Ok((rfd, wfd)) => {
                    fd_vars.insert(read_var.clone(), rfd);
                    fd_vars.insert(write_var.clone(), wfd);
                    Ok(0)
                }
                Err(e) => Err(e),
            },
            Op::Tee {
                in_var,
                out_var,
                len,
            } => {
                let fd_in = fd_of(fd_vars, in_var)?;
                let fd_out = fd_of(fd_vars, out_var)?;
                self.sys_tee(pid, fd_in, fd_out, *len)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SetupAction;

    fn kernel() -> Kernel {
        let mut k = Kernel::with_seed(7);
        k.set_recording(true);
        k
    }

    fn open_tmp(k: &mut Kernel, pid: Pid, path: &str) -> i32 {
        k.sys_open(pid, path, OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap() as i32
    }

    #[test]
    fn open_create_read_write_close() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let fd = open_tmp(&mut k, pid, "/staging/test.txt");
        assert_eq!(k.sys_write(pid, fd, 100), Ok(100));
        assert_eq!(k.sys_pread(pid, fd, 50, 0), Ok(50));
        assert_eq!(k.sys_read(pid, fd, 100), Ok(0), "offset at EOF after write");
        assert_eq!(k.sys_close(pid, fd), Ok(0));
        assert_eq!(k.sys_close(pid, fd), Err(Errno::EBADF));
    }

    #[test]
    fn open_missing_file_fails() {
        let mut k = kernel();
        let pid = k.shell_pid();
        assert_eq!(
            k.sys_open(pid, "/staging/none", OpenFlags::RDONLY, 0),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn open_unreadable_file_denied_and_audited_as_failure() {
        let mut k = kernel();
        let pid = k.shell_pid();
        k.setup(|ns| {
            ns.create(
                "/etc/secret",
                InodeKind::Regular,
                0o600,
                &Credentials::root(),
            )
            .unwrap();
        });
        k.sys_setuid(pid, 1000).unwrap(); // drop privileges
        assert_eq!(
            k.sys_open(pid, "/etc/secret", OpenFlags::RDONLY, 0),
            Err(Errno::EACCES)
        );
        let rec = k.event_log().audit_records().last().unwrap();
        assert!(!rec.success);
        assert_eq!(rec.exit, -13);
    }

    #[test]
    fn dup_shares_offset() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let fd = open_tmp(&mut k, pid, "/staging/t");
        k.sys_write(pid, fd, 10).unwrap();
        let dup = k.sys_dup(pid, fd).unwrap() as i32;
        assert_ne!(fd, dup);
        // Shared offset: reading via dup starts at the shared position.
        assert_eq!(k.sys_pread(pid, dup, 10, 0), Ok(10));
        assert_eq!(k.sys_read(pid, dup, 10), Ok(0), "shared offset at EOF");
    }

    #[test]
    fn dup2_closes_previous_target() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let a = open_tmp(&mut k, pid, "/staging/a");
        let b = open_tmp(&mut k, pid, "/staging/b");
        assert_eq!(k.sys_dup2(pid, a, b), Ok(b as i64));
        // b now refers to a's description; a still open.
        assert_eq!(k.sys_close(pid, a), Ok(0));
        assert_eq!(k.sys_close(pid, b), Ok(0));
    }

    #[test]
    fn dup3_same_fd_is_einval() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let a = open_tmp(&mut k, pid, "/staging/a");
        assert_eq!(k.sys_dup3(pid, a, a, false), Err(Errno::EINVAL));
    }

    #[test]
    fn rename_failure_for_unprivileged_into_etc() {
        let mut k = kernel();
        let pid = k.shell_pid();
        k.setup(|ns| {
            ns.create(
                "/staging/mine",
                InodeKind::Regular,
                0o644,
                &Credentials::user(1000, 1000),
            )
            .unwrap();
        });
        k.sys_setuid(pid, 1000).unwrap(); // drop privileges
        assert_eq!(
            k.sys_rename(pid, "/staging/mine", "/etc/passwd"),
            Err(Errno::EACCES)
        );
        let rec = k.event_log().audit_records().last().unwrap();
        assert_eq!(rec.syscall, Syscall::Rename);
        assert!(!rec.success);
    }

    #[test]
    fn fork_emits_audit_before_child_activity() {
        let mut k = kernel();
        let shell = k.shell_pid();
        let child = k.sys_fork(shell).unwrap() as Pid;
        k.sys_exit(child, 0).unwrap();
        let calls: Vec<Syscall> = k.event_log().audit_records().map(|r| r.syscall).collect();
        let fork_pos = calls.iter().position(|&s| s == Syscall::Fork).unwrap();
        let exit_pos = calls.iter().position(|&s| s == Syscall::Exit).unwrap();
        assert!(fork_pos < exit_pos);
    }

    #[test]
    fn vfork_audit_deferred_until_child_exit() {
        let mut k = kernel();
        let shell = k.shell_pid();
        let child = k.sys_vfork(shell).unwrap() as Pid;
        assert_eq!(k.process(shell).unwrap().state, ProcessState::VforkWait);
        // Child does something observable, then exits.
        let fd = open_tmp(&mut k, child, "/staging/c");
        k.sys_close(child, fd).unwrap();
        k.sys_exit(child, 0).unwrap();
        assert_eq!(k.process(shell).unwrap().state, ProcessState::Running);
        let calls: Vec<(Pid, Syscall)> = k
            .event_log()
            .audit_records()
            .map(|r| (r.pid, r.syscall))
            .collect();
        let vfork_pos = calls
            .iter()
            .position(|&(_, s)| s == Syscall::Vfork)
            .unwrap();
        let child_open = calls
            .iter()
            .position(|&(p, s)| p == child && s == Syscall::Open)
            .unwrap();
        assert!(
            child_open < vfork_pos,
            "child records must precede the parent's vfork record: {calls:?}"
        );
    }

    #[test]
    fn vfork_released_by_exec() {
        let mut k = kernel();
        let shell = k.shell_pid();
        let child = k.sys_vfork(shell).unwrap() as Pid;
        let env = BTreeMap::new();
        k.sys_execve(child, "/usr/local/bin/bench_fg", &env)
            .unwrap();
        assert_eq!(k.process(shell).unwrap().state, ProcessState::Running);
        assert!(k
            .event_log()
            .audit_records()
            .any(|r| r.syscall == Syscall::Vfork));
    }

    #[test]
    fn kill_terminates_without_exit_record() {
        let mut k = kernel();
        let shell = k.shell_pid();
        let child = k.sys_fork(shell).unwrap() as Pid;
        k.sys_kill(shell, child, 9).unwrap();
        assert_eq!(k.process(child).unwrap().state, ProcessState::Killed(9));
        let exits: Vec<Pid> = k
            .event_log()
            .audit_records()
            .filter(|r| r.syscall == Syscall::Exit)
            .map(|r| r.pid)
            .collect();
        assert!(!exits.contains(&child), "killed child has no exit record");
    }

    #[test]
    fn kill_unrelated_process_eperm() {
        let mut k = kernel();
        let shell = k.shell_pid();
        // An unprivileged child may not signal the root-owned shell.
        let child = k.sys_fork(shell).unwrap() as Pid;
        k.sys_setuid(child, 1000).unwrap();
        assert_eq!(k.sys_kill(child, shell, 9), Err(Errno::EPERM));
        assert_eq!(k.sys_kill(shell, 99999, 9), Err(Errno::ESRCH));
    }

    #[test]
    fn setuid_changes_tracked_in_audit_args() {
        let mut k = kernel();
        let shell = k.shell_pid();
        // setuid to the current uid: succeeds but nothing changes.
        k.sys_setuid(shell, 0).unwrap();
        let rec = k.event_log().audit_records().last().unwrap().clone();
        assert_eq!(rec.syscall, Syscall::Setuid);
        assert!(rec.args.contains(&"changed=false".to_owned()));
        // setresgid to current values: success, no change (paper §4.3).
        k.sys_setresgid(shell, Some(0), Some(0), Some(0)).unwrap();
        let rec = k.event_log().audit_records().last().unwrap().clone();
        assert!(rec.args.contains(&"changed=false".to_owned()));
    }

    #[test]
    fn setuid_real_change_flagged() {
        let mut k = kernel();
        let shell = k.shell_pid();
        k.sys_setuid(shell, 500).unwrap();
        let rec = k.event_log().audit_records().last().unwrap();
        assert!(rec.args.contains(&"changed=true".to_owned()));
        assert_eq!(k.process(shell).unwrap().creds.euid, 500);
    }

    #[test]
    fn unprivileged_setuid_to_foreign_uid_eperm() {
        let mut k = kernel();
        let shell = k.shell_pid();
        let child = k.sys_fork(shell).unwrap() as Pid;
        k.sys_setuid(child, 1000).unwrap(); // drop privileges
        assert_eq!(k.sys_setuid(child, 0), Err(Errno::EPERM));
    }

    #[test]
    fn pipe_and_tee() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let (r1, w1) = k.sys_pipe(pid).unwrap();
        let (_r2, w2) = k.sys_pipe(pid).unwrap();
        assert_eq!(k.sys_write(pid, w1, 5), Ok(5));
        assert_eq!(k.sys_tee(pid, r1, w2, 100), Ok(5));
        // tee must not consume: reading r1 still yields 5 bytes.
        assert_eq!(k.sys_read(pid, r1, 100), Ok(5));
        assert_eq!(k.sys_tee(pid, r1, r1, 1), Err(Errno::EINVAL));
    }

    #[test]
    fn write_to_pipe_with_closed_read_end_epipe() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let (r, w) = k.sys_pipe(pid).unwrap();
        k.sys_close(pid, r).unwrap();
        assert_eq!(k.sys_write(pid, w, 1), Err(Errno::EPIPE));
    }

    #[test]
    fn execve_closes_cloexec_fds() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let keep = open_tmp(&mut k, pid, "/staging/keep");
        let lose = k
            .sys_open(
                pid,
                "/staging/lose",
                OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::CLOEXEC,
                0o644,
            )
            .unwrap() as i32;
        let env = BTreeMap::new();
        k.sys_execve(pid, "/usr/local/bin/bench_fg", &env).unwrap();
        assert!(k.process(pid).unwrap().fds.contains_key(&keep));
        assert!(!k.process(pid).unwrap().fds.contains_key(&lose));
        assert_eq!(k.process(pid).unwrap().comm, "bench_fg");
    }

    #[test]
    fn events_not_emitted_while_recording_off() {
        let mut k = Kernel::with_seed(3);
        let pid = k.shell_pid();
        let _ = k.sys_open(pid, "/staging/x", OpenFlags::RDWR | OpenFlags::CREAT, 0o644);
        assert!(k.events().is_empty());
    }

    #[test]
    fn same_seed_same_events_different_seed_differs() {
        let run = |seed: u64| {
            let mut k = Kernel::with_seed(seed);
            k.set_recording(true);
            let pid = k.shell_pid();
            let fd = k
                .sys_open(pid, "/staging/x", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
                .unwrap() as i32;
            k.sys_close(pid, fd).unwrap();
            format!("{:?}", k.events())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "volatile values must differ across trials");
    }

    #[test]
    fn run_program_produces_startup_boilerplate() {
        let mut k = Kernel::with_seed(1);
        let prog = Program::new("creat")
            .setup(SetupAction::Nothing)
            .op(Op::Creat {
                path: "/staging/test.txt".into(),
                mode: 0o644,
                fd_var: "id".into(),
            });
        let out = k.run_program(&prog);
        assert!(out.success);
        let calls: Vec<Syscall> = k.event_log().audit_records().map(|r| r.syscall).collect();
        assert!(calls.contains(&Syscall::Fork), "shell forks");
        assert!(calls.contains(&Syscall::Execve), "program execs");
        assert!(calls.contains(&Syscall::Creat), "target call present");
        assert!(calls.contains(&Syscall::Exit), "implicit exit");
        // Loader touched libraries (background opens).
        assert!(
            k.event_log()
                .audit_records()
                .filter(|r| r.syscall == Syscall::Open)
                .any(|r| r.paths.iter().any(|p| p.name.starts_with("/lib/"))),
            "loader boilerplate present"
        );
    }

    #[test]
    fn run_program_setup_creates_files_without_events() {
        let mut k = Kernel::with_seed(1);
        let prog = Program::new("unlink")
            .setup(SetupAction::CreateFile {
                path: "/staging/test.txt".into(),
                mode: 0o644,
            })
            .op(Op::Unlink {
                path: "/staging/test.txt".into(),
            });
        let out = k.run_program(&prog);
        assert!(out.success, "{:?}", out.results);
        assert!(
            !k.event_log()
                .audit_records()
                .any(|r| r.syscall == Syscall::Creat),
            "setup leaves no events"
        );
    }

    #[test]
    fn open_follows_symlinks() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let fd = open_tmp(&mut k, pid, "/staging/real");
        k.sys_write(pid, fd, 24).unwrap();
        k.sys_close(pid, fd).unwrap();
        k.sys_symlink(pid, "/staging/real", "/staging/sym").unwrap();
        let fd = k
            .sys_open(pid, "/staging/sym", OpenFlags::RDONLY, 0)
            .unwrap() as i32;
        assert_eq!(k.sys_read(pid, fd, 100), Ok(24), "read through the symlink");
    }

    #[test]
    fn truncate_resets_size_for_readers() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let fd = open_tmp(&mut k, pid, "/staging/t");
        k.sys_write(pid, fd, 50).unwrap();
        k.sys_truncate(pid, "/staging/t", 8).unwrap();
        assert_eq!(k.sys_pread(pid, fd, 100, 0), Ok(8));
        k.sys_ftruncate(pid, fd, 0).unwrap();
        assert_eq!(k.sys_pread(pid, fd, 100, 0), Ok(0));
    }

    #[test]
    fn fork_shares_open_file_offsets() {
        let mut k = kernel();
        let shell = k.shell_pid();
        let fd = open_tmp(&mut k, shell, "/staging/t");
        k.sys_write(shell, fd, 10).unwrap();
        let child = k.sys_fork(shell).unwrap() as Pid;
        // The child's descriptor shares the description: reading from the
        // inherited fd starts at the shared offset (EOF).
        assert_eq!(k.sys_read(child, fd, 100), Ok(0));
        assert_eq!(k.sys_pread(child, fd, 100, 0), Ok(10));
        // Closing in the child does not close the parent's copy.
        k.sys_close(child, fd).unwrap();
        assert_eq!(k.sys_pread(shell, fd, 4, 0), Ok(4));
    }

    #[test]
    fn chmod_restricts_subsequent_opens() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let fd = open_tmp(&mut k, pid, "/staging/t");
        k.sys_close(pid, fd).unwrap();
        k.sys_chmod(pid, "/staging/t", 0o000).unwrap();
        let worker = k.sys_fork(pid).unwrap() as Pid;
        k.sys_setuid(worker, 1000).unwrap();
        assert_eq!(
            k.sys_open(worker, "/staging/t", OpenFlags::RDONLY, 0),
            Err(Errno::EACCES)
        );
    }

    #[test]
    fn chown_transfers_access() {
        let mut k = kernel();
        let pid = k.shell_pid();
        k.setup(|ns| {
            ns.create(
                "/staging/t",
                InodeKind::Regular,
                0o600,
                &Credentials::root(),
            )
            .unwrap();
        });
        k.sys_chown(pid, "/staging/t", 1000, 1000).unwrap();
        let worker = k.sys_fork(pid).unwrap() as Pid;
        k.sys_setuid(worker, 1000).unwrap();
        assert!(k.sys_open(worker, "/staging/t", OpenFlags::RDWR, 0).is_ok());
    }

    #[test]
    fn openat_and_variants_emit_distinct_syscall_names() {
        let mut k = kernel();
        let pid = k.shell_pid();
        k.sys_openat(pid, "/staging/x", OpenFlags::RDWR | OpenFlags::CREAT, 0o644)
            .unwrap();
        k.sys_linkat(pid, "/staging/x", "/staging/y").unwrap();
        k.sys_renameat(pid, "/staging/y", "/staging/z").unwrap();
        k.sys_unlinkat(pid, "/staging/z").unwrap();
        let names: Vec<&str> = k
            .event_log()
            .audit_records()
            .map(|r| r.syscall.name())
            .collect();
        for expected in ["openat", "linkat", "renameat", "unlinkat"] {
            assert!(names.contains(&expected), "{names:?}");
        }
    }

    #[test]
    fn open_excl_on_existing_file_fails() {
        let mut k = kernel();
        let pid = k.shell_pid();
        let fd = open_tmp(&mut k, pid, "/staging/t");
        k.sys_close(pid, fd).unwrap();
        assert_eq!(
            k.sys_open(
                pid,
                "/staging/t",
                OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::EXCL,
                0o644
            ),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn startup_noise_adds_extra_lib_access() {
        let mut quiet = Kernel::with_seed(1);
        let mut noisy = Kernel::with_seed(1);
        noisy.startup_noise = true;
        let prog = Program::new("creat").op(Op::Creat {
            path: "/staging/x".into(),
            mode: 0o644,
            fd_var: "id".into(),
        });
        quiet.run_program(&prog);
        noisy.run_program(&prog);
        assert!(noisy.event_log().len() > quiet.event_log().len());
    }
}
