//! Benchmark program DSL.
//!
//! ProvMark's benchmark programs are small C files whose target section is
//! guarded by `#ifdef TARGET` (paper §3). Here a program is a [`Program`]:
//! a sequence of [`Op`]s to execute plus [`SetupAction`]s that prepare the
//! staging directory before recording starts (mirroring the per-syscall
//! setup scripts). The foreground/background split is made one level up, in
//! `provmark-core`, by including or omitting the target ops.

use crate::fs::{InodeKind, Namespace};
use crate::process::Credentials;
use crate::types::{Gid, Mode, OpenFlags, Uid};

/// Staging-directory preparation performed before recording begins.
///
/// Matches the role of ProvMark's per-syscall setup scripts: "prepares a
/// staging directory in which they will be executed with any needed setup,
/// for example, first creating a file to run an unlink system call".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupAction {
    /// No preparation.
    Nothing,
    /// Create a regular file owned by the benchmark user.
    CreateFile {
        /// Absolute path.
        path: String,
        /// Permission bits.
        mode: Mode,
    },
    /// Create a regular file with explicit ownership (for permission
    /// failure scenarios, e.g. a root-owned unreadable file).
    CreateFileOwned {
        /// Absolute path.
        path: String,
        /// Permission bits.
        mode: Mode,
        /// Owner uid.
        uid: Uid,
        /// Owner gid.
        gid: Gid,
    },
    /// Create a directory.
    Mkdir {
        /// Absolute path.
        path: String,
        /// Permission bits.
        mode: Mode,
    },
}

impl SetupAction {
    /// Apply the action directly to the namespace (no events emitted).
    pub fn apply(&self, ns: &mut Namespace) {
        // Benchmarks run as root (as ProvMark does in its VMs).
        let bench_user = Credentials::root();
        match self {
            SetupAction::Nothing => {}
            SetupAction::CreateFile { path, mode } => {
                let _ = ns.create(path, InodeKind::Regular, *mode, &bench_user);
            }
            SetupAction::CreateFileOwned {
                path,
                mode,
                uid,
                gid,
            } => {
                let creds = Credentials {
                    uid: *uid,
                    euid: *uid,
                    suid: *uid,
                    gid: *gid,
                    egid: *gid,
                    sgid: *gid,
                };
                let _ = ns.create(path, InodeKind::Regular, *mode, &creds);
            }
            SetupAction::Mkdir { path, mode } => {
                let _ = ns.mkdir(path, *mode, &bench_user);
            }
        }
    }
}

/// One operation in a benchmark program. Most variants map 1:1 to a
/// syscall; file descriptors are threaded through named variables (the C
/// benchmarks' local variables, e.g. `int id = open(...)`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    Open {
        path: String,
        flags: OpenFlags,
        mode: Mode,
        fd_var: String,
    },
    Openat {
        path: String,
        flags: OpenFlags,
        mode: Mode,
        fd_var: String,
    },
    Creat {
        path: String,
        mode: Mode,
        fd_var: String,
    },
    Close {
        fd_var: String,
    },
    Dup {
        fd_var: String,
        new_var: String,
    },
    Dup2 {
        fd_var: String,
        newfd: i32,
        new_var: String,
    },
    Dup3 {
        fd_var: String,
        newfd: i32,
        new_var: String,
    },
    Read {
        fd_var: String,
        len: u64,
    },
    Pread {
        fd_var: String,
        len: u64,
        offset: u64,
    },
    Write {
        fd_var: String,
        len: u64,
    },
    Pwrite {
        fd_var: String,
        len: u64,
        offset: u64,
    },
    Link {
        old: String,
        new: String,
    },
    Linkat {
        old: String,
        new: String,
    },
    Symlink {
        target: String,
        linkpath: String,
    },
    Symlinkat {
        target: String,
        linkpath: String,
    },
    Mknod {
        path: String,
        mode: Mode,
    },
    Mknodat {
        path: String,
        mode: Mode,
    },
    Rename {
        old: String,
        new: String,
    },
    Renameat {
        old: String,
        new: String,
    },
    /// A `rename` that the benchmark *expects* to fail (Alice's failed-call
    /// scenario, paper §3.1): success criterion inverted.
    RenameExpectFailure {
        old: String,
        new: String,
    },
    /// Run the wrapped op expecting it to fail with an errno — the generic
    /// form for failure-scenario benchmarks ("handling other scenarios
    /// such as failure cases is straightforward", paper §4).
    MustFail(Box<Op>),
    Truncate {
        path: String,
        len: u64,
    },
    Ftruncate {
        fd_var: String,
        len: u64,
    },
    Unlink {
        path: String,
    },
    Unlinkat {
        path: String,
    },
    /// `fork` and run `child` ops in the child before the parent continues.
    /// The child exits implicitly when its ops finish.
    Fork {
        child: Vec<Op>,
    },
    /// `fork` a child that stays alive after its ops finish (no implicit
    /// exit) — the `kill` benchmark's victim.
    ForkAlive {
        child: Vec<Op>,
    },
    /// `vfork`: the parent suspends until the child exits or execs.
    Vfork {
        child: Vec<Op>,
    },
    /// Raw `clone` (no libc wrapper — invisible to OPUS).
    CloneProc {
        child: Vec<Op>,
    },
    Execve {
        path: String,
    },
    ExitOp {
        code: i32,
    },
    /// `kill` the most recently forked child with signal `sig`.
    KillLastChild {
        sig: i32,
    },
    Chmod {
        path: String,
        mode: Mode,
    },
    Fchmod {
        fd_var: String,
        mode: Mode,
    },
    Fchmodat {
        path: String,
        mode: Mode,
    },
    Chown {
        path: String,
        uid: Uid,
        gid: Gid,
    },
    Fchown {
        fd_var: String,
        uid: Uid,
        gid: Gid,
    },
    Fchownat {
        path: String,
        uid: Uid,
        gid: Gid,
    },
    Setuid {
        uid: Uid,
    },
    Setreuid {
        ruid: Option<Uid>,
        euid: Option<Uid>,
    },
    Setresuid {
        ruid: Option<Uid>,
        euid: Option<Uid>,
        suid: Option<Uid>,
    },
    Setgid {
        gid: Gid,
    },
    Setregid {
        rgid: Option<Gid>,
        egid: Option<Gid>,
    },
    Setresgid {
        rgid: Option<Gid>,
        egid: Option<Gid>,
        sgid: Option<Gid>,
    },
    PipeOp {
        read_var: String,
        write_var: String,
    },
    Pipe2Op {
        read_var: String,
        write_var: String,
    },
    Tee {
        in_var: String,
        out_var: String,
        len: u64,
    },
}

impl Op {
    /// `true` when the op is *supposed* to fail (failure-scenario
    /// benchmarks invert the success criterion).
    pub fn expects_failure(&self) -> bool {
        matches!(self, Op::RenameExpectFailure { .. } | Op::MustFail(_))
    }
}

/// A complete benchmark program: setup actions plus an op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (e.g. `"close"`), used in reports.
    pub name: String,
    /// Path of the simulated binary (`execve` target).
    pub exe_path: String,
    /// Staging preparation, applied before recording starts.
    pub setup: Vec<SetupAction>,
    /// The op sequence the benchmark process runs after startup.
    pub ops: Vec<Op>,
}

impl Program {
    /// Create an empty program named `name`, to be populated with the
    /// builder methods.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            exe_path: "/usr/local/bin/bench_fg".to_owned(),
            setup: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Set the simulated binary path (foreground vs background builds).
    pub fn exe(mut self, path: impl Into<String>) -> Self {
        self.exe_path = path.into();
        self
    }

    /// Add a setup action.
    pub fn setup(mut self, action: SetupAction) -> Self {
        self.setup.push(action);
        self
    }

    /// Append an op.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Append several ops.
    pub fn ops(mut self, ops: impl IntoIterator<Item = Op>) -> Self {
        self.ops.extend(ops);
        self
    }

    /// Number of ops (target size measure for the scalability figures).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program has no ops (a pure-background program).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = Program::new("open")
            .exe("/usr/local/bin/bench_bg")
            .setup(SetupAction::CreateFile {
                path: "/staging/t".into(),
                mode: 0o644,
            })
            .op(Op::Unlink {
                path: "/staging/t".into(),
            })
            .ops([Op::ExitOp { code: 0 }]);
        assert_eq!(p.name, "open");
        assert_eq!(p.exe_path, "/usr/local/bin/bench_bg");
        assert_eq!(p.setup.len(), 1);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn setup_actions_apply() {
        let mut ns = Namespace::new(10);
        ns.mkdir("/staging", 0o777, &Credentials::root()).unwrap();
        SetupAction::CreateFile {
            path: "/staging/f".into(),
            mode: 0o644,
        }
        .apply(&mut ns);
        assert!(ns.lookup("/staging/f").is_some());
        SetupAction::CreateFileOwned {
            path: "/staging/rootfile".into(),
            mode: 0o600,
            uid: 0,
            gid: 0,
        }
        .apply(&mut ns);
        let ino = ns.lookup("/staging/rootfile").unwrap();
        assert_eq!(ns.inode(ino).unwrap().uid, 0);
        SetupAction::Mkdir {
            path: "/staging/dir".into(),
            mode: 0o755,
        }
        .apply(&mut ns);
        assert!(ns.lookup("/staging/dir").is_some());
        SetupAction::Nothing.apply(&mut ns); // no-op, no panic
    }

    #[test]
    fn expected_failure_flag() {
        let ok = Op::Rename {
            old: "/a".into(),
            new: "/b".into(),
        };
        let fail = Op::RenameExpectFailure {
            old: "/a".into(),
            new: "/b".into(),
        };
        assert!(!ok.expects_failure());
        assert!(fail.expects_failure());
        let wrapped = Op::MustFail(Box::new(ok));
        assert!(wrapped.expects_failure());
    }
}
