use std::fmt;
use std::ops::BitOr;

/// Process identifier.
pub type Pid = u32;
/// User identifier.
pub type Uid = u32;
/// Group identifier.
pub type Gid = u32;
/// Inode number.
pub type Ino = u64;
/// File mode bits (permission bits only; the type is carried separately).
pub type Mode = u32;

/// `open(2)` flag set.
///
/// A small hand-rolled bitflag type (the `bitflags` crate is not among the
/// approved dependencies). Flags combine with [`OpenFlags::union`] or `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open read-only.
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Open write-only.
    pub const WRONLY: OpenFlags = OpenFlags(0o1);
    /// Open read-write.
    pub const RDWR: OpenFlags = OpenFlags(0o2);
    /// Create the file if it does not exist.
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    /// Fail if [`OpenFlags::CREAT`] and the file exists.
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    /// Truncate to zero length on open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    /// Append on every write.
    pub const APPEND: OpenFlags = OpenFlags(0o2000);
    /// Close-on-exec.
    pub const CLOEXEC: OpenFlags = OpenFlags(0o2000000);

    /// The raw bit value (matches Linux x86-64 encodings).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Combine two flag sets.
    pub const fn union(self, other: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | other.0)
    }

    /// `true` if every bit of `other` is set in `self`.
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// `true` if the access mode allows reading.
    pub fn readable(self) -> bool {
        self.0 & 0o3 != Self::WRONLY.0
    }

    /// `true` if the access mode allows writing.
    pub fn writable(self) -> bool {
        self.0 & 0o3 != 0
    }
}

impl BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        self.union(rhs)
    }
}

impl fmt::Display for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        match self.0 & 0o3 {
            0 => parts.push("O_RDONLY"),
            1 => parts.push("O_WRONLY"),
            _ => parts.push("O_RDWR"),
        }
        for (flag, name) in [
            (OpenFlags::CREAT, "O_CREAT"),
            (OpenFlags::EXCL, "O_EXCL"),
            (OpenFlags::TRUNC, "O_TRUNC"),
            (OpenFlags::APPEND, "O_APPEND"),
            (OpenFlags::CLOEXEC, "O_CLOEXEC"),
        ] {
            if self.contains(flag) && flag.0 != 0 {
                parts.push(name);
            }
        }
        f.write_str(&parts.join("|"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(OpenFlags::RDWR.readable());
        assert!(OpenFlags::RDWR.writable());
    }

    #[test]
    fn union_and_contains() {
        let f = OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::TRUNC;
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::TRUNC));
        assert!(!f.contains(OpenFlags::EXCL));
        assert!(f.writable() && f.readable());
    }

    #[test]
    fn display_lists_flags() {
        let f = OpenFlags::WRONLY | OpenFlags::CREAT;
        assert_eq!(f.to_string(), "O_WRONLY|O_CREAT");
        assert_eq!(OpenFlags::RDONLY.to_string(), "O_RDONLY");
    }
}
