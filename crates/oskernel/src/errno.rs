use std::fmt;

/// POSIX error numbers returned by failed syscalls.
///
/// Only the errors the simulated syscalls can actually produce are listed.
/// The numeric values match Linux on x86-64, so audit records carry
/// realistic `exit` fields (e.g. `-13` for `EACCES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::upper_case_acronyms)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// No such process.
    ESRCH,
    /// Bad file descriptor.
    EBADF,
    /// Permission denied.
    EACCES,
    /// File exists.
    EEXIST,
    /// Cross-device link (unused placeholder for realism).
    EXDEV,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Invalid argument.
    EINVAL,
    /// Too many open files.
    EMFILE,
    /// Broken pipe.
    EPIPE,
    /// Directory not empty.
    ENOTEMPTY,
}

impl Errno {
    /// The Linux numeric value of the error.
    pub fn code(self) -> i64 {
        match self {
            Errno::EPERM => 1,
            Errno::ENOENT => 2,
            Errno::ESRCH => 3,
            Errno::EBADF => 9,
            Errno::EACCES => 13,
            Errno::EEXIST => 17,
            Errno::EXDEV => 18,
            Errno::ENOTDIR => 20,
            Errno::EISDIR => 21,
            Errno::EINVAL => 22,
            Errno::EMFILE => 24,
            Errno::EPIPE => 32,
            Errno::ENOTEMPTY => 39,
        }
    }

    /// The symbolic name (`"EACCES"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EBADF => "EBADF",
            Errno::EACCES => "EACCES",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::EMFILE => "EMFILE",
            Errno::EPIPE => "EPIPE",
            Errno::ENOTEMPTY => "ENOTEMPTY",
        }
    }

    /// The value a syscall returns on this failure (`-code`).
    pub fn ret(self) -> i64 {
        -self.code()
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.code())
    }
}

impl std::error::Error for Errno {}

/// Result of a syscall: the (non-negative) return value or an error.
pub type SysResult = Result<i64, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_codes() {
        assert_eq!(Errno::EACCES.code(), 13);
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EACCES.ret(), -13);
    }

    #[test]
    fn display_has_name_and_code() {
        assert_eq!(Errno::EBADF.to_string(), "EBADF (9)");
    }
}
