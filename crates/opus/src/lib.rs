//! Simulated **OPUS** provenance recorder (paper §2, Figure 2).
//!
//! OPUS observes a process by interposing on dynamically-linked C library
//! calls and builds graphs following its *Provenance Versioning Model*
//! (PVM). The simulation consumes the [`oskernel`] libc-call stream and
//! reproduces the behaviours the paper reports for OPUS 0.1.0.26:
//!
//! - it sees **failed** calls — a failed `rename` produces the same
//!   structure as a successful one, with return value `-1` (§3.1, Alice);
//! - it is **blind to raw syscalls** that bypass libc, such as the
//!   benchmarks' direct `clone` (Table 2: `clone` empty/NR);
//! - reads and writes are **not recorded** in the default configuration,
//!   and neither are `fchmod`/`fchown`, which "only perform read/write
//!   activity and do not affect the process's file descriptor state" (§4.3);
//! - `dup` *is* recorded: one node for the call and one for the new
//!   resource, "not directly connected to each other, but connected to the
//!   same process node" (§4.1);
//! - process graphs are comparatively **large**: environments are recorded
//!   at exec/fork time, and `fork`/`vfork` copy descriptor state (§4.2);
//! - provenance is persisted to **Neo4j**, whose startup and query cost
//!   dominates ProvMark's transformation stage (Figures 6 and 9) —
//!   simulated here by the [`neo4jsim`] embedded store.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod neo4jsim;
mod recorder;

pub use neo4jsim::Neo4jStore;
pub use recorder::OpusRecorder;

/// Configuration surface of the simulated OPUS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpusConfig {
    /// Record read/write activity (off by default, Table 2 note NR).
    pub record_io: bool,
    /// Iterations of busy-work simulating JVM warmup + Neo4j startup each
    /// time the store is opened for a query session. The default is scaled
    /// so OPUS transformation visibly dominates, as in paper Figure 6,
    /// without minutes-long test runs.
    pub db_startup_iterations: u64,
}

impl Default for OpusConfig {
    fn default() -> Self {
        OpusConfig {
            record_io: false,
            db_startup_iterations: 2_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_baseline() {
        let c = OpusConfig::default();
        assert!(!c.record_io, "reads/writes unrecorded by default");
        assert!(c.db_startup_iterations > 0);
    }
}
