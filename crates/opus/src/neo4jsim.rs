//! An embedded, disk-backed graph store standing in for Neo4j.
//!
//! The real OPUS persists provenance into a Neo4j database; ProvMark's
//! transformation stage then runs Neo4j queries to extract the graph, and
//! the paper attributes OPUS's outsized stage times to "database startup
//! and access time … a one-time JVM warmup and database initialization
//! cost" (§5.1). This module reproduces that cost *shape* honestly:
//!
//! - graphs are serialized to JSON files on disk (real I/O per commit);
//! - every query session pays a configurable warmup (real computation,
//!   not a sleep) before data can be read back and re-parsed.
//!
//! Absolute durations are scaled down from the paper's minutes to
//! milliseconds; EXPERIMENTS.md records the scaling.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use provgraph::PropertyGraph;

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Burn CPU deterministically; returns a checksum the compiler cannot
/// discard. Stands in for JVM warmup + database initialization.
pub fn warmup_work(iterations: u64) -> u64 {
    let mut acc: u64 = 0x243F6A8885A308D3;
    for i in 0..iterations {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i | 1)
            .rotate_left((i % 31) as u32);
    }
    acc
}

/// A disk-backed store holding one provenance graph.
#[derive(Debug)]
pub struct Neo4jStore {
    dir: PathBuf,
    /// Warmup iterations paid on every [`Neo4jStore::export`].
    pub startup_iterations: u64,
    /// Checksum accumulated from warmups (observable side effect).
    pub warmup_checksum: u64,
}

impl Neo4jStore {
    /// Create a fresh store in a unique subdirectory of the system temp
    /// directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory.
    pub fn create_temp(startup_iterations: u64) -> io::Result<Self> {
        let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("provmark-neo4jsim-{}-{n}", std::process::id()));
        Self::create_at(&dir, startup_iterations)
    }

    /// Create a fresh store at `dir` (wiped if it exists).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create_at(dir: &Path, startup_iterations: u64) -> io::Result<Self> {
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::create_dir_all(dir)?;
        Ok(Neo4jStore {
            dir: dir.to_path_buf(),
            startup_iterations,
            warmup_checksum: 0,
        })
    }

    /// Path of the store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn data_file(&self) -> PathBuf {
        self.dir.join("graph.json")
    }

    /// Persist a graph into the store (OPUS's commit path).
    ///
    /// # Errors
    ///
    /// Propagates serialization or filesystem errors.
    pub fn ingest(&self, graph: &PropertyGraph) -> io::Result<()> {
        let json = serde_json::to_string(graph)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        // Durable + atomic: the store is the simulated database's only
        // persistent state, and `export` must never observe a torn
        // commit from a crashed ingest.
        provtrace::write_bytes_durable(&self.data_file(), json.as_bytes())
    }

    /// Open a query session and read the graph back (ProvMark's
    /// transformation path). Pays the simulated startup cost first.
    ///
    /// # Errors
    ///
    /// Fails when the store is empty or the on-disk data is corrupt.
    pub fn export(&mut self) -> io::Result<PropertyGraph> {
        self.warmup_checksum ^= warmup_work(self.startup_iterations);
        let json = fs::read_to_string(self.data_file())?;
        let mut graph: PropertyGraph = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        graph.rebuild_indices();
        Ok(graph)
    }
}

impl Drop for Neo4jStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node("n1", "Process").unwrap();
        g.add_node("n2", "Global").unwrap();
        g.add_edge("e1", "n1", "n2", "EXECUTED").unwrap();
        g.set_node_property("n2", "path", "/tmp/x").unwrap();
        g
    }

    #[test]
    fn ingest_export_roundtrip() {
        let mut store = Neo4jStore::create_temp(10).unwrap();
        let g = toy();
        store.ingest(&g).unwrap();
        let g2 = store.export().unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn export_pays_warmup() {
        let mut store = Neo4jStore::create_temp(1000).unwrap();
        store.ingest(&toy()).unwrap();
        assert_eq!(store.warmup_checksum, 0);
        store.export().unwrap();
        assert_ne!(store.warmup_checksum, 0, "warmup must actually run");
    }

    #[test]
    fn export_without_ingest_fails() {
        let mut store = Neo4jStore::create_temp(0).unwrap();
        assert!(store.export().is_err());
    }

    #[test]
    fn store_dir_cleaned_on_drop() {
        let dir;
        {
            let store = Neo4jStore::create_temp(0).unwrap();
            dir = store.dir().to_path_buf();
            store.ingest(&toy()).unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "Drop must remove the store directory");
    }

    #[test]
    fn create_at_wipes_existing() {
        let dir = std::env::temp_dir().join(format!("provmark-neo4j-wipe-{}", std::process::id()));
        {
            let store = Neo4jStore::create_at(&dir, 0).unwrap();
            store.ingest(&toy()).unwrap();
        }
        // Recreate over the (now dropped+deleted) path, then over existing.
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("stale"), b"x").unwrap();
        let store = Neo4jStore::create_at(&dir, 0).unwrap();
        assert!(!dir.join("stale").exists());
        drop(store);
    }

    #[test]
    fn warmup_is_deterministic_and_scales() {
        assert_eq!(warmup_work(1000), warmup_work(1000));
        assert_ne!(warmup_work(1000), warmup_work(1001));
    }
}
