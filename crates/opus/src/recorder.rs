//! The OPUS libc-interposition state machine (Provenance Versioning Model).

use std::collections::BTreeMap;

use oskernel::{EventLog, LibcCall, Pid};
use provgraph::PropertyGraph;

use crate::neo4jsim::Neo4jStore;
use crate::OpusConfig;

/// The simulated OPUS recorder.
///
/// Feed it a kernel [`EventLog`]; it consumes the libc layer and produces a
/// PVM graph: `Process` nodes, per-call `Event` nodes, `Local` descriptor
/// resources, and versioned file identities (`Version` → `Global`).
#[derive(Debug, Clone, Default)]
pub struct OpusRecorder {
    /// Recorder configuration.
    pub config: OpusConfig,
}

impl OpusRecorder {
    /// Create a recorder with the given configuration.
    pub fn new(config: OpusConfig) -> Self {
        OpusRecorder { config }
    }

    /// Create a recorder with the baseline configuration.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// `true` when OPUS's interposition library wraps `func`.
    ///
    /// Calls outside the wrapper set are invisible (Table 2, note NR):
    /// `mknodat`, `setres[ug]id`, `fchmod`, `fchown`, `tee`, `kill` — and
    /// raw `clone` never even reaches libc.
    pub fn is_wrapped(&self, func: &str) -> bool {
        !matches!(
            func,
            "mknodat" | "setresuid" | "setresgid" | "fchmod" | "fchown" | "tee" | "kill" | "exit"
        )
    }

    /// Consume the libc stream into an in-memory PVM graph.
    pub fn record_graph(&self, log: &EventLog) -> PropertyGraph {
        let mut b = Builder::new(&self.config);
        for call in log.libc_calls() {
            if self.is_wrapped(&call.func) {
                b.handle(call);
            }
        }
        b.graph
    }

    /// Consume the libc stream and persist the graph into a Neo4j-style
    /// store (OPUS's normal operation; ProvMark later queries it back).
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors.
    pub fn record_to_store(&self, log: &EventLog, store: &Neo4jStore) -> std::io::Result<()> {
        store.ingest(&self.record_graph(log))
    }
}

struct Builder<'a> {
    config: &'a OpusConfig,
    graph: PropertyGraph,
    /// pid → current process node id.
    proc_node: BTreeMap<Pid, String>,
    /// pid → environment (inherited on fork, replaced on exec).
    pid_env: BTreeMap<Pid, BTreeMap<String, String>>,
    /// (pid, fd) → local resource node id.
    fd_local: BTreeMap<(Pid, i32), String>,
    /// local node id → version node id it is bound to.
    local_version: BTreeMap<String, String>,
    /// path → global node id.
    globals: BTreeMap<String, String>,
    /// path → current version node id.
    versions: BTreeMap<String, String>,
    counters: BTreeMap<&'static str, u32>,
}

impl<'a> Builder<'a> {
    fn new(config: &'a OpusConfig) -> Self {
        Builder {
            config,
            graph: PropertyGraph::new(),
            proc_node: BTreeMap::new(),
            pid_env: BTreeMap::new(),
            fd_local: BTreeMap::new(),
            local_version: BTreeMap::new(),
            globals: BTreeMap::new(),
            versions: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    fn fresh(&mut self, prefix: &'static str) -> String {
        let c = self.counters.entry(prefix).or_insert(0);
        *c += 1;
        format!("{prefix}{c}")
    }

    fn edge(&mut self, src: &str, tgt: &str, label: &str, time: u64) {
        let id = self.fresh("e");
        self.graph
            .add_edge(id.clone(), src, tgt, label)
            .expect("endpoints exist");
        self.graph
            .set_edge_property(&id, "time", time.to_string())
            .expect("edge exists");
    }

    fn ensure_process(&mut self, call: &LibcCall) -> String {
        if let Some(id) = self.proc_node.get(&call.pid) {
            return id.clone();
        }
        let id = format!("proc{}", call.pid);
        self.graph
            .add_node(id.clone(), "Process")
            .expect("fresh process");
        self.graph
            .set_node_property(&id, "pid", call.pid.to_string())
            .expect("exists");
        self.graph
            .set_node_property(&id, "firstSeen", call.time.to_string()) // volatile
            .expect("exists");
        if let Some(env) = self.pid_env.get(&call.pid).cloned() {
            for (k, v) in env {
                self.graph
                    .set_node_property(&id, format!("env:{k}"), v)
                    .expect("exists");
            }
        }
        self.proc_node.insert(call.pid, id.clone());
        id
    }

    /// Event node for the call, linked to the acting process.
    fn event(&mut self, call: &LibcCall) -> String {
        let proc_id = self.ensure_process(call);
        let id = self.fresh("ev");
        self.graph
            .add_node(id.clone(), "Event")
            .expect("fresh event");
        self.graph
            .set_node_property(&id, "function", call.func.clone())
            .expect("exists");
        self.graph
            .set_node_property(&id, "ret", call.ret.to_string())
            .expect("exists");
        if let Some(e) = call.errno {
            self.graph
                .set_node_property(&id, "errno", e.name())
                .expect("exists");
        }
        self.graph
            .set_node_property(&id, "seq", call.seq.to_string()) // volatile
            .expect("exists");
        self.edge(&proc_id, &id, "EXECUTED", call.time);
        id
    }

    fn ensure_global(&mut self, path: &str) -> String {
        if let Some(id) = self.globals.get(path) {
            return id.clone();
        }
        let id = self.fresh("glob");
        self.graph
            .add_node(id.clone(), "Global")
            .expect("fresh global");
        self.graph
            .set_node_property(&id, "path", path)
            .expect("exists");
        self.globals.insert(path.to_owned(), id.clone());
        id
    }

    /// Current version node for `path`, creating version 1 if absent.
    fn ensure_version(&mut self, path: &str, time: u64) -> String {
        if let Some(id) = self.versions.get(path) {
            return id.clone();
        }
        let glob = self.ensure_global(path);
        let id = self.fresh("ver");
        self.graph
            .add_node(id.clone(), "Version")
            .expect("fresh version");
        self.edge(&id, &glob, "VERSION_OF", time);
        self.versions.insert(path.to_owned(), id.clone());
        id
    }

    /// New version derived from the current one (PVM versioning step).
    fn new_version(&mut self, path: &str, time: u64) -> String {
        let old = self.ensure_version(path, time);
        let glob = self.ensure_global(path);
        let id = self.fresh("ver");
        self.graph
            .add_node(id.clone(), "Version")
            .expect("fresh version");
        self.edge(&id, &glob, "VERSION_OF", time);
        self.edge(&id, &old, "DERIVED_FROM", time);
        self.versions.insert(path.to_owned(), id.clone());
        id
    }

    fn new_local(&mut self, call: &LibcCall, fd: i32) -> String {
        let proc_id = self.ensure_process(call);
        let id = self.fresh("loc");
        self.graph
            .add_node(id.clone(), "Local")
            .expect("fresh local");
        self.graph
            .set_node_property(&id, "fd", fd.to_string())
            .expect("exists");
        self.edge(&proc_id, &id, "OWNS", call.time);
        self.fd_local.insert((call.pid, fd), id.clone());
        id
    }

    fn handle(&mut self, call: &LibcCall) {
        match call.func.as_str() {
            "open" | "openat" | "creat" => self.handle_open(call),
            "close" => self.handle_close(call),
            "dup" | "dup2" | "dup3" => self.handle_dup(call),
            "read" | "pread" | "write" | "pwrite" => self.handle_io(call),
            "link" | "linkat" | "symlink" | "symlinkat" => self.handle_link(call),
            "mknod" => self.handle_mknod(call),
            "rename" | "renameat" => self.handle_rename(call),
            "truncate" => self.handle_truncate_path(call),
            "ftruncate" => self.handle_ftruncate(call),
            "unlink" | "unlinkat" => self.handle_unlink(call),
            "chmod" | "fchmodat" | "chown" | "fchownat" => self.handle_attr(call),
            "setuid" | "setreuid" | "setgid" | "setregid" => {
                let _ = self.event(call);
            }
            "fork" | "vfork" => self.handle_fork(call),
            "execve" => self.handle_exec(call),
            "pipe" | "pipe2" => self.handle_pipe(call),
            _ => {}
        }
    }

    /// open: four new nodes — event, local, and "two nodes corresponding
    /// to the file" (version + global), paper §4.1.
    fn handle_open(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(path) = call.args.first().cloned() else {
            return;
        };
        if call.ret >= 0 {
            let fd = call.ret as i32;
            let local = self.new_local(call, fd);
            self.edge(&ev, &local, "RESULT", call.time);
            let ver = self.ensure_version(&path, call.time);
            self.edge(&local, &ver, "BOUND_TO", call.time);
            self.local_version.insert(local, ver);
        } else {
            // Failed calls still leave structure (paper §3.1, Alice).
            let glob = self.ensure_global(&path);
            self.edge(&ev, &glob, "FAILED_ON", call.time);
        }
    }

    fn handle_close(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(fd) = call.args.first().and_then(|a| a.parse::<i32>().ok()) else {
            return;
        };
        if let Some(local) = self.fd_local.remove(&(call.pid, fd)) {
            self.edge(&ev, &local, "CLOSES", call.time);
        }
    }

    /// dup: the call event and the new resource are two nodes "not directly
    /// connected to each other, but connected to the same process node"
    /// (paper §4.1).
    fn handle_dup(&mut self, call: &LibcCall) {
        let _ev = self.event(call);
        if call.ret >= 0 {
            let new_fd = call.ret as i32;
            let local = self.new_local(call, new_fd);
            // Share the version binding of the duplicated descriptor.
            if let Some(old_fd) = call.args.first().and_then(|a| a.parse::<i32>().ok()) {
                if let Some(old_local) = self.fd_local.get(&(call.pid, old_fd)).cloned() {
                    if let Some(ver) = self.local_version.get(&old_local).cloned() {
                        self.local_version.insert(local, ver);
                    }
                }
            }
        }
    }

    fn handle_io(&mut self, call: &LibcCall) {
        if !self.config.record_io {
            return; // default configuration: no read/write records (NR)
        }
        let ev = self.event(call);
        if let Some(fd) = call.args.first().and_then(|a| a.parse::<i32>().ok()) {
            if let Some(local) = self.fd_local.get(&(call.pid, fd)).cloned() {
                self.edge(&ev, &local, "TOUCHES", call.time);
            }
        }
    }

    fn handle_link(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let (Some(old), Some(new)) = (call.args.first().cloned(), call.args.get(1).cloned()) else {
            return;
        };
        let old_ver = self.ensure_version(&old, call.time);
        let glob_new = self.ensure_global(&new);
        let new_ver = self.fresh("ver");
        self.graph
            .add_node(new_ver.clone(), "Version")
            .expect("fresh version");
        self.edge(&new_ver, &glob_new, "VERSION_OF", call.time);
        self.edge(&new_ver, &old_ver, "DERIVED_FROM", call.time);
        self.edge(&ev, &new_ver, "CREATES", call.time);
        self.versions.insert(new, new_ver);
    }

    fn handle_mknod(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(path) = call.args.first().cloned() else {
            return;
        };
        if call.ret == 0 {
            let ver = self.ensure_version(&path, call.time);
            self.edge(&ev, &ver, "CREATES", call.time);
        } else {
            let glob = self.ensure_global(&path);
            self.edge(&ev, &glob, "FAILED_ON", call.time);
        }
    }

    /// rename: same structure whether it succeeded or failed; the return
    /// value property distinguishes them (paper §3.1).
    fn handle_rename(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let (Some(old), Some(new)) = (call.args.first().cloned(), call.args.get(1).cloned()) else {
            return;
        };
        let old_ver = self.ensure_version(&old, call.time);
        let glob_new = self.ensure_global(&new);
        let new_ver = self.fresh("ver");
        self.graph
            .add_node(new_ver.clone(), "Version")
            .expect("fresh version");
        self.edge(&new_ver, &glob_new, "VERSION_OF", call.time);
        self.edge(&new_ver, &old_ver, "DERIVED_FROM", call.time);
        self.edge(&ev, &old_ver, "READS", call.time);
        self.edge(&ev, &new_ver, "CREATES", call.time);
        if call.ret == 0 {
            self.versions.insert(new, new_ver);
            self.versions.remove(&old);
        }
    }

    fn handle_truncate_path(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(path) = call.args.first().cloned() else {
            return;
        };
        if call.ret == 0 {
            let ver = self.new_version(&path, call.time);
            self.edge(&ev, &ver, "TRUNCATES", call.time);
        } else {
            let glob = self.ensure_global(&path);
            self.edge(&ev, &glob, "FAILED_ON", call.time);
        }
    }

    fn handle_ftruncate(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(fd) = call.args.first().and_then(|a| a.parse::<i32>().ok()) else {
            return;
        };
        if let Some(local) = self.fd_local.get(&(call.pid, fd)).cloned() {
            if let Some(old_ver) = self.local_version.get(&local).cloned() {
                let new_ver = self.fresh("ver");
                self.graph
                    .add_node(new_ver.clone(), "Version")
                    .expect("fresh version");
                self.edge(&new_ver, &old_ver, "DERIVED_FROM", call.time);
                self.edge(&ev, &new_ver, "TRUNCATES", call.time);
                self.local_version.insert(local, new_ver);
            }
        }
    }

    fn handle_unlink(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(path) = call.args.first().cloned() else {
            return;
        };
        let ver = self.ensure_version(&path, call.time);
        self.edge(&ev, &ver, "DELETES", call.time);
        if call.ret == 0 {
            self.versions.remove(&path);
        }
    }

    fn handle_attr(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let Some(path) = call.args.first().cloned() else {
            return;
        };
        if call.ret == 0 {
            let ver = self.new_version(&path, call.time);
            self.edge(&ev, &ver, "SETS_ATTR", call.time);
        } else {
            let glob = self.ensure_global(&path);
            self.edge(&ev, &glob, "FAILED_ON", call.time);
        }
    }

    /// fork/vfork graphs are comparatively large for OPUS (paper §4.2):
    /// the child's process node, its environment node, and duplicated
    /// descriptor resources all appear.
    fn handle_fork(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        if call.ret < 0 {
            return;
        }
        let child = call.ret as Pid;
        // Child inherits the parent's environment.
        let parent_env = self.pid_env.get(&call.pid).cloned().unwrap_or_default();
        self.pid_env.insert(child, parent_env.clone());
        let child_id = format!("proc{child}");
        if !self.graph.has_node(&child_id) {
            self.graph
                .add_node(child_id.clone(), "Process")
                .expect("fresh child");
            self.graph
                .set_node_property(&child_id, "pid", child.to_string())
                .expect("exists");
            self.graph
                .set_node_property(&child_id, "firstSeen", call.time.to_string())
                .expect("exists");
            for (k, v) in &parent_env {
                self.graph
                    .set_node_property(&child_id, format!("env:{k}"), v.clone())
                    .expect("exists");
            }
            self.proc_node.insert(child, child_id.clone());
        }
        self.edge(&ev, &child_id, "FORKS", call.time);
        // Environment node (OPUS records environments, §5.1).
        let env_node = self.fresh("env");
        self.graph
            .add_node(env_node.clone(), "Env")
            .expect("fresh env node");
        for (k, v) in &parent_env {
            self.graph
                .set_node_property(&env_node, k.clone(), v.clone())
                .expect("exists");
        }
        self.edge(&child_id, &env_node, "HAS_ENV", call.time);
        // Duplicate descriptor resources for the child.
        let inherited: Vec<((Pid, i32), String)> = self
            .fd_local
            .iter()
            .filter(|((p, _), _)| *p == call.pid)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        for ((_, fd), parent_local) in inherited {
            let mut child_call = call.clone();
            child_call.pid = child;
            let local = self.new_local(&child_call, fd);
            if let Some(ver) = self.local_version.get(&parent_local).cloned() {
                self.local_version.insert(local, ver);
            }
        }
    }

    /// execve: "just a few nodes" (paper §4.2) — the event and the new
    /// process incarnation carrying the recorded environment.
    fn handle_exec(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        let old_proc = self.ensure_process(call);
        if call.ret != 0 {
            return;
        }
        if let Some(env) = &call.env {
            self.pid_env.insert(call.pid, env.clone());
        }
        let new_id = self.fresh("procx");
        self.graph
            .add_node(new_id.clone(), "Process")
            .expect("fresh incarnation");
        self.graph
            .set_node_property(&new_id, "pid", call.pid.to_string())
            .expect("exists");
        if let Some(path) = call.args.first() {
            self.graph
                .set_node_property(&new_id, "binary", path.clone())
                .expect("exists");
        }
        self.graph
            .set_node_property(&new_id, "firstSeen", call.time.to_string())
            .expect("exists");
        for (k, v) in self.pid_env.get(&call.pid).cloned().unwrap_or_default() {
            self.graph
                .set_node_property(&new_id, format!("env:{k}"), v)
                .expect("exists");
        }
        self.edge(&new_id, &old_proc, "EXEC", call.time);
        self.edge(&ev, &new_id, "CREATES", call.time);
        self.proc_node.insert(call.pid, new_id);
    }

    fn handle_pipe(&mut self, call: &LibcCall) {
        let ev = self.event(call);
        if call.ret != 0 {
            return;
        }
        let (Some(rfd), Some(wfd)) = (
            call.args.first().and_then(|a| a.parse::<i32>().ok()),
            call.args.get(1).and_then(|a| a.parse::<i32>().ok()),
        ) else {
            return;
        };
        let pipe_path = format!("pipe:{}", self.fresh("pipeid"));
        let ver = self.ensure_version(&pipe_path, call.time);
        for fd in [rfd, wfd] {
            let local = self.new_local(call, fd);
            self.edge(&ev, &local, "RESULT", call.time);
            self.edge(&local, &ver, "BOUND_TO", call.time);
            self.local_version.insert(local, ver.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::program::{Op, Program, SetupAction};
    use oskernel::{Kernel, OpenFlags};

    fn run(ops: Vec<Op>, setup: Vec<SetupAction>) -> PropertyGraph {
        run_with(ops, setup, OpusConfig::default())
    }

    fn run_with(ops: Vec<Op>, setup: Vec<SetupAction>, config: OpusConfig) -> PropertyGraph {
        let mut prog = Program::new("test");
        for s in setup {
            prog = prog.setup(s);
        }
        prog = prog.ops(ops);
        let mut kernel = Kernel::with_seed(1);
        kernel.run_program(&prog);
        OpusRecorder::new(config).record_graph(kernel.event_log())
    }

    fn events_named<'a>(g: &'a PropertyGraph, func: &str) -> Vec<&'a provgraph::NodeData> {
        g.nodes()
            .filter(|n| {
                n.label.as_str() == "Event"
                    && n.props.get("function").map(String::as_str) == Some(func)
            })
            .collect()
    }

    #[test]
    fn open_creates_four_nodes() {
        let before = run(vec![], vec![]);
        let after = run(
            vec![Op::Open {
                path: "t".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            }],
            vec![],
        );
        assert_eq!(
            after.node_count() - before.node_count(),
            4,
            "event + local + version + global (paper §4.1)"
        );
    }

    #[test]
    fn failed_rename_same_structure_different_ret() {
        let setup = vec![SetupAction::CreateFile {
            path: "/staging/mine".into(),
            mode: 0o644,
        }];
        let ok = run(
            vec![Op::Rename {
                old: "mine".into(),
                new: "theirs".into(),
            }],
            setup.clone(),
        );
        let failed = run(
            vec![
                Op::Setuid { uid: 1000 },
                Op::RenameExpectFailure {
                    old: "mine".into(),
                    new: "/etc/passwd".into(),
                },
            ],
            setup,
        );
        let ok_ev = events_named(&ok, "rename")[0];
        let failed_ev = events_named(&failed, "rename")[0];
        assert_eq!(ok_ev.props.get("ret").map(String::as_str), Some("0"));
        assert_eq!(failed_ev.props.get("ret").map(String::as_str), Some("-13"));
        // Same local structure around the event: count edges incident to it.
        let deg = |g: &PropertyGraph, id: &str| g.out_degree(id) + g.in_degree(id);
        assert_eq!(deg(&ok, &ok_ev.id), deg(&failed, &failed_ev.id));
    }

    #[test]
    fn clone_is_invisible() {
        let base = run(vec![], vec![]);
        let cloned = run(vec![Op::CloneProc { child: vec![] }], vec![]);
        // Raw clone bypasses libc; the child's implicit exit is also
        // unwrapped. Only difference could come from child activity.
        assert_eq!(base.size(), cloned.size(), "clone must leave no trace (NR)");
    }

    #[test]
    fn fork_is_visible_and_large() {
        let base = run(vec![], vec![]);
        let forked = run(vec![Op::Fork { child: vec![] }], vec![]);
        let added = forked.node_count() - base.node_count();
        assert!(added >= 3, "event + child process + env node, got {added}");
        assert!(forked.nodes().any(|n| n.label.as_str() == "Env"));
    }

    #[test]
    fn dup_event_and_resource_not_directly_connected() {
        let ops = vec![
            Op::Open {
                path: "t".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            },
            Op::Dup {
                fd_var: "id".into(),
                new_var: "d".into(),
            },
        ];
        let g = run(ops, vec![]);
        let ev = events_named(&g, "dup")[0];
        // The new local is the one owned by the process after the dup event.
        let locals: Vec<_> = g.nodes().filter(|n| n.label.as_str() == "Local").collect();
        let new_local = locals.last().unwrap();
        assert!(
            !g.edges().any(|e| (e.src == ev.id && e.tgt == new_local.id)
                || (e.src == new_local.id && e.tgt == ev.id)),
            "dup's two components must not be directly connected (§4.1)"
        );
        // Both connect to the same process node.
        let proc_id = g
            .edges()
            .find(|e| e.tgt == ev.id && e.label.as_str() == "EXECUTED")
            .map(|e| e.src.clone())
            .unwrap();
        assert!(g
            .edges()
            .any(|e| e.src == proc_id && e.tgt == new_local.id && e.label.as_str() == "OWNS"));
    }

    #[test]
    fn reads_and_writes_unrecorded_by_default() {
        let ops = |extra: Vec<Op>| {
            let mut v = vec![Op::Open {
                path: "t".into(),
                flags: OpenFlags::RDWR.union(OpenFlags::CREAT),
                mode: 0o644,
                fd_var: "id".into(),
            }];
            v.extend(extra);
            v
        };
        let base = run(ops(vec![]), vec![]);
        let with_io = run(
            ops(vec![
                Op::Write {
                    fd_var: "id".into(),
                    len: 10,
                },
                Op::Read {
                    fd_var: "id".into(),
                    len: 10,
                },
            ]),
            vec![],
        );
        assert_eq!(base.size(), with_io.size(), "default config drops IO (NR)");
        let recorded = run_with(
            ops(vec![Op::Write {
                fd_var: "id".into(),
                len: 10,
            }]),
            vec![],
            OpusConfig {
                record_io: true,
                ..OpusConfig::default()
            },
        );
        assert!(recorded.size() > base.size());
    }

    #[test]
    fn fchmod_and_fchown_unwrapped_but_chmod_recorded() {
        let setup = vec![SetupAction::CreateFile {
            path: "/staging/t".into(),
            mode: 0o644,
        }];
        let base = run(vec![], setup.clone());
        let chmod = run(
            vec![Op::Chmod {
                path: "t".into(),
                mode: 0o600,
            }],
            setup.clone(),
        );
        assert!(chmod.size() > base.size());
        let open_then = |extra: Op| {
            vec![
                Op::Open {
                    path: "t".into(),
                    flags: OpenFlags::RDWR,
                    mode: 0,
                    fd_var: "id".into(),
                },
                extra,
            ]
        };
        let with_open = run(
            open_then(Op::Close {
                fd_var: "id".into(),
            }),
            setup.clone(),
        );
        let fchmod = run(
            vec![
                Op::Open {
                    path: "t".into(),
                    flags: OpenFlags::RDWR,
                    mode: 0,
                    fd_var: "id".into(),
                },
                Op::Fchmod {
                    fd_var: "id".into(),
                    mode: 0o600,
                },
                Op::Close {
                    fd_var: "id".into(),
                },
            ],
            setup,
        );
        assert_eq!(fchmod.size(), with_open.size(), "fchmod unwrapped (NR)");
    }

    #[test]
    fn mknod_recorded_mknodat_not() {
        let base = run(vec![], vec![]);
        let mknod = run(
            vec![Op::Mknod {
                path: "fifo".into(),
                mode: 0o644,
            }],
            vec![],
        );
        assert!(mknod.size() > base.size());
        let mknodat = run(
            vec![Op::Mknodat {
                path: "fifo".into(),
                mode: 0o644,
            }],
            vec![],
        );
        assert_eq!(mknodat.size(), base.size(), "mknodat unwrapped (NR)");
    }

    #[test]
    fn pipe_recorded_tee_not() {
        let base = run(vec![], vec![]);
        let pipe = run(
            vec![Op::PipeOp {
                read_var: "r".into(),
                write_var: "w".into(),
            }],
            vec![],
        );
        assert!(pipe.size() > base.size());
        assert_eq!(events_named(&pipe, "pipe").len(), 1);
        let tee = run(
            vec![
                Op::PipeOp {
                    read_var: "r1".into(),
                    write_var: "w1".into(),
                },
                Op::Pipe2Op {
                    read_var: "r2".into(),
                    write_var: "w2".into(),
                },
                Op::Write {
                    fd_var: "w1".into(),
                    len: 4,
                },
                Op::Tee {
                    in_var: "r1".into(),
                    out_var: "w2".into(),
                    len: 4,
                },
            ],
            vec![],
        );
        assert!(events_named(&tee, "tee").is_empty(), "tee unwrapped (NR)");
    }

    #[test]
    fn setres_family_unwrapped() {
        let base = run(vec![], vec![]);
        let g = run(
            vec![Op::Setresuid {
                ruid: Some(500),
                euid: Some(500),
                suid: Some(500),
            }],
            vec![],
        );
        assert_eq!(g.size(), base.size(), "setresuid unwrapped (NR)");
        let g2 = run(vec![Op::Setuid { uid: 500 }], vec![]);
        assert!(g2.size() > base.size(), "setuid wrapped (ok)");
    }

    #[test]
    fn environment_recorded_at_exec() {
        let g = run(vec![], vec![]);
        let exec_proc = g
            .nodes()
            .find(|n| n.props.contains_key("binary"))
            .expect("exec incarnation exists");
        assert!(
            exec_proc.props.keys().any(|k| k.starts_with("env:")),
            "environment variables recorded (paper §5.1): {:?}",
            exec_proc.props
        );
    }

    #[test]
    fn store_roundtrip_through_neo4jsim() {
        let ops = vec![Op::Creat {
            path: "t".into(),
            mode: 0o644,
            fd_var: "id".into(),
        }];
        let mut prog = Program::new("creat");
        prog = prog.ops(ops);
        let mut kernel = Kernel::with_seed(1);
        kernel.run_program(&prog);
        let rec = OpusRecorder::baseline();
        let mut store = Neo4jStore::create_temp(100).unwrap();
        rec.record_to_store(kernel.event_log(), &store).unwrap();
        let exported = store.export().unwrap();
        assert_eq!(exported, rec.record_graph(kernel.event_log()));
    }

    #[test]
    fn opus_graphs_larger_than_minimum() {
        // Startup alone (fork + exec + loader) must produce a rich graph:
        // OPUS is the most verbose of the three recorders (paper §5.1).
        let g = run(vec![], vec![]);
        assert!(g.node_count() >= 10, "got {}", g.node_count());
        assert!(g.property_count() >= 20);
    }
}
