//! Rendering of the clingo (Answer Set Programming) encodings.
//!
//! ProvMark's original implementation ships the matching problems to the
//! `clingo` solver as logic programs (paper Listings 3 and 4). Our native
//! engine solves the same problems directly, but this module reproduces the
//! exact program text so that:
//!
//! - the encodings remain inspectable documentation of the semantics, and
//! - anyone with a clingo binary can differentially test the native solver
//!   against the reference (`clingo <(echo "$program")`).
//!
//! Graph facts use the fixed graph ids `1` and `2`, matching the listings
//! (`n1`, `e1`, `p1` vs `n2`, `e2`, `p2`).

use provgraph::{datalog, PropertyGraph};

/// Paper Listing 3: graph similarity (shape isomorphism) specification.
pub const SIMILARITY_SPEC: &str = "\
{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : n1(X,_)} = 1 :- n2(Y,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
{h(X,Y) : e1(X,_,_,_)} = 1 :- e2(Y,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- n2(Y,L), h(X,Y), not n1(X,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e2(E2,_,_,L), h(E1,E2), not e1(E1,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
";

/// Paper Listing 4: approximate subgraph isomorphism with property-mismatch
/// cost minimization.
pub const SUBGRAPH_SPEC: &str = "\
{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
cost(X,K,0) :- p1(X,K,V), h(X,Y), p2(Y,K,V).
cost(X,K,1) :- p1(X,K,V), h(X,Y), p2(Y,K,W), V <> W.
cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).
#minimize { PC,X,K : cost(X,K,PC) }.
";

/// Render the graph facts for a matching instance: `g1` under graph id `1`
/// and `g2` under graph id `2`.
pub fn render_facts(g1: &PropertyGraph, g2: &PropertyGraph) -> String {
    let mut out = String::new();
    out.push_str("% graph 1 facts\n");
    out.push_str(&datalog::to_canonical_datalog(g1, "1"));
    out.push_str("% graph 2 facts\n");
    out.push_str(&datalog::to_canonical_datalog(g2, "2"));
    out
}

/// Render the complete clingo program for the similarity problem
/// (Listing 3 plus graph facts).
pub fn render_similarity_program(g1: &PropertyGraph, g2: &PropertyGraph) -> String {
    format!(
        "% ProvMark graph similarity (paper Listing 3)\n{}\n{}#show h/2.\n",
        render_facts(g1, g2),
        SIMILARITY_SPEC
    )
}

/// Render the complete clingo program for the approximate subgraph
/// isomorphism problem (Listing 4 plus graph facts).
pub fn render_subgraph_program(g1: &PropertyGraph, g2: &PropertyGraph) -> String {
    format!(
        "% ProvMark approximate subgraph isomorphism (paper Listing 4)\n{}\n{}#show h/2.\n",
        render_facts(g1, g2),
        SUBGRAPH_SPEC
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (PropertyGraph, PropertyGraph) {
        let mut g1 = PropertyGraph::new();
        g1.add_node("n1", "File").unwrap();
        let mut g2 = PropertyGraph::new();
        g2.add_node("m1", "File").unwrap();
        g2.set_node_property("m1", "k", "v").unwrap();
        (g1, g2)
    }

    #[test]
    fn similarity_program_contains_listing3_rules() {
        let (g1, g2) = toy();
        let p = render_similarity_program(&g1, &g2);
        assert!(p.contains("{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_)."));
        assert!(p.contains(":- n2(Y,L), h(X,Y), not n1(X,L)."));
        assert!(p.contains("n1(n1,\"File\")."));
        assert!(p.contains("n2(m1,\"File\")."));
        assert!(!p.contains("#minimize"), "similarity has no objective");
    }

    #[test]
    fn subgraph_program_contains_listing4_rules() {
        let (g1, g2) = toy();
        let p = render_subgraph_program(&g1, &g2);
        assert!(p.contains("cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_)."));
        assert!(p.contains("#minimize { PC,X,K : cost(X,K,PC) }."));
        assert!(p.contains("p2(m1,\"k\",\"v\")."));
        // Subgraph spec drops the reverse totality rules of Listing 3.
        assert!(!p.contains("{h(X,Y) : n1(X,_)} = 1 :- n2(Y,_)."));
    }

    #[test]
    fn facts_use_graph_ids_1_and_2() {
        let (g1, g2) = toy();
        let facts = render_facts(&g1, &g2);
        assert!(facts.contains("n1(n1,"));
        assert!(facts.contains("n2(m1,"));
    }
}
