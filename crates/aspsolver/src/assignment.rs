//! Minimum-cost assignment (Hungarian algorithm).
//!
//! After the backtracking engine fixes a node mapping, edges fall into
//! groups keyed by `(mapped source, mapped target, label)`; within a group
//! every g1 edge may map to every g2 edge, and the only remaining freedom is
//! which pairing minimizes total property-mismatch cost. That is a
//! rectangular assignment problem, solved here with the Jonker–Volgenant
//! style potentials formulation in `O(n² · m)`.

/// Cost value treated as infinity (forbidden pairing).
pub const FORBIDDEN: u64 = u64::MAX / 4;

/// Solve the rectangular min-cost assignment problem.
///
/// `cost` is an `n × m` matrix with `n ≤ m`; entry `cost[i][j]` is the cost
/// of assigning row `i` to column `j` (use [`FORBIDDEN`] to rule a pairing
/// out). Returns the column chosen for each row and the total cost, or
/// `None` when no feasible (non-forbidden) complete assignment exists.
///
/// # Panics
///
/// Panics if `n > m` or the matrix is ragged.
pub fn min_cost_assignment(cost: &[Vec<u64>]) -> Option<(Vec<usize>, u64)> {
    let n = cost.len();
    if n == 0 {
        return Some((Vec::new(), 0));
    }
    let m = cost[0].len();
    assert!(n <= m, "assignment requires rows <= columns ({n} > {m})");
    assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");

    // 1-based arrays in the classic formulation.
    let inf = i128::from(FORBIDDEN) * 2;
    let mut u = vec![0i128; n + 1];
    let mut v = vec![0i128; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row assigned to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = i128::from(cost[i0 - 1][j - 1]) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if delta >= inf {
                // Every remaining column is forbidden: infeasible.
                return None;
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            result[p[j] - 1] = j - 1;
        }
    }
    let mut total: u64 = 0;
    for (i, &j) in result.iter().enumerate() {
        let c = cost[i][j];
        if c >= FORBIDDEN {
            return None;
        }
        total += c;
    }
    Some((result, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_simple() {
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let (assign, total) = min_cost_assignment(&cost).unwrap();
        assert_eq!(total, 5); // 1 + 2 + 2
        assert_eq!(assign, vec![1, 0, 2]);
    }

    #[test]
    fn rectangular_picks_cheapest_columns() {
        let cost = vec![vec![10, 1, 10, 10], vec![1, 10, 10, 2]];
        let (assign, total) = min_cost_assignment(&cost).unwrap();
        assert_eq!(total, 2);
        assert_eq!(assign, vec![1, 0]);
    }

    #[test]
    fn empty_matrix() {
        assert_eq!(min_cost_assignment(&[]), Some((vec![], 0)));
    }

    #[test]
    fn single_cell() {
        assert_eq!(min_cost_assignment(&[vec![7]]), Some((vec![0], 7)));
    }

    #[test]
    fn forbidden_forces_alternative() {
        let cost = vec![vec![FORBIDDEN, 5], vec![1, FORBIDDEN]];
        let (assign, total) = min_cost_assignment(&cost).unwrap();
        assert_eq!(assign, vec![1, 0]);
        assert_eq!(total, 6);
    }

    #[test]
    fn infeasible_returns_none() {
        let cost = vec![vec![FORBIDDEN, FORBIDDEN]];
        assert_eq!(min_cost_assignment(&cost), None);
        let cost = vec![vec![1, FORBIDDEN], vec![2, FORBIDDEN]];
        assert_eq!(min_cost_assignment(&cost), None);
    }

    #[test]
    fn zero_costs() {
        let cost = vec![vec![0, 0], vec![0, 0]];
        let (_, total) = min_cost_assignment(&cost).unwrap();
        assert_eq!(total, 0);
    }

    #[test]
    #[should_panic(expected = "rows <= columns")]
    fn more_rows_than_columns_panics() {
        let _ = min_cost_assignment(&[vec![1], vec![2]]);
    }

    #[test]
    fn matches_brute_force_on_small_matrices() {
        // Deterministic pseudo-random matrices, checked against permutation
        // enumeration.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in 1..=4usize {
            for m in n..=5usize {
                let cost: Vec<Vec<u64>> = (0..n)
                    .map(|_| (0..m).map(|_| next() % 50).collect())
                    .collect();
                let (_, total) = min_cost_assignment(&cost).unwrap();
                let best = brute_force(&cost);
                assert_eq!(total, best, "n={n} m={m} cost={cost:?}");
            }
        }
    }

    fn brute_force(cost: &[Vec<u64>]) -> u64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = u64::MAX;
        permute(&mut cols, 0, n, &mut |perm| {
            let total: u64 = (0..n).map(|i| cost[i][perm[i]]).sum();
            best = best.min(total);
        });
        best
    }

    fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(&cols[..n]);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }
}
