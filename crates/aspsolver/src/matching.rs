use std::collections::BTreeMap;

/// A matching between two property graphs: the relation `h` of the paper's
/// ASP specifications, split into its node and edge components.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    /// `h` restricted to nodes: g1 node id → g2 node id.
    pub node_map: BTreeMap<String, String>,
    /// `h` restricted to edges: g1 edge id → g2 edge id.
    pub edge_map: BTreeMap<String, String>,
    /// Optimization objective value: number of mismatched properties under
    /// this matching (0 for pure feasibility problems).
    pub cost: u64,
}

impl Matching {
    /// Total number of matched elements.
    pub fn len(&self) -> usize {
        self.node_map.len() + self.edge_map.len()
    }

    /// `true` if nothing is matched (e.g. two empty graphs).
    pub fn is_empty(&self) -> bool {
        self.node_map.is_empty() && self.edge_map.is_empty()
    }

    /// Invert the matching (g2 → g1). Only meaningful for bijections.
    pub fn invert(&self) -> Matching {
        Matching {
            node_map: self
                .node_map
                .iter()
                .map(|(a, b)| (b.clone(), a.clone()))
                .collect(),
            edge_map: self
                .edge_map
                .iter()
                .map(|(a, b)| (b.clone(), a.clone()))
                .collect(),
            cost: self.cost,
        }
    }
}

/// Result of a solver run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Outcome {
    /// The best matching found, if any exists.
    pub matching: Option<Matching>,
    /// `true` when the search ran to completion, so `matching` is the true
    /// optimum (or its absence is a proof of infeasibility). `false` means
    /// the backtracking budget was exhausted and the result is best-effort.
    pub optimal: bool,
    /// Search statistics (for the solver ablation benchmarks).
    pub stats: crate::SolverStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_swaps_directions() {
        let mut m = Matching::default();
        m.node_map.insert("a".into(), "x".into());
        m.edge_map.insert("e".into(), "f".into());
        m.cost = 3;
        let inv = m.invert();
        assert_eq!(inv.node_map["x"], "a");
        assert_eq!(inv.edge_map["f"], "e");
        assert_eq!(inv.cost, 3);
        assert_eq!(inv.invert(), m);
    }

    #[test]
    fn len_and_empty() {
        let m = Matching::default();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
