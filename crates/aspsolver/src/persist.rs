//! Persistent, content-addressed solve cache: the on-disk artifact that
//! warms a [`SolveMemo`] across processes, shards and restarts.
//!
//! # Why this is sound
//!
//! A [`SolveMemo`] entry is a pure function of its key — the problem,
//! the two cores' interner-independent 128-bit content hashes
//! ([`provgraph::compiled::content_hashes`]) and the full
//! [`SolverConfig`](crate::SolverConfig), budget included. Nothing in
//! the key or the cached outcome references a session, an interner
//! numbering or a process, so an entry computed anywhere is valid
//! everywhere: persisting the map and reloading it elsewhere is the
//! classic content-addressing move — name the data, not the host that
//! computed it. A warm replay returns byte-identically what the fresh
//! search would have, search statistics included.
//!
//! # `SolveCacheFile` format (version 1)
//!
//! Little-endian throughout, mirroring the session snapshot format:
//!
//! ```text
//! magic      4 bytes   "PMSC"
//! version    u32       SOLVE_CACHE_VERSION
//! checksum   u64       FxHash of every byte after this field
//! count      u64       number of entries
//! entry*     --        `count` entries, sorted by encoded key bytes
//! ```
//!
//! Each entry is a key followed by its outcome:
//!
//! ```text
//! problem    u8        0 Similarity · 1 Isomorphism · 2 Generalization · 3 Subgraph
//! lhs        u128      content hash of the left core (property-blind for Similarity)
//! rhs        u128      content hash of the right core
//! max_steps  u64       search budget (part of the key!)
//! flags      u8        bit0 degree_filter · bit1 forward_check · bit2 cost_bound
//!                      · bit3 order_by_cost · bit4 dense_pruning; bits 5–7 zero
//! outcome    u8        bit0 optimal · bit1 solution present; bits 2–7 zero
//! stats      3×u64     steps, backtracks, solutions
//! solution   --        present only when outcome bit1 is set:
//!   nodes    u32 + n×u32          node assignment
//!   edges    u32 + m×(u32,u32)    edge pairing
//!   cost     u64                  total cost
//! ```
//!
//! Entries are written sorted by their encoded key bytes, so the same
//! cache contents always serialize to the same bytes (merge order and
//! shard iteration order are invisible). Trailing bytes after the last
//! entry are rejected.
//!
//! Every malformed input — wrong magic, foreign version, truncation at
//! any byte, flipped payload bytes — is rejected with a typed
//! [`SolveCacheError`]; loading never panics on untrusted bytes and a
//! rejected file simply leaves the memo cold. A forged *well-formed*
//! file can of course plant wrong outcomes — the cache file carries the
//! same trust level as every other run artifact (manifests, partials)
//! and the same integrity checks, no more.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;

use provgraph::compiled::FxHasher;

use crate::engine::{DenseOutcome, MemoKey, Problem, SolveMemo, SolverConfig, SolverStats};

/// Magic bytes opening every solve-cache file.
pub const SOLVE_CACHE_MAGIC: [u8; 4] = *b"PMSC";

/// Current solve-cache format version. Bumped on any byte-layout
/// change; readers reject every other version rather than guess.
pub const SOLVE_CACHE_VERSION: u32 = 1;

/// Failure to load (or write) a solve-cache file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveCacheError {
    /// The input does not start with [`SOLVE_CACHE_MAGIC`] — it is not
    /// a solve-cache file at all.
    BadMagic,
    /// The file was written by a different format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The only version this build reads.
        supported: u32,
    },
    /// The input ended before the structure it promised was complete.
    Truncated {
        /// Byte offset at which more data was needed.
        at: usize,
    },
    /// The input decoded structurally but violates a format invariant.
    Corrupt {
        /// What was violated.
        detail: String,
    },
    /// The underlying file could not be read or written.
    Io {
        /// The operating-system error.
        detail: String,
    },
}

impl fmt::Display for SolveCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveCacheError::BadMagic => {
                write!(f, "not a solve-cache file (missing PMSC magic)")
            }
            SolveCacheError::UnsupportedVersion { found, supported } => write!(
                f,
                "solve-cache format version {found} is not supported (this build reads \
                 version {supported}); re-create the cache with a matching build"
            ),
            SolveCacheError::Truncated { at } => {
                write!(f, "solve-cache file truncated at byte offset {at}")
            }
            SolveCacheError::Corrupt { detail } => write!(f, "solve-cache file corrupt: {detail}"),
            SolveCacheError::Io { detail } => write!(f, "solve-cache io error: {detail}"),
        }
    }
}

impl std::error::Error for SolveCacheError {}

fn corrupt(detail: impl Into<String>) -> SolveCacheError {
    SolveCacheError::Corrupt {
        detail: detail.into(),
    }
}

impl From<io::Error> for SolveCacheError {
    fn from(e: io::Error) -> Self {
        SolveCacheError::Io {
            detail: e.to_string(),
        }
    }
}

/// FxHash of a byte run — the cache file's payload checksum.
fn payload_hash(bytes: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

// --- serialization ------------------------------------------------------

fn problem_tag(p: Problem) -> u8 {
    match p {
        Problem::Similarity => 0,
        Problem::Isomorphism => 1,
        Problem::Generalization => 2,
        Problem::Subgraph => 3,
    }
}

fn problem_from_tag(tag: u8) -> Option<Problem> {
    Some(match tag {
        0 => Problem::Similarity,
        1 => Problem::Isomorphism,
        2 => Problem::Generalization,
        3 => Problem::Subgraph,
        _ => return None,
    })
}

fn encode_key(out: &mut Vec<u8>, key: &MemoKey) {
    out.push(problem_tag(key.problem));
    out.extend_from_slice(&key.lhs.to_le_bytes());
    out.extend_from_slice(&key.rhs.to_le_bytes());
    out.extend_from_slice(&key.config.max_steps.to_le_bytes());
    let flags = u8::from(key.config.degree_filter)
        | u8::from(key.config.forward_check) << 1
        | u8::from(key.config.cost_bound) << 2
        | u8::from(key.config.order_by_cost) << 3
        | u8::from(key.config.dense_pruning) << 4;
    out.push(flags);
}

fn encode_outcome(out: &mut Vec<u8>, dense: &DenseOutcome) {
    out.push(u8::from(dense.optimal) | u8::from(dense.best.is_some()) << 1);
    out.extend_from_slice(&dense.stats.steps.to_le_bytes());
    out.extend_from_slice(&dense.stats.backtracks.to_le_bytes());
    out.extend_from_slice(&dense.stats.solutions.to_le_bytes());
    if let Some((assign, pairs, cost)) = &dense.best {
        out.extend_from_slice(&len_u32(assign.len()).to_le_bytes());
        for &a in assign {
            out.extend_from_slice(&a.to_le_bytes());
        }
        out.extend_from_slice(&len_u32(pairs.len()).to_le_bytes());
        for &(e1, e2) in pairs {
            out.extend_from_slice(&e1.to_le_bytes());
            out.extend_from_slice(&e2.to_le_bytes());
        }
        out.extend_from_slice(&cost.to_le_bytes());
    }
}

/// Serialize `entries` to the versioned cache-file format (sorted by
/// encoded key bytes, so equal contents yield equal bytes).
fn encode_entries(entries: Vec<(MemoKey, Arc<DenseOutcome>)>) -> Vec<u8> {
    let mut encoded: Vec<(Vec<u8>, &DenseOutcome)> = entries
        .iter()
        .map(|(k, d)| {
            let mut kb = Vec::with_capacity(42);
            encode_key(&mut kb, k);
            (kb, d.as_ref())
        })
        .collect();
    encoded.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut payload = Vec::new();
    payload.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    for (kb, dense) in &encoded {
        payload.extend_from_slice(kb);
        encode_outcome(&mut payload, dense);
    }
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&SOLVE_CACHE_MAGIC);
    out.extend_from_slice(&SOLVE_CACHE_VERSION.to_le_bytes());
    out.extend_from_slice(&payload_hash(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serialize **every** entry of `memo` to cache-file bytes — the full
/// artifact a supervisor publishes (or a single process saves on exit).
pub fn cache_bytes(memo: &SolveMemo) -> Vec<u8> {
    encode_entries(memo.entries_snapshot(false))
}

/// Serialize only the entries **searched in this process** — the delta
/// a warm-started worker publishes on top of the cache file it loaded,
/// so concurrent workers never rewrite each other's entries.
pub fn delta_bytes(memo: &SolveMemo) -> Vec<u8> {
    encode_entries(memo.entries_snapshot(true))
}

// --- deserialization ----------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SolveCacheError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(SolveCacheError::Truncated { at: self.pos })?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SolveCacheError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SolveCacheError> {
        Ok(u32::from_le_bytes(
            // provlint: allow(panic-in-lib) -- take(4) returned exactly 4 bytes or errored
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SolveCacheError> {
        Ok(u64::from_le_bytes(
            // provlint: allow(panic-in-lib) -- take(8) returned exactly 8 bytes or errored
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, SolveCacheError> {
        Ok(u128::from_le_bytes(
            // provlint: allow(panic-in-lib) -- take(16) returned exactly 16 bytes or errored
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }
}

/// Encode a collection length as `u32`, the fixed width of every
/// length field in this format. Solver assignments and edge pairings
/// are bounded by graph sizes, whose node/edge ids are already `u32`.
fn len_u32(n: usize) -> u32 {
    debug_assert!(n <= u32::MAX as usize, "length exceeds u32 format field");
    // provlint: allow(lossy-cast-in-serde) -- bound asserted above; ids are u32 by construction
    n as u32
}

fn decode_entry(r: &mut Reader<'_>) -> Result<(MemoKey, DenseOutcome), SolveCacheError> {
    let tag = r.u8()?;
    let problem =
        problem_from_tag(tag).ok_or_else(|| corrupt(format!("unknown problem tag {tag}")))?;
    let lhs = r.u128()?;
    let rhs = r.u128()?;
    let max_steps = r.u64()?;
    let flags = r.u8()?;
    if flags & !0b1_1111 != 0 {
        return Err(corrupt(format!(
            "reserved config flag bits set ({flags:#x})"
        )));
    }
    let config = SolverConfig {
        max_steps,
        degree_filter: flags & 1 != 0,
        forward_check: flags & 2 != 0,
        cost_bound: flags & 4 != 0,
        order_by_cost: flags & 8 != 0,
        dense_pruning: flags & 16 != 0,
    };
    let oflags = r.u8()?;
    if oflags & !0b11 != 0 {
        return Err(corrupt(format!(
            "reserved outcome flag bits set ({oflags:#x})"
        )));
    }
    let stats = SolverStats {
        steps: r.u64()?,
        backtracks: r.u64()?,
        solutions: r.u64()?,
    };
    let best = if oflags & 2 != 0 {
        let n = r.u32()? as usize;
        let mut assign = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            assign.push(r.u32()?);
        }
        let m = r.u32()? as usize;
        let mut pairs = Vec::with_capacity(m.min(1 << 20));
        for _ in 0..m {
            pairs.push((r.u32()?, r.u32()?));
        }
        Some((assign, pairs, r.u64()?))
    } else {
        None
    };
    Ok((
        MemoKey {
            problem,
            lhs,
            rhs,
            config,
        },
        DenseOutcome {
            best,
            optimal: oflags & 1 != 0,
            stats,
        },
    ))
}

/// Load cache-file bytes into `memo`, returning the number of entries
/// read. Loaded entries are marked as disk-backed (excluded from
/// [`delta_bytes`], counted by [`SolveMemo::disk_hits`] on hits); a key
/// the memo already holds keeps its in-memory entry.
///
/// # Errors
///
/// Every malformed input is rejected with a typed [`SolveCacheError`]
/// (wrong magic, unsupported version, truncation at any byte, checksum
/// mismatch, or an invariant violation); loading never panics on
/// untrusted bytes. On error the memo is left exactly as it was — the
/// caller proceeds with a cold (or partially warmed from earlier files)
/// cache.
pub fn load_cache_bytes(memo: &SolveMemo, bytes: &[u8]) -> Result<usize, SolveCacheError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4).map_err(|_| SolveCacheError::BadMagic)? != SOLVE_CACHE_MAGIC {
        return Err(SolveCacheError::BadMagic);
    }
    let version = r.u32()?;
    if version != SOLVE_CACHE_VERSION {
        return Err(SolveCacheError::UnsupportedVersion {
            found: version,
            supported: SOLVE_CACHE_VERSION,
        });
    }
    // Whole-payload checksum before any parsing — corruption anywhere in
    // the body fails here, and nothing is inserted into the memo.
    let stored_hash = r.u64()?;
    if payload_hash(&bytes[r.pos..]) != stored_hash {
        return Err(corrupt(
            "payload checksum mismatch — the cache file was corrupted in transit",
        ));
    }
    let count = r.u64()? as usize;
    // Decode everything before touching the memo, so a file that decodes
    // the checksum but trips an invariant mid-body leaves it untouched.
    let mut decoded = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        decoded.push(decode_entry(&mut r)?);
    }
    if r.pos != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last entry",
            bytes.len() - r.pos
        )));
    }
    let loaded = decoded.len();
    for (key, dense) in decoded {
        memo.insert(key, Arc::new(dense), true);
    }
    memo.tracer().event("cache.load", None, || {
        vec![("entries", provtrace::Field::from(loaded))]
    });
    Ok(loaded)
}

/// Warm `memo` from the cache file at `path`.
///
/// A missing file is a normal cold start (`Ok(0)`); an unreadable or
/// malformed file is a typed error, with the memo left as it was.
pub fn load_cache_file(memo: &SolveMemo, path: &Path) -> Result<usize, SolveCacheError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    load_cache_bytes(memo, &bytes)
}

/// Save every entry of `memo` to the cache file at `path`, durably
/// ([`write_bytes_durable`]).
pub fn write_cache_file(memo: &SolveMemo, path: &Path) -> Result<(), SolveCacheError> {
    let bytes = cache_bytes(memo);
    write_bytes_durable(path, &bytes)?;
    memo.tracer().event("cache.save", None, || {
        vec![
            ("entries", provtrace::Field::from(memo.len())),
            ("bytes", provtrace::Field::from(bytes.len())),
        ]
    });
    Ok(())
}

/// Write `bytes` to `path` atomically **and durably**: write to a
/// same-directory temp file, fsync it, rename over `path`, then fsync
/// the parent directory — so the publish survives a host crash, not
/// just a process crash. Readers see either the old content or the new,
/// never a torn write.
///
/// The implementation lives in [`provtrace`] (the bottom of the
/// workspace dependency graph, so trace files share the exact same
/// publish path); this re-export keeps the long-standing `aspsolver`
/// signature for `provshard::atomic_write` and every other caller.
pub fn write_bytes_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    provtrace::write_bytes_durable(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{solve_batch_in_memo, solve_in_memo};
    use provgraph::compiled::CorpusSession;
    use provgraph::PropertyGraph;

    #[allow(clippy::type_complexity)]
    fn graph(
        nodes: &[(&str, &str, &[(&str, &str)])],
        edges: &[(&str, &str, &str, &str)],
    ) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for &(id, label, props) in nodes {
            g.add_node(id, label).unwrap();
            for &(k, v) in props {
                g.set_node_property(id, k, v).unwrap();
            }
        }
        for &(id, src, tgt, label) in edges {
            g.add_edge(id, src, tgt, label).unwrap();
        }
        g
    }

    /// A small corpus with repeated content under fresh identifiers, so
    /// memo replays actually occur.
    fn corpus(session: &mut CorpusSession) -> Vec<provgraph::compiled::GraphId> {
        let mut ids = Vec::new();
        for trial in 0..4 {
            let pid = format!("p{trial}");
            let fid = format!("f{trial}");
            let eid = format!("e{trial}");
            let g = graph(
                &[
                    (&pid, "Process", &[("cmd", "ls"), ("pid", "42")]),
                    (&fid, "Artifact", &[("path", "/tmp/x")]),
                ],
                &[(&eid, &pid, &fid, "Used")],
            );
            ids.push(session.add(&g));
        }
        ids
    }

    fn populated_memo() -> (SolveMemo, Vec<crate::Outcome>) {
        let mut session = CorpusSession::new();
        let ids = corpus(&mut session);
        let memo = SolveMemo::new();
        let config = SolverConfig::default();
        let mut outcomes = Vec::new();
        for problem in [
            Problem::Similarity,
            Problem::Isomorphism,
            Problem::Generalization,
            Problem::Subgraph,
        ] {
            outcomes.extend(solve_batch_in_memo(
                problem,
                &session,
                ids[0],
                &ids[1..],
                &config,
                Some(&memo),
            ));
        }
        (memo, outcomes)
    }

    #[test]
    fn roundtrip_preserves_every_entry() {
        let (memo, _) = populated_memo();
        let bytes = cache_bytes(&memo);
        let fresh = SolveMemo::new();
        let loaded = load_cache_bytes(&fresh, &bytes).unwrap();
        assert_eq!(loaded, memo.len());
        assert_eq!(fresh.len(), memo.len());
        // Loaded contents re-serialize to the exact same bytes.
        assert_eq!(cache_bytes(&fresh), bytes);
    }

    #[test]
    fn warm_replay_is_identical_and_all_hits() {
        let (memo, cold_outcomes) = populated_memo();
        let bytes = cache_bytes(&memo);

        // A *different* session: same graph contents, but interned in a
        // different numbering (extra vocabulary first, graphs reversed).
        let mut session = CorpusSession::new();
        let noise = graph(&[("z", "Zebra", &[("stripes", "many")])], &[]);
        session.add(&noise);
        let ids = corpus(&mut session);

        let warm = SolveMemo::new();
        load_cache_bytes(&warm, &bytes).unwrap();
        let config = SolverConfig::default();
        let mut warm_outcomes = Vec::new();
        for problem in [
            Problem::Similarity,
            Problem::Isomorphism,
            Problem::Generalization,
            Problem::Subgraph,
        ] {
            warm_outcomes.extend(solve_batch_in_memo(
                problem,
                &session,
                ids[0],
                &ids[1..],
                &config,
                Some(&warm),
            ));
        }
        assert_eq!(warm.misses(), 0, "every dense solve must be a warm hit");
        assert_eq!(warm.disk_hits(), warm.hits());
        assert_eq!(warm_outcomes.len(), cold_outcomes.len());
        for (w, c) in warm_outcomes.iter().zip(&cold_outcomes) {
            assert_eq!(w, c, "warm replay must be byte-identical");
        }
    }

    #[test]
    fn delta_excludes_disk_backed_entries() {
        let (memo, _) = populated_memo();
        let bytes = cache_bytes(&memo);
        let warm = SolveMemo::new();
        load_cache_bytes(&warm, &bytes).unwrap();
        // No fresh searches yet: the delta is an empty cache file.
        let empty = delta_bytes(&warm);
        let probe = SolveMemo::new();
        assert_eq!(load_cache_bytes(&probe, &empty).unwrap(), 0);

        // One fresh solve appears in the delta; the loaded entries don't.
        let mut session = CorpusSession::new();
        let a = session.add(&graph(&[("a", "Fresh", &[])], &[]));
        let b = session.add(&graph(&[("b", "Fresh", &[("k", "v")])], &[]));
        solve_in_memo(
            Problem::Isomorphism,
            &session,
            a,
            b,
            &SolverConfig::default(),
            Some(&warm),
        );
        let delta = delta_bytes(&warm);
        let probe = SolveMemo::new();
        assert_eq!(load_cache_bytes(&probe, &delta).unwrap(), 1);
    }

    #[test]
    fn merge_is_deterministic_and_idempotent() {
        let (memo, _) = populated_memo();
        let bytes = cache_bytes(&memo);
        // Loading the same file into one memo twice changes nothing.
        let m = SolveMemo::new();
        load_cache_bytes(&m, &bytes).unwrap();
        load_cache_bytes(&m, &bytes).unwrap();
        assert_eq!(cache_bytes(&m), bytes);
        // Loading in any order yields the same artifact bytes.
        let (other, _) = {
            let mut session = CorpusSession::new();
            let a = session.add(&graph(&[("a", "Other", &[])], &[]));
            let b = session.add(&graph(&[("b", "Other", &[])], &[]));
            let memo = SolveMemo::new();
            solve_in_memo(
                Problem::Similarity,
                &session,
                a,
                b,
                &SolverConfig::default(),
                Some(&memo),
            );
            (cache_bytes(&memo), ())
        };
        let ab = SolveMemo::new();
        load_cache_bytes(&ab, &bytes).unwrap();
        load_cache_bytes(&ab, &other).unwrap();
        let ba = SolveMemo::new();
        load_cache_bytes(&ba, &other).unwrap();
        load_cache_bytes(&ba, &bytes).unwrap();
        assert_eq!(cache_bytes(&ab), cache_bytes(&ba));
    }

    #[test]
    fn rejects_garbage_and_foreign_version() {
        let memo = SolveMemo::new();
        assert_eq!(load_cache_bytes(&memo, b""), Err(SolveCacheError::BadMagic));
        // The header opens with exactly SOLVE_CACHE_MAGIC; any other
        // leading bytes are a foreign file, not a version skew.
        let pristine = cache_bytes(&memo);
        assert_eq!(&pristine[..4], &SOLVE_CACHE_MAGIC);
        let mut foreign = pristine.clone();
        foreign[..4].copy_from_slice(b"XMSC");
        assert_eq!(
            load_cache_bytes(&memo, &foreign),
            Err(SolveCacheError::BadMagic)
        );
        assert_eq!(
            load_cache_bytes(&memo, b"nope"),
            Err(SolveCacheError::BadMagic)
        );
        let mut future = cache_bytes(&memo);
        future[4..8].copy_from_slice(&(SOLVE_CACHE_VERSION + 1).to_le_bytes());
        assert_eq!(
            load_cache_bytes(&memo, &future),
            Err(SolveCacheError::UnsupportedVersion {
                found: SOLVE_CACHE_VERSION + 1,
                supported: SOLVE_CACHE_VERSION,
            })
        );
        assert_eq!(memo.len(), 0, "rejected loads must leave the memo cold");
    }

    #[test]
    fn rejects_every_strict_prefix() {
        let (memo, _) = populated_memo();
        let bytes = cache_bytes(&memo);
        for end in 0..bytes.len() {
            let fresh = SolveMemo::new();
            let err = load_cache_bytes(&fresh, &bytes[..end])
                .expect_err("every strict prefix must be rejected");
            assert!(
                matches!(
                    err,
                    SolveCacheError::BadMagic
                        | SolveCacheError::Truncated { .. }
                        | SolveCacheError::Corrupt { .. }
                ),
                "prefix of length {end}: unexpected error {err:?}"
            );
            assert_eq!(fresh.len(), 0, "prefix of length {end} warmed the memo");
        }
    }

    #[test]
    fn rejects_every_single_byte_flip() {
        let (memo, _) = populated_memo();
        let bytes = cache_bytes(&memo);
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x40;
            let fresh = SolveMemo::new();
            load_cache_bytes(&fresh, &tampered)
                .expect_err("a flipped byte anywhere must be detected");
            assert_eq!(fresh.len(), 0, "flip at byte {i} warmed the memo");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (memo, _) = populated_memo();
        let mut bytes = cache_bytes(&memo);
        let hash_start = 8;
        bytes.push(0);
        // Re-stamp the checksum so only the trailing-byte check can fire.
        let fixed = payload_hash(&bytes[16..]);
        bytes[hash_start..16].copy_from_slice(&fixed.to_le_bytes());
        let fresh = SolveMemo::new();
        assert!(matches!(
            load_cache_bytes(&fresh, &bytes),
            Err(SolveCacheError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let memo = SolveMemo::new();
        let dir = std::env::temp_dir().join(format!("pmsc-missing-{}", std::process::id()));
        assert_eq!(load_cache_file(&memo, &dir.join("absent.cache")), Ok(0));
    }

    #[test]
    fn file_roundtrip_via_durable_write() {
        let (memo, _) = populated_memo();
        let dir = std::env::temp_dir().join(format!("pmsc-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solve.cache");
        write_cache_file(&memo, &path).unwrap();
        let fresh = SolveMemo::new();
        assert_eq!(load_cache_file(&fresh, &path).unwrap(), memo.len());
        // Overwrite-in-place goes through the same atomic path.
        write_cache_file(&fresh, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), cache_bytes(&memo));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_cap_evicts_and_counts() {
        let memo = SolveMemo::with_capacity(16);
        let mut session = CorpusSession::new();
        let config = SolverConfig::default();
        let mut ids = Vec::new();
        for i in 0..40 {
            let id = format!("n{i}");
            let g = graph(&[(&id, "N", &[("i", &i.to_string())])], &[]);
            ids.push(session.add(&g));
        }
        for w in ids.windows(2) {
            solve_in_memo(
                Problem::Isomorphism,
                &session,
                w[0],
                w[1],
                &config,
                Some(&memo),
            );
        }
        assert!(memo.evictions() > 0, "the cap must trigger evictions");
        // Each shard holds at most its share of the capacity, so the
        // total stays within the configured bound.
        assert!(
            memo.len() <= 16,
            "memo holds {} entries over its capacity of 16",
            memo.len()
        );
    }
}
