//! Branch-and-bound search engine for the graph matching problems,
//! running on the **compiled** (symbol-interned) graph representation.
//!
//! The engine searches over *node* mappings only: once every g1 node has
//! an image, the edges decompose into independent groups keyed by
//! `(mapped source, mapped target, label)` and each group is an
//! assignment problem solved exactly by the Hungarian algorithm
//! ([`crate::min_cost_assignment`]). This two-level decomposition is what
//! makes the NP-complete subgraph isomorphism instances from provenance
//! graphs tractable in practice (paper §5.1 establishes "minutes rather
//! than days"; we do better on the simulated substrate).
//!
//! # The hot path
//!
//! Every datum the inner loop touches is an integer:
//!
//! - labels, property keys and values are [`Symbol`]s interned once at
//!   compile time ([`provgraph::compiled`]);
//! - candidate lists live in one flat array indexed by per-node ranges —
//!   nothing is cloned while descending;
//! - pair costs are precomputed into a dense `n1 × n2` table read by
//!   multiplication-free indexing;
//! - the partial cost and the remaining-cost floor are maintained
//!   incrementally on assign/undo instead of being recomputed per
//!   candidate;
//! - adjacency consistency compares sorted `(Symbol, count)` slices.
//!
//! # The pruned kernel (`dense_pruning`, default on)
//!
//! On top of that, the default search runs over **bitset candidate
//! domains**: each left node's domain is a `⌈n2/64⌉`-word bitset over
//! dense right ids, restricted word-parallel as assignments extend
//! (`restrict_neighbours`) and undone via a change trail, so the legacy
//! per-candidate `used`/`consistent` probes become two bit tests and MRV
//! domain sizes become `popcount(dyn & free)`. For bijective problems,
//! memoized **Weisfeiler–Lehman shape colours**
//! ([`provgraph::fingerprint::shape_colors_core`], a session lookup via
//! [`CorpusSession::shape_colors`]) additionally pre-filter pairs whose
//! iterated colour classes can never correspond, seed the
//! most-constrained-first scan order, and tighten the admissible
//! per-node cost floors. Every colour-guided prune removes only
//! provably solution-free work, so **matchings, costs and optimality
//! flags are identical** to the unpruned path (and to
//! [`crate::solve_strings`]); [`SolverStats`] shrinks, deterministically
//! — the invariant split the differential proptests pin. One caveat
//! follows from doing less work: a budget-limited search may complete
//! (report `optimal`) where the unpruned path would have exhausted
//! `max_steps`; outcomes are guaranteed identical whenever neither path
//! truncates.
//!
//! String identifiers reappear only once, when the final dense matching
//! is translated back to [`Matching`]'s `ElemId` maps. The legacy
//! string-path engine is preserved in [`crate::solve_strings`] for
//! differential testing and ablation benchmarks; the unpruned dense
//! path stays compilable (`dense_pruning: false`) as the ablation
//! baseline `bench_solver`'s `dense_pruned` column measures against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use provgraph::compiled::{
    degree_sig_leq, label_counts_leq, one_sided_prop_diff, symmetric_prop_diff, CompiledGraph,
    CorpusSession, FxHashMap, FxHasher, GraphCore, GraphId, Interner, NamedGraph, Symbol,
};
use provgraph::fingerprint::shape_colors_core;
use provgraph::par;
use provgraph::PropertyGraph;

use crate::assignment::{min_cost_assignment, FORBIDDEN};
use crate::matching::{Matching, Outcome};

/// Which matching problem to solve (see crate docs for the paper mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Bijection preserving structure + labels; properties ignored
    /// (paper Listing 3).
    Similarity,
    /// Bijection preserving structure + labels + exact properties.
    Isomorphism,
    /// Bijection preserving structure + labels, minimizing the number of
    /// properties in the symmetric difference of matched pairs (§3.4).
    Generalization,
    /// Injective embedding of g1 into g2 preserving structure + labels,
    /// minimizing g1 properties unmatched on the image (paper Listing 4).
    Subgraph,
}

impl Problem {
    /// `true` for problems requiring a bijection (everything except
    /// [`Problem::Subgraph`]).
    pub fn bijective(self) -> bool {
        !matches!(self, Problem::Subgraph)
    }

    /// `true` for problems minimizing a property-mismatch objective.
    pub fn optimizing(self) -> bool {
        matches!(self, Problem::Generalization | Problem::Subgraph)
    }
}

/// Tuning knobs for the search; the defaults enable every pruning rule.
///
/// The individual switches exist for the solver ablation benchmark
/// (`ablation_solver`), which quantifies what each rule buys.
/// `PartialEq`/`Eq`/`Hash` exist because the whole configuration is part
/// of every [`SolveMemo`] key: each knob changes the search order or the
/// step budget, and therefore the cached outcome (including its
/// statistics), so outcomes cached under one configuration must never be
/// replayed under another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Budget on candidate assignments tried before giving up and
    /// returning the best solution found so far (`optimal = false`).
    pub max_steps: u64,
    /// Prune candidates whose per-label degree signature is incompatible.
    pub degree_filter: bool,
    /// Check adjacency consistency against already-assigned neighbours at
    /// every assignment (forward checking).
    pub forward_check: bool,
    /// Prune branches whose cost lower bound meets the incumbent.
    pub cost_bound: bool,
    /// Try cheap candidates first (best-first value ordering).
    pub order_by_cost: bool,
    /// Run the dense search over bitset candidate domains with
    /// WL-colour-guided pruning (see the `Search` internals docs).
    ///
    /// With this on (the default), candidate domains are maintained as
    /// `u64`-block bitsets intersected word-parallel as assignments
    /// extend, and — for bijective problems — Weisfeiler–Lehman shape
    /// colours pre-filter pairs whose iterated colour classes can never
    /// correspond. Matchings, costs and optimality flags are identical
    /// to the unpruned path (and to [`solve_strings`]); only
    /// [`SolverStats`] improves (fewer steps/backtracks explored,
    /// deterministically). Turning it off restores the legacy
    /// vector-walk search, kept compilable as the ablation baseline that
    /// `bench_solver`'s `dense_pruned` column measures against — and the
    /// configuration under which statistics, not just outcomes, are
    /// pinned to [`solve_strings`].
    ///
    /// [`solve_strings`]: crate::solve_strings
    pub dense_pruning: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_steps: 10_000_000,
            degree_filter: true,
            forward_check: true,
            cost_bound: true,
            order_by_cost: true,
            dense_pruning: true,
        }
    }
}

impl SolverConfig {
    /// A configuration with every optimization disabled — pure generate
    /// and test over label-compatible candidates (the ablation baseline).
    pub fn naive() -> Self {
        SolverConfig {
            max_steps: 10_000_000,
            degree_filter: false,
            forward_check: false,
            cost_bound: false,
            order_by_cost: false,
            dense_pruning: false,
        }
    }
}

/// Search statistics, reported for every run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Candidate node assignments attempted.
    pub steps: u64,
    /// Dead ends that forced the search to undo an assignment.
    pub backtracks: u64,
    /// Complete (feasible) solutions encountered.
    pub solutions: u64,
}

thread_local! {
    /// Warm per-thread interner reused across [`solve`] calls.
    ///
    /// Provenance vocabularies (labels, property keys, most values) are
    /// small and highly repetitive, so after the first few solves the
    /// compile pass stops allocating strings entirely — every intern is a
    /// single hash probe. Solver outcomes are invariant to symbol
    /// numbering (symbols only feed equality tests, set-inclusion merges
    /// and order-insensitive sums), so the warm start never changes a
    /// result; `tests/differential_compiled.rs` pins that down against
    /// the deterministic string path.
    static SOLVER_INTERNER: std::cell::RefCell<Interner> =
        std::cell::RefCell::new(Interner::new());
}

/// Reset threshold for the warm interner.
///
/// Volatile property values (timestamps, fresh ids) are unique per trial,
/// so a long-lived service thread would otherwise accumulate distinct
/// strings without bound. The stable vocabulary is tiny; rebuilding it
/// after a reset costs one compile pass.
const WARM_INTERNER_CAP: usize = 1 << 20;

/// Solve `problem` matching `g1` against `g2`.
///
/// Compiles both graphs into a shared (thread-warm) interner and runs
/// the compiled search ([`solve_compiled`]). For bijective problems the
/// graphs must have identical element counts and label multisets or the
/// result is immediately infeasible. The returned [`Outcome`] carries
/// the optimal matching (or `None`), an optimality flag, and search
/// statistics.
///
/// Callers matching the *same* graph repeatedly (e.g. similarity
/// classification over many trials) should compile once and call
/// [`solve_compiled`] directly to amortize the compile pass as well.
pub fn solve(
    problem: Problem,
    g1: &PropertyGraph,
    g2: &PropertyGraph,
    config: &SolverConfig,
) -> Outcome {
    SOLVER_INTERNER.with(|cell| {
        let mut interner = cell.borrow_mut();
        if interner.len() > WARM_INTERNER_CAP {
            *interner = Interner::new();
        }
        let c1 = CompiledGraph::compile(g1, &mut interner);
        let c2 = CompiledGraph::compile(g2, &mut interner);
        drop(interner);
        solve_compiled(problem, &c1, &c2, config)
    })
}

/// Solve `problem` over graphs compiled with a **shared** interner.
///
/// Symbols are only comparable within one interner's namespace; passing
/// graphs compiled against different interners silently mismatches
/// labels. The [`solve`] wrapper handles this for one-shot calls.
pub fn solve_compiled(
    problem: Problem,
    g1: &CompiledGraph,
    g2: &CompiledGraph,
    config: &SolverConfig,
) -> Outcome {
    solve_named(problem, g1, g2, config)
}

/// Solve `problem` over two graphs of a [`CorpusSession`].
///
/// This is the amortized corpus path: both graphs were compiled exactly
/// once when added to the session (sharing its interner), so repeated
/// solves over session members — similarity confirmation, generalization,
/// the comparison stage — pay zero compile or interning cost per call.
///
/// Handles are only meaningful for the session that issued them. Panics
/// when a foreign handle's index is out of range; a foreign handle whose
/// index happens to be in range silently addresses a *different* session
/// graph (see [`CorpusSession::graph`]) — keep handles with their
/// session.
pub fn solve_in(
    problem: Problem,
    session: &CorpusSession,
    g1: GraphId,
    g2: GraphId,
    config: &SolverConfig,
) -> Outcome {
    // The session memoizes WL shape colours at `add`, so the
    // colour-guided pruning signal is a lookup here where the one-shot
    // paths re-derive it. Pruning decisions depend only on the colour
    // *equality pattern*, which is interner-invariant, so outcomes and
    // statistics match the one-shot paths either way.
    let dense = solve_dense(
        problem,
        session.graph(g1).core(),
        session.graph(g2).core(),
        config,
        None,
        Some((session.shape_colors(g1), session.shape_colors(g2))),
    );
    translate(&dense, session.graph(g1), session.graph(g2))
}

/// Left-hand search state prepared once and reused across many right-hand
/// graphs — the "one plan, many right-hand graphs" batch pattern of
/// similarity classification (one class representative confirmed against
/// every bucket member) and the Table 2 matrix replay (one generalized
/// graph embedded into many cells).
///
/// Most left-derived state the solver needs — sorted property rows,
/// degree signatures, CSR adjacency, label multisets — is already
/// precompiled into the borrowed [`GraphCore`]. What `PreparedLhs` adds
/// is the per-problem organisation of that core around *labels*, which
/// lets each per-right solve skip every cross-label pair instead of
/// scanning the full `n1 × n2` candidate grid:
///
/// - the set of distinct left node labels, used to index only the
///   relevant right nodes when building candidate ranges (right nodes
///   whose label never occurs on the left are not even bucketed);
/// - for optimizing problems, the left edges grouped by label, so the
///   admissible edge-cost floor visits same-label edge pairs only.
///
/// # Invariants
///
/// A plan is valid for exactly one `(problem, left core)` pair and any
/// right-hand graph compiled against the **same interner** (symbols are
/// only comparable within one interner's namespace — the same scoping
/// rule as [`solve_compiled`]). A solve through a plan builds candidate
/// tables, pair costs and cost floors identical to the unprepared path,
/// so matchings, costs, optimality flags and search statistics equal
/// [`solve_in`] / [`solve_compiled`] /
/// [`solve_strings`](crate::solve_strings) outcomes — pinned by the
/// batch differential proptest in `tests/differential_compiled.rs`.
pub struct PreparedLhs<'a> {
    problem: Problem,
    core: &'a GraphCore,
    /// Distinct left node labels (with multiplicities, cheap to carry).
    node_label_counts: FxHashMap<Symbol, u32>,
    /// Left edge indices grouped by label (ascending within a group);
    /// empty for non-optimizing problems, which have no cost floor.
    edge_groups: FxHashMap<Symbol, Vec<u32>>,
}

impl<'a> PreparedLhs<'a> {
    /// Prepare the left-hand plan for `problem` over a compiled core.
    pub fn new(problem: Problem, core: &'a GraphCore) -> PreparedLhs<'a> {
        let mut node_label_counts: FxHashMap<Symbol, u32> = FxHashMap::default();
        for v in 0..core.node_count() as u32 {
            *node_label_counts.entry(core.node_label(v)).or_insert(0) += 1;
        }
        let mut edge_groups: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
        if problem.optimizing() {
            for e in 0..core.edge_count() as u32 {
                edge_groups.entry(core.edge_label(e)).or_default().push(e);
            }
        }
        PreparedLhs {
            problem,
            core,
            node_label_counts,
            edge_groups,
        }
    }

    /// The problem this plan was prepared for.
    pub fn problem(&self) -> Problem {
        self.problem
    }

    /// The left compiled core this plan was prepared over.
    pub fn core(&self) -> &'a GraphCore {
        self.core
    }
}

/// Solve with a prepared left-hand plan.
///
/// `g1` must be the carrier of the exact core `lhs` was prepared over
/// (checked by `debug_assert`), and `g2` must share its interner. The
/// outcome is identical to [`solve_compiled`]`(lhs.problem(), g1, g2,
/// config)` in every observable; only the per-call setup cost differs.
/// [`BatchSolver`] wraps this for session handles.
pub fn solve_prepared<G1: NamedGraph, G2: NamedGraph>(
    lhs: &PreparedLhs<'_>,
    g1: &G1,
    g2: &G2,
    config: &SolverConfig,
) -> Outcome {
    run_search(lhs.problem, g1, g2, config, Some(lhs))
}

/// Batched solver over a [`CorpusSession`]: one prepared left-hand graph
/// matched against many right-hand session members.
///
/// This is the amortization layer on top of the session path: where
/// [`solve_in`] pays the full per-pair setup on every call, a
/// `BatchSolver` builds the left-hand plan ([`PreparedLhs`]) once at
/// construction and reuses it for every right-hand graph.
/// [`solve_batch`](BatchSolver::solve_batch) additionally shares one
/// dense search across rights whose compiled cores are
/// solver-equivalent and fans distinct solves out across the machine's
/// cores (see its docs for both mechanisms).
///
/// Handle scoping is as for [`solve_in`]: handles are only meaningful
/// for the session that issued them.
pub struct BatchSolver<'s> {
    session: &'s CorpusSession,
    lhs: GraphId,
    prepared: PreparedLhs<'s>,
    config: SolverConfig,
    memo: Option<&'s SolveMemo>,
}

impl<'s> BatchSolver<'s> {
    /// Prepare `session`'s graph `lhs` as the fixed left-hand side for
    /// `problem` under `config`.
    pub fn new(
        problem: Problem,
        session: &'s CorpusSession,
        lhs: GraphId,
        config: SolverConfig,
    ) -> BatchSolver<'s> {
        BatchSolver {
            session,
            lhs,
            prepared: PreparedLhs::new(problem, session.graph(lhs).core()),
            config,
            memo: None,
        }
    }

    /// Attach (or detach) a session-level [`SolveMemo`]: every dense
    /// solve this batch solver runs is then looked up in — and recorded
    /// into — the memo, so replays of the same (problem, core pair,
    /// config) across batches, calls and left-hand sides are searched
    /// once. `None` restores the memo-less behaviour. The memo must be
    /// scoped to the same session as the solver's handles.
    pub fn with_memo(mut self, memo: Option<&'s SolveMemo>) -> BatchSolver<'s> {
        self.memo = memo;
        self
    }

    /// The problem this solver batches.
    pub fn problem(&self) -> Problem {
        self.prepared.problem
    }

    /// The prepared left-hand session graph.
    pub fn lhs(&self) -> GraphId {
        self.lhs
    }

    /// Solve the prepared left against one right-hand session graph.
    ///
    /// Identical outcome (matching, cost, optimality, statistics) to
    /// `solve_in(problem, session, lhs, rhs, config)`. With a memo
    /// attached ([`with_memo`](BatchSolver::with_memo)), the dense half
    /// is served from — or recorded into — the memo.
    pub fn solve_one(&self, rhs: GraphId) -> Outcome {
        let dense = match self.memo {
            Some(memo) => memoized_dense(
                memo,
                self.prepared.problem,
                self.session,
                self.lhs,
                rhs,
                &self.config,
                Some(&self.prepared),
            ),
            None => Arc::new(solve_dense(
                self.prepared.problem,
                self.prepared.core,
                self.session.graph(rhs).core(),
                &self.config,
                Some(&self.prepared),
                Some((
                    self.session.shape_colors(self.lhs),
                    self.session.shape_colors(rhs),
                )),
            )),
        };
        translate(
            &dense,
            self.session.graph(self.lhs),
            self.session.graph(rhs),
        )
    }

    /// Solve the prepared left against every right-hand graph, in order.
    ///
    /// Two batch-level amortizations on top of the shared plan:
    ///
    /// - **Dense-solve sharing.** The search itself never sees element
    ///   identifiers, so its outcome is a pure function of the two
    ///   compiled cores (for [`Problem::Similarity`], of their structure
    ///   and labels alone — see `cores_equivalent`). Rights whose cores
    ///   are solver-equivalent are grouped — cheap: the session's
    ///   memoized fingerprints prefilter, an exact core comparison
    ///   confirms — and searched **once**; only the witness translation
    ///   back to each right's identifiers is per-member. This is the
    ///   dominant win for similarity confirmation, where bucket members
    ///   routinely differ only in volatile property values.
    /// - **Parallel fan-out.** Distinct dense solves run across the
    ///   machine's cores via [`provgraph::par::par_map`] (which degrades
    ///   to a sequential loop when already inside a parallel stage, so
    ///   the pipeline's matrix cells batch without oversubscribing).
    ///
    /// Outcomes are returned in `rhs` order; each equals the
    /// corresponding per-pair [`solve_in`] call in every observable,
    /// including search statistics (a shared dense solve reports the
    /// statistics the identical per-pair search would have).
    pub fn solve_batch(&self, rhs: &[GraphId]) -> Vec<Outcome> {
        // Group rights by solver-equivalent cores: fingerprint prefilter
        // (memoized in the session, so a lookup), exact check to confirm.
        let mut groups: Vec<(GraphId, u64, Vec<usize>)> = Vec::new();
        let problem = self.prepared.problem;
        let fingerprint = |id: GraphId| {
            if problem == Problem::Similarity {
                self.session.shape_fingerprint(id)
            } else {
                self.session.full_fingerprint(id)
            }
        };
        for (pos, &id) in rhs.iter().enumerate() {
            let fp = fingerprint(id);
            let found = groups.iter_mut().find(|(rep, rep_fp, _)| {
                *rep_fp == fp
                    && cores_equivalent(
                        problem,
                        self.session.graph(*rep).core(),
                        self.session.graph(id).core(),
                    )
            });
            match found {
                Some((_, _, members)) => members.push(pos),
                None => groups.push((id, fp, vec![pos])),
            }
        }
        let dense: Vec<Arc<DenseOutcome>> = par::par_map(&groups, |(rep, _, _)| {
            match self.memo {
                // The memo is keyed on canonical core identity, so a
                // replay of this (lhs, rep) pair from an earlier batch
                // (or a left side with an equivalent core) is a lookup.
                Some(memo) => memoized_dense(
                    memo,
                    problem,
                    self.session,
                    self.lhs,
                    *rep,
                    &self.config,
                    Some(&self.prepared),
                ),
                None => Arc::new(solve_dense(
                    problem,
                    self.prepared.core,
                    self.session.graph(*rep).core(),
                    &self.config,
                    Some(&self.prepared),
                    Some((
                        self.session.shape_colors(self.lhs),
                        self.session.shape_colors(*rep),
                    )),
                )),
            }
        });
        let g1 = self.session.graph(self.lhs);
        let mut out: Vec<Option<Outcome>> = (0..rhs.len()).map(|_| None).collect();
        for ((_, _, members), dense) in groups.iter().zip(&dense) {
            for &pos in members {
                out[pos] = Some(translate(dense, g1, self.session.graph(rhs[pos])));
            }
        }
        out.into_iter()
            // provlint: allow(panic-in-lib) -- the group partition covers every index by construction
            .map(|o| o.expect("every right belongs to exactly one group"))
            .collect()
    }
}

/// Solve `problem` matching session graph `lhs` against each of `rhs`,
/// preparing the left-hand side once for the whole batch.
///
/// Convenience wrapper constructing a [`BatchSolver`] for a single
/// batch; callers issuing several batches against the same left side
/// should keep the solver. Outcomes are returned in `rhs` order and are
/// identical to per-pair [`solve_in`] calls.
pub fn solve_batch_in(
    problem: Problem,
    session: &CorpusSession,
    lhs: GraphId,
    rhs: &[GraphId],
    config: &SolverConfig,
) -> Vec<Outcome> {
    BatchSolver::new(problem, session, lhs, config.clone()).solve_batch(rhs)
}

/// [`solve_batch_in`] with an optional session-level [`SolveMemo`]:
/// dense solves are served from (and recorded into) the memo, so the
/// same (problem, core pair, config) replayed across separate batch
/// calls — the Table 2 matrix-replay shape — is searched once. With
/// `None` this is exactly [`solve_batch_in`]. Outcomes are identical to
/// the memo-less path in every observable, including search statistics.
pub fn solve_batch_in_memo(
    problem: Problem,
    session: &CorpusSession,
    lhs: GraphId,
    rhs: &[GraphId],
    config: &SolverConfig,
    memo: Option<&SolveMemo>,
) -> Vec<Outcome> {
    BatchSolver::new(problem, session, lhs, config.clone())
        .with_memo(memo)
        .solve_batch(rhs)
}

/// [`solve_in`] with an optional session-level [`SolveMemo`]: the dense
/// half of the solve is looked up under the pair's canonical core
/// identity before searching, and recorded after. With `None` this is
/// exactly [`solve_in`]. Outcomes are identical to the memo-less path
/// in every observable, including search statistics.
pub fn solve_in_memo(
    problem: Problem,
    session: &CorpusSession,
    g1: GraphId,
    g2: GraphId,
    config: &SolverConfig,
    memo: Option<&SolveMemo>,
) -> Outcome {
    match memo {
        Some(memo) => {
            let dense = memoized_dense(memo, problem, session, g1, g2, config, None);
            translate(&dense, session.graph(g1), session.graph(g2))
        }
        None => solve_in(problem, session, g1, g2, config),
    }
}

/// Number of shards the memo's outcome map is split across; keys are
/// distributed by hash so concurrent batch fan-outs rarely contend on
/// one lock.
const MEMO_SHARDS: usize = 8;

/// Default total entry capacity of a [`SolveMemo`] (split evenly across
/// shards). A long-lived service must not accumulate outcomes without
/// bound — the same hygiene rule as [`WARM_INTERNER_CAP`] — so inserts
/// past a shard's share batch-evict its least-recently-used quarter
/// (counted by [`SolveMemo::evictions`]).
const MEMO_CAP: usize = 1 << 18;

/// Memo key: the complete input of a dense solve, named by **content**.
/// `lhs` / `rhs` are the interner-independent 128-bit content hashes of
/// the two cores ([`provgraph::compiled::content_hashes`]) — the
/// property-blind structure hash for [`Problem::Similarity`] (whose
/// search never reads a property), the full structure + properties hash
/// otherwise — so graphs differing only in element identifiers (or, for
/// similarity, only in properties) share one entry, *across sessions and
/// processes*. The full [`SolverConfig`] is part of the key: in
/// particular a budget-exhausted (non-optimal) outcome cached under a
/// small `max_steps` can never be replayed for a larger budget, which
/// would wrongly report a truncated search as that budget's result.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct MemoKey {
    pub(crate) problem: Problem,
    pub(crate) lhs: u128,
    pub(crate) rhs: u128,
    pub(crate) config: SolverConfig,
}

/// The content hash under which `id`'s core is memo-addressed for
/// `problem`: structure-only for the property-blind
/// [`Problem::Similarity`], structure + properties otherwise. Both are
/// memoized in the session beside the WL fingerprints, so this is an
/// array lookup.
fn content_key(problem: Problem, session: &CorpusSession, id: GraphId) -> u128 {
    if problem == Problem::Similarity {
        session.content_shape_hash(id)
    } else {
        session.content_full_hash(id)
    }
}

/// One cached outcome plus its bookkeeping.
struct MemoEntry {
    outcome: Arc<DenseOutcome>,
    /// Logical-clock tick of the last hit or insert (drives LRU-ish
    /// batch eviction; ticks are globally unique per memo).
    last_used: u64,
    /// `true` when the entry was loaded from a persisted cache file
    /// rather than searched in this process — excluded from delta
    /// exports and counted separately on hits.
    from_disk: bool,
}

/// Content-addressed memo of dense solve outcomes, shared across batches,
/// calls, left-hand sides — and, through the persistence layer
/// ([`crate::persist`]), across sessions, processes and restarts.
///
/// The search never sees element identifiers, so a [`DenseOutcome`] is a
/// pure function of `(problem, left core, right core, config)` — the
/// same invariant the in-batch dense-solve sharing rests on, extended
/// across calls: the Table 2 matrix replays the same foreground against
/// many backgrounds in *separate* `solve_batch` calls, and similarity
/// classification re-confirms equivalent cores under several
/// representatives. Keys name the cores by their deterministic 128-bit
/// **content hashes** ([`provgraph::compiled::content_hashes`], memoized
/// per session member) — property-blind for [`Problem::Similarity`],
/// whose search never reads a property — plus the **full**
/// [`SolverConfig`], so a budget-exhausted outcome is only ever replayed
/// under the exact budget that produced it. Because content hashes are
/// interner-independent, an entry computed in one session (or one
/// process) is valid in every other: the memo may be shared across
/// sessions and warmed from a [`crate::persist`] cache file.
///
/// A memo hit returns byte-identically what the fresh search would have
/// returned — matching, cost, optimality flag and search statistics —
/// so memo-on and memo-off runs are indistinguishable in every solver
/// observable (pinned by `tests/differential_compiled.rs`). Hit/miss
/// accounting lives here, not in [`SolverStats`], precisely so cached
/// statistics stay bit-equal to fresh ones.
///
/// # Capacity and concurrency
///
/// The outcome map is sharded behind mutexes and solves run outside any
/// lock, so `par_map` fan-outs share the memo freely. Concurrent misses
/// on one key may duplicate a search, but every copy computes the same
/// value, so whichever insert lands the outcome is unchanged (only the
/// informational hit/miss counts can vary with scheduling). Each shard
/// holds at most its share of the capacity (default [`MEMO_CAP`],
/// configurable via [`SolveMemo::with_capacity`]); inserts past that
/// batch-evict the shard's least-recently-used quarter, counted by
/// [`SolveMemo::evictions`].
///
/// The memo is deliberately **not** serialized into session snapshots —
/// its persistence artifact is the [`crate::persist`] cache file, whose
/// integrity is checked on load like every other artifact.
pub struct SolveMemo {
    shards: [Mutex<FxHashMap<MemoKey, MemoEntry>>; MEMO_SHARDS],
    /// Per-shard entry cap (total capacity / [`MEMO_SHARDS`], ≥ 1).
    shard_cap: usize,
    /// Logical clock stamping hits and inserts (drives eviction order).
    tick: AtomicU64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Telemetry sink for memo hit/miss/eviction events, per-solve
    /// spans and cache load/save events. Disabled by default; attach
    /// with [`SolveMemo::with_tracer`]. Tracing is observably
    /// outcome-neutral: it never touches outcomes, search statistics
    /// or the hit/miss counters above.
    tracer: provtrace::Tracer,
}

impl Default for SolveMemo {
    fn default() -> Self {
        Self::with_capacity(MEMO_CAP)
    }
}

impl SolveMemo {
    /// Create an empty memo with the default capacity ([`MEMO_CAP`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty memo holding at most `capacity` entries in total
    /// (split evenly across shards, at least one per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        SolveMemo {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            shard_cap: (capacity / MEMO_SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tracer: provtrace::Tracer::disabled(),
        }
    }

    /// Attach a telemetry sink: every memo-aware solve through this
    /// memo then emits `memo.hit` / `memo.evict` events, per-search
    /// `solve` spans (steps, backtracks, solutions, optimality, cost)
    /// and `memo.*` counters. With the default disabled tracer the
    /// cost is one branch per event site — no allocation, no lock.
    pub fn with_tracer(mut self, tracer: provtrace::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached telemetry sink (disabled unless
    /// [`SolveMemo::with_tracer`] was used). Callers layering their own
    /// events around memo activity (cache merges, cell boundaries)
    /// emit through this same sink so one worker's records share one
    /// buffer.
    pub fn tracer(&self) -> &provtrace::Tracer {
        &self.tracer
    }

    /// Dense solves served from the cache so far (informational — never
    /// part of [`SolverStats`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The subset of [`SolveMemo::hits`] served by entries loaded from a
    /// persisted cache file rather than searched in this process.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Dense solves actually searched (and recorded) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by capacity eviction so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lock a memo shard, recovering from poisoning: every mutation
    /// under the lock is a plain map update, so a panicking peer leaves
    /// the shard consistent and the cache must stay usable.
    fn lock_shard(
        shard: &Mutex<FxHashMap<MemoKey, MemoEntry>>,
    ) -> std::sync::MutexGuard<'_, FxHashMap<MemoKey, MemoEntry>> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Entries currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| SolveMemo::lock_shard(s).len())
            .sum()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record `outcome` under `key` (first insert wins: an existing
    /// entry — racing thread or earlier cache load — is kept and
    /// returned). Evicts the shard's least-recently-used quarter first
    /// when the insert would exceed the shard cap.
    pub(crate) fn insert(
        &self,
        key: MemoKey,
        outcome: Arc<DenseOutcome>,
        from_disk: bool,
    ) -> Arc<DenseOutcome> {
        let mut shard = SolveMemo::lock_shard(self.shard(&key));
        if shard.len() >= self.shard_cap && !shard.contains_key(&key) {
            // Batch-evict the oldest quarter: `last_used` ticks are
            // globally unique, so the rank-select threshold drops
            // exactly `drop_n` entries and amortizes the O(shard) scan
            // over the next quarter-shard of inserts.
            let drop_n = (shard.len() / 4).max(1);
            let mut ticks: Vec<u64> = shard.values().map(|e| e.last_used).collect();
            let (_, &mut threshold, _) = ticks.select_nth_unstable(drop_n - 1);
            shard.retain(|_, e| e.last_used > threshold);
            self.evictions.fetch_add(drop_n as u64, Ordering::Relaxed);
            self.tracer.counter_add("memo.evictions", drop_n as u64);
            self.tracer.event("memo.evict", None, || {
                vec![("dropped", provtrace::Field::from(drop_n))]
            });
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let entry = shard.entry(key).or_insert(MemoEntry {
            outcome,
            last_used: 0,
            from_disk,
        });
        entry.last_used = tick;
        Arc::clone(&entry.outcome)
    }

    /// Snapshot every cached `(key, outcome)` pair — or, with
    /// `only_fresh`, only those searched in this process (the delta a
    /// worker publishes on top of the cache file it loaded).
    pub(crate) fn entries_snapshot(&self, only_fresh: bool) -> Vec<(MemoKey, Arc<DenseOutcome>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = SolveMemo::lock_shard(shard);
            out.extend(
                shard
                    .iter()
                    .filter(|(_, e)| !only_fresh || !e.from_disk)
                    .map(|(k, e)| (k.clone(), Arc::clone(&e.outcome))),
            );
        }
        out
    }

    /// The outcome shard responsible for `key`.
    fn shard(&self, key: &MemoKey) -> &Mutex<FxHashMap<MemoKey, MemoEntry>> {
        use std::hash::{Hash, Hasher};
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % MEMO_SHARDS]
    }
}

/// The memoized dense solve behind every memo-aware entry point:
/// content-address both cores, look the key up, search-and-record on a
/// miss. `prepared`, when given, must be a plan over `lhs`'s core (used
/// only when the search actually runs).
fn memoized_dense(
    memo: &SolveMemo,
    problem: Problem,
    session: &CorpusSession,
    lhs: GraphId,
    rhs: GraphId,
    config: &SolverConfig,
    prepared: Option<&PreparedLhs<'_>>,
) -> Arc<DenseOutcome> {
    let key = MemoKey {
        problem,
        lhs: content_key(problem, session, lhs),
        rhs: content_key(problem, session, rhs),
        config: config.clone(),
    };
    let hit = {
        let mut shard = SolveMemo::lock_shard(memo.shard(&key));
        if let Some(entry) = shard.get_mut(&key) {
            entry.last_used = memo.tick.fetch_add(1, Ordering::Relaxed);
            memo.hits.fetch_add(1, Ordering::Relaxed);
            if entry.from_disk {
                memo.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
            Some((Arc::clone(&entry.outcome), entry.from_disk))
        } else {
            None
        }
    };
    // Telemetry outside the shard lock: the tracer has its own buffer
    // lock and holding both at once would serialize unrelated solves.
    if let Some((outcome, from_disk)) = hit {
        memo.tracer.counter_add("memo.hits", 1);
        if from_disk {
            memo.tracer.counter_add("memo.disk_hits", 1);
        }
        memo.tracer.event("memo.hit", None, || {
            vec![("disk", provtrace::Field::from(from_disk))]
        });
        return outcome;
    }
    // Search outside the lock: two threads missing one key concurrently
    // duplicate the work but compute the same pure-function value, so
    // whichever insert lands first is the one everyone reads.
    memo.misses.fetch_add(1, Ordering::Relaxed);
    memo.tracer.counter_add("memo.misses", 1);
    let span = memo.tracer.span_enter("solve", None, || {
        vec![("problem", provtrace::Field::from(format!("{problem:?}")))]
    });
    // Colours come from the solved handles themselves (the solve runs
    // over their cores); content-equal cores have identical label and
    // adjacency arrays, so their shape colours — and hence every pruning
    // decision — are identical, keeping memo replays consistent.
    let dense = Arc::new(solve_dense(
        problem,
        session.graph(lhs).core(),
        session.graph(rhs).core(),
        config,
        prepared,
        Some((session.shape_colors(lhs), session.shape_colors(rhs))),
    ));
    memo.tracer.span_exit_with("solve", span, || {
        vec![
            ("steps", provtrace::Field::from(dense.stats.steps)),
            ("backtracks", provtrace::Field::from(dense.stats.backtracks)),
            ("solutions", provtrace::Field::from(dense.stats.solutions)),
            ("optimal", provtrace::Field::from(dense.optimal)),
            (
                "cost",
                dense
                    .best
                    .as_ref()
                    .map_or(provtrace::Field::I64(-1), |b| provtrace::Field::from(b.2)),
            ),
        ]
    });
    memo.insert(key, dense, false)
}

/// Shared implementation of the compiled entry points: search the cores,
/// then translate the dense witness through the carriers' id tables.
fn solve_named<G1: NamedGraph, G2: NamedGraph>(
    problem: Problem,
    g1: &G1,
    g2: &G2,
    config: &SolverConfig,
) -> Outcome {
    run_search(problem, g1, g2, config, None)
}

/// The one search driver behind every entry point. `prepared`, when
/// given, must be a plan over `g1`'s core for `problem`; the search then
/// builds its candidate state through the plan's label indexes (same
/// tables, cheaper construction).
fn run_search<G1: NamedGraph, G2: NamedGraph>(
    problem: Problem,
    g1: &G1,
    g2: &G2,
    config: &SolverConfig,
    prepared: Option<&PreparedLhs<'_>>,
) -> Outcome {
    let c1: &GraphCore = g1;
    let c2: &GraphCore = g2;
    translate(
        &solve_dense(problem, c1, c2, config, prepared, None),
        g1,
        g2,
    )
}

/// The identifier-free half of a solve: everything the search produces
/// before the witness is translated back to string ids. A pure function
/// of `(problem, left core, right core, config)` — element identifiers
/// are invisible to the search — which is what lets the batch path share
/// one dense solve across rights with solver-equivalent cores.
pub(crate) struct DenseOutcome {
    pub(crate) best: Option<BestSolution>,
    pub(crate) optimal: bool,
    pub(crate) stats: SolverStats,
}

/// Run pre-checks and the branch-and-bound search over the cores,
/// stopping short of witness translation.
///
/// `colors`, when given, must be the WL shape colours
/// ([`fingerprint::shape_colors_core`]) of `g1` and `g2` — session
/// entry points pass their memoized arrays. When `None` and the
/// configuration wants colour pruning, the colours are derived here
/// (the one-shot paths); pruning decisions read only the colour
/// equality pattern, which is interner-invariant, so both sources
/// yield identical searches.
///
/// [`fingerprint::shape_colors_core`]: provgraph::fingerprint::shape_colors_core
fn solve_dense(
    problem: Problem,
    g1: &GraphCore,
    g2: &GraphCore,
    config: &SolverConfig,
    prepared: Option<&PreparedLhs<'_>>,
    colors: Option<(&[u64], &[u64])>,
) -> DenseOutcome {
    let mut dense = DenseOutcome {
        best: None,
        optimal: true,
        stats: SolverStats::default(),
    };

    // Global pre-checks that make the problem trivially infeasible.
    if problem.bijective() {
        if g1.node_count() != g2.node_count()
            || g1.edge_count() != g2.edge_count()
            || g1.node_label_multiset() != g2.node_label_multiset()
            || g1.edge_label_multiset() != g2.edge_label_multiset()
        {
            return dense;
        }
    } else {
        if g1.node_count() > g2.node_count() || g1.edge_count() > g2.edge_count() {
            return dense;
        }
        if !multiset_leq(g1.node_label_multiset(), g2.node_label_multiset())
            || !multiset_leq(g1.edge_label_multiset(), g2.edge_label_multiset())
        {
            return dense;
        }
    }
    if g1.node_count() == 0 {
        // Possible only when g2 is also empty (bijective) or any g2
        // (subgraph): the empty matching, with no edges to place.
        dense.best = Some((Vec::new(), Vec::new(), 0));
        dense.stats.solutions = 1;
        return dense;
    }

    // WL shape colours are preserved by label-preserving bijections, so
    // they are a sound pruning signal exactly for the bijective
    // problems; embeddings (subgraph) do not preserve iterated colours.
    let derived: (Vec<u64>, Vec<u64>);
    let wl_colors = if config.dense_pruning && problem.bijective() {
        match colors {
            Some(c) => Some(c),
            None => {
                derived = (shape_colors_core(g1), shape_colors_core(g2));
                Some((derived.0.as_slice(), derived.1.as_slice()))
            }
        }
    } else {
        None
    };

    let scratch = SEARCH_SCRATCH.with(|cell| std::mem::take(&mut *cell.borrow_mut()));
    let mut search = Search::build(problem, g1, g2, config, prepared, wl_colors, scratch);
    search.run();
    dense.stats = search.stats;
    dense.optimal = !search.budget_exhausted;
    dense.best = search.best.take();
    SEARCH_SCRATCH.with(|cell| *cell.borrow_mut() = search.into_scratch());
    dense
}

/// Translate a dense outcome back to an [`Outcome`] through the
/// carriers' id tables — the only string work in the whole solve.
fn translate<G1: NamedGraph, G2: NamedGraph>(dense: &DenseOutcome, g1: &G1, g2: &G2) -> Outcome {
    Outcome {
        optimal: dense.optimal,
        stats: dense.stats,
        matching: dense.best.as_ref().map(|(node_assign, edge_pairs, cost)| {
            let node_map: BTreeMap<String, String> = node_assign
                .iter()
                .enumerate()
                .map(|(i, &j)| (g1.node_id(i as u32).to_owned(), g2.node_id(j).to_owned()))
                .collect();
            let edge_map: BTreeMap<String, String> = edge_pairs
                .iter()
                .map(|&(e1, e2)| (g1.edge_id(e1).to_owned(), g2.edge_id(e2).to_owned()))
                .collect();
            Matching {
                node_map,
                edge_map,
                cost: *cost,
            }
        }),
    }
}

/// `true` when two right-hand cores are indistinguishable to the search
/// for `problem`, so one dense solve serves both.
///
/// For [`Problem::Similarity`] this is structural equality alone: the
/// similarity search never reads a property — candidate filtering is
/// label + degree signature, consistency is edge-label counts, edge
/// placement costs are identically zero — so property rows cannot
/// influence any observable. Every other problem reads properties
/// (isomorphism filters on them; the optimizing problems cost them), so
/// full core equality is required.
fn cores_equivalent(problem: Problem, a: &GraphCore, b: &GraphCore) -> bool {
    if !a.same_structure(b) {
        return false;
    }
    problem == Problem::Similarity || a.same_props(b)
}

fn multiset_leq<T: Ord>(small: &[T], big: &[T]) -> bool {
    // Both inputs are sorted; check small ⊆ big as multisets.
    let mut i = 0;
    for x in small {
        while i < big.len() && big[i] < *x {
            i += 1;
        }
        if i >= big.len() || big[i] != *x {
            return false;
        }
        i += 1;
    }
    true
}

/// Sentinel for "not yet assigned" in the dense assignment array.
const UNASSIGNED: u32 = u32::MAX;

/// Reusable per-thread search allocations: the candidate tables, the
/// dense pair-cost matrix and the assignment state.
///
/// Every solve used to allocate these vectors from scratch; across a
/// batch (the batch solver fans rights out over a fixed thread pool, and
/// the pipeline's repeated solves stay on their worker thread) the same
/// thread rebuilds same-shaped tables over and over, so the allocations
/// are pure overhead. The pool hands the vectors to [`Search::build`],
/// which **clears and refills** them — every element is rewritten before
/// use, so reuse cannot leak state between solves and outcomes are
/// bit-identical to the allocate-fresh path (pinned, like every engine
/// change, by the differential tests including search statistics).
#[derive(Default)]
struct SearchScratch {
    cand_flat: Vec<u32>,
    cand_start: Vec<u32>,
    pair_cost: Vec<u64>,
    node_min_cost: Vec<u64>,
    assign: Vec<u32>,
    used: Vec<bool>,
    cand_buf: Vec<u32>,
    // Bitset-kernel buffers (filled only under `dense_pruning`); same
    // clear-and-refill discipline as the vectors above.
    dyn_bits: Vec<u64>,
    wl_bits: Vec<u64>,
    free_bits: Vec<u64>,
    mask_buf: Vec<u64>,
    seed_order: Vec<u32>,
    trail: Vec<(u32, u32, u64)>,
}

/// Element-capacity bound above which a scratch vector is dropped
/// instead of returned to the per-thread pool, so one pathological solve
/// cannot pin a huge buffer on a long-lived service thread (the same
/// hygiene rule as [`WARM_INTERNER_CAP`]).
const SCRATCH_CAP: usize = 1 << 22;

thread_local! {
    /// The per-thread scratch pool. Taken (not borrowed) for the
    /// duration of a dense solve, so a re-entrant solve on the same
    /// thread would simply fall back to fresh allocations.
    static SEARCH_SCRATCH: std::cell::RefCell<SearchScratch> =
        std::cell::RefCell::new(SearchScratch::default());
}

/// Clear `v` and return it to the pool, unless its capacity exceeds
/// [`SCRATCH_CAP`] elements (then drop it and pool an empty vector).
fn reclaim<T>(mut v: Vec<T>) -> Vec<T> {
    if v.capacity() > SCRATCH_CAP {
        return Vec::new();
    }
    v.clear();
    v
}

/// Best solution found so far: node assignment, edge pairing, total cost.
pub(crate) type BestSolution = (Vec<u32>, Vec<(u32, u32)>, u64);

struct Search<'a> {
    problem: Problem,
    config: &'a SolverConfig,
    g1: &'a GraphCore,
    g2: &'a GraphCore,
    n1: usize,
    n2: usize,
    /// Statically feasible candidates, flattened; node i's candidates are
    /// `cand_flat[cand_start[i]..cand_start[i+1]]`.
    cand_flat: Vec<u32>,
    cand_start: Vec<u32>,
    /// Dense pair-cost table (`i * n2 + j`); `u64::MAX` = incompatible.
    /// Empty for pure feasibility problems, where every pair costs zero.
    pair_cost: Vec<u64>,
    /// Admissible per-node lower bound (min static pair cost).
    node_min_cost: Vec<u64>,
    /// Admissible total lower bound contribution of all g1 edges.
    edge_cost_floor: u64,
    /// g2 edges grouped by (src, tgt, label) — assignment-independent,
    /// built lazily on the first complete assignment.
    groups2: Option<BTreeMap<(u32, u32, Symbol), Vec<u32>>>,
    // --- bitset kernel (dense_pruning) -----------------------------------
    /// `true` when the bitset kernel is active (`config.dense_pruning`).
    pruning: bool,
    /// `true` when WL-colour pruning is active (bitset kernel + bijective
    /// problem + colour arrays supplied/derived).
    wl_active: bool,
    /// `u64` words per right-hand bitset row (`n2.div_ceil(64)`).
    words: usize,
    /// Dynamic candidate domains, one `words`-wide row per left node:
    /// bit `j` of row `i` ⇔ `j` is statically feasible for `i` **and**
    /// adjacency-consistent with every currently assigned neighbour of
    /// `i` (with `forward_check` off the rows stay static). Maintained
    /// incrementally by word-parallel ANDs on assign, undone via `trail`.
    dyn_bits: Vec<u64>,
    /// WL-colour masks, one row per left node: bit `j` ⇔ `j` is a static
    /// candidate of `i` with the same iterated shape colour. Empty unless
    /// `wl_active`. Colour-preserving bijections can never map outside
    /// these masks, so they prune *provably doomed* subtrees only —
    /// outcomes are untouched, statistics shrink.
    wl_bits: Vec<u64>,
    /// Bit `j` ⇔ right node `j` is unassigned (the bitset mirror of
    /// `used`, kept so domain sizes are `popcount(dyn & free)`).
    free_bits: Vec<u64>,
    /// Per-assignment scratch row for the allowed-survivor mask built
    /// over `g2.neighbours(j)`.
    mask_buf: Vec<u64>,
    /// Left nodes ordered most-constrained-first (smallest pruned
    /// domain, then rarest WL colour class, then index) — the scan order
    /// of variable selection, chosen so wipeouts surface on the first
    /// few probes. Selection still minimizes the legacy MRV key, so the
    /// chosen variable (and hence the witness) is scan-order-invariant.
    seed_order: Vec<u32>,
    /// Undo log for `dyn_bits`: `(left node, word index, previous word)`
    /// per changed word; `descend` truncates to its saved mark.
    trail: Vec<(u32, u32, u64)>,
    // --- search state ----------------------------------------------------
    assign: Vec<u32>,
    used: Vec<bool>,
    /// Build-time per-node candidate buffer, carried only so
    /// [`Search::into_scratch`] can return it to the per-thread pool.
    cand_buf: Vec<u32>,
    /// Sum of pair costs of currently assigned nodes (incremental).
    partial_cost: u64,
    /// Sum of `node_min_cost` over currently unassigned nodes (incremental).
    unassigned_floor: u64,
    stats: SolverStats,
    budget_exhausted: bool,
    best: Option<BestSolution>,
    best_cost: u64,
    /// Global lower bound; reaching it allows immediate termination.
    global_floor: u64,
}

impl<'a> Search<'a> {
    /// Build the per-solve search state. With a prepared left-hand plan
    /// (`lhs`, which must be over `g1` for `problem`), the right graph
    /// is indexed by the plan's left labels once and only same-label
    /// pairs are visited; without one, the full grid is scanned. Both
    /// paths run every pair through the same filters, so the resulting
    /// tables — and therefore the search and its statistics — are
    /// identical.
    ///
    /// The candidate tables, pair-cost matrix and assignment state are
    /// filled into `scratch`'s (cleared) vectors rather than fresh
    /// allocations; [`Search::into_scratch`] returns them to the pool.
    fn build(
        problem: Problem,
        g1: &'a GraphCore,
        g2: &'a GraphCore,
        config: &'a SolverConfig,
        lhs: Option<&PreparedLhs<'_>>,
        wl_colors: Option<(&[u64], &[u64])>,
        scratch: SearchScratch,
    ) -> Self {
        let n1 = g1.node_count();
        let n2 = g2.node_count();
        let bijective = problem.bijective();
        let optimizing = problem.optimizing();
        let pruning = config.dense_pruning;
        let wl_active = pruning && wl_colors.is_some();
        let words = if pruning { n2.div_ceil(64) } else { 0 };
        if let Some((c1, c2)) = wl_colors {
            debug_assert_eq!(c1.len(), n1, "left colour array length");
            debug_assert_eq!(c2.len(), n2, "right colour array length");
        }

        // Right nodes bucketed by label, restricted to labels that occur
        // on the left (one pass over g2, reused by every left node).
        let rhs_by_label: Option<FxHashMap<Symbol, Vec<u32>>> = lhs.map(|lhs| {
            debug_assert!(
                std::ptr::eq(lhs.core, g1),
                "prepared plan used with a different left graph"
            );
            debug_assert_eq!(
                lhs.problem, problem,
                "prepared plan for a different problem"
            );
            let mut buckets: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
            for j in 0..n2 as u32 {
                let label = g2.node_label(j);
                if lhs.node_label_counts.contains_key(&label) {
                    buckets.entry(label).or_default().push(j);
                }
            }
            buckets
        });

        let SearchScratch {
            mut cand_flat,
            mut cand_start,
            mut pair_cost,
            mut node_min_cost,
            mut assign,
            mut used,
            cand_buf: mut scratch,
            mut dyn_bits,
            mut wl_bits,
            mut free_bits,
            mut mask_buf,
            mut seed_order,
            mut trail,
        } = scratch;
        cand_flat.clear();
        cand_start.clear();
        cand_start.reserve(n1 + 1);
        cand_start.push(0);
        // Feasibility problems cost zero everywhere — skip the table.
        pair_cost.clear();
        if optimizing {
            pair_cost.resize(n1 * n2, u64::MAX);
        }
        node_min_cost.clear();
        node_min_cost.reserve(n1);
        assign.clear();
        assign.resize(n1, UNASSIGNED);
        used.clear();
        used.resize(n2, false);
        scratch.clear();
        scratch.reserve(n2);
        dyn_bits.clear();
        wl_bits.clear();
        free_bits.clear();
        mask_buf.clear();
        seed_order.clear();
        trail.clear();
        if pruning {
            dyn_bits.resize(n1 * words, 0);
            // Bits past n2 in the last word stay set but are never set in
            // any dyn/wl row, and every read ANDs against one.
            free_bits.resize(words, u64::MAX);
            mask_buf.resize(words, 0);
            if wl_active {
                wl_bits.resize(n1 * words, 0);
            }
        }
        // The per-pair candidate filter, shared verbatim by both
        // construction paths.
        let consider = |i: u32,
                        j: u32,
                        scratch: &mut Vec<u32>,
                        pair_cost: &mut Vec<u64>,
                        min_cost: &mut u64| {
            if g1.node_label(i) != g2.node_label(j) {
                return;
            }
            if problem == Problem::Isomorphism && g1.node_props(i) != g2.node_props(j) {
                return;
            }
            if config.degree_filter {
                let ok = if bijective {
                    g1.degree_sig(i) == g2.degree_sig(j)
                } else {
                    degree_sig_leq(g1.degree_sig(i), g2.degree_sig(j))
                };
                if !ok {
                    return;
                }
            }
            if optimizing {
                let cost = node_pair_cost(problem, g1.node_props(i), g2.node_props(j));
                pair_cost[i as usize * n2 + j as usize] = cost;
                *min_cost = (*min_cost).min(cost);
            }
            scratch.push(j);
        };
        for i in 0..n1 as u32 {
            scratch.clear();
            let mut min_cost = u64::MAX;
            match &rhs_by_label {
                Some(buckets) => {
                    // Bucket rows are ascending in j, so candidate order
                    // matches the full scan's.
                    if let Some(bucket) = buckets.get(&g1.node_label(i)) {
                        for &j in bucket {
                            consider(i, j, &mut scratch, &mut pair_cost, &mut min_cost);
                        }
                    }
                }
                None => {
                    for j in 0..n2 as u32 {
                        consider(i, j, &mut scratch, &mut pair_cost, &mut min_cost);
                    }
                }
            }
            if config.order_by_cost && optimizing {
                // Stable by cost: ties keep insertion order, exactly like
                // the string path (and trivially so for feasibility
                // problems, where the sort would be an all-ties no-op).
                scratch.sort_by_key(|&j| pair_cost[i as usize * n2 + j as usize]);
            }
            if pruning {
                let row = i as usize * words;
                for &j in scratch.iter() {
                    dyn_bits[row + (j as usize >> 6)] |= 1u64 << (j & 63);
                }
                if let Some((c1, c2)) = wl_colors {
                    let mut wl_min = u64::MAX;
                    for &j in scratch.iter() {
                        if c1[i as usize] == c2[j as usize] {
                            wl_bits[row + (j as usize >> 6)] |= 1u64 << (j & 63);
                            if optimizing {
                                wl_min = wl_min.min(pair_cost[i as usize * n2 + j as usize]);
                            }
                        }
                    }
                    if optimizing {
                        // Tightened admissible floor: every feasible
                        // bijection maps `i` inside its colour class, so
                        // the per-node minimum may ignore
                        // colour-mismatched pairs. Raising the floor only
                        // skips branches whose completions all cost at
                        // least the incumbent — the strict-improvement
                        // sequence, and hence the witness, is unchanged.
                        min_cost = wl_min;
                    }
                }
            }
            node_min_cost.push(if min_cost == u64::MAX { 0 } else { min_cost });
            cand_flat.extend_from_slice(&scratch);
            cand_start.push(cand_flat.len() as u32);
        }

        if pruning {
            // Seed order: most-constrained-first over the *pruned* static
            // domains (then rarest right-hand colour class, then index).
            // This is only the scan order of variable selection — the MRV
            // minimum itself is scan-order-invariant — so it accelerates
            // wipeout detection without perturbing any outcome.
            let mut color_count: FxHashMap<u64, u32> = FxHashMap::default();
            if let Some((_, c2)) = wl_colors {
                for &c in c2 {
                    *color_count.entry(c).or_insert(0) += 1;
                }
            }
            seed_order.extend(0..n1 as u32);
            seed_order.sort_by_key(|&i| {
                let row = i as usize * words;
                let bits = if wl_active {
                    &wl_bits[row..row + words]
                } else {
                    &dyn_bits[row..row + words]
                };
                let domain: u32 = bits.iter().map(|w| w.count_ones()).sum();
                let class = wl_colors
                    .map(|(c1, _)| color_count.get(&c1[i as usize]).copied().unwrap_or(0))
                    .unwrap_or(0);
                (domain, class, i)
            });
        }

        // Admissible edge-cost floor: each g1 edge costs at least the
        // minimum mismatch against any same-label g2 edge. (Per-edge
        // minima are order-independent, so the label-grouped prepared
        // path sums the exact same floor as the full scan.)
        let mut edge_cost_floor = 0u64;
        if optimizing {
            match lhs {
                Some(lhs) => {
                    let mut rhs_edges: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
                    for e2 in 0..g2.edge_count() as u32 {
                        let label = g2.edge_label(e2);
                        if lhs.edge_groups.contains_key(&label) {
                            rhs_edges.entry(label).or_default().push(e2);
                        }
                    }
                    for (label, es1) in &lhs.edge_groups {
                        let Some(es2) = rhs_edges.get(label) else {
                            continue;
                        };
                        for &e1 in es1 {
                            let mut min_c = u64::MAX;
                            for &e2 in es2 {
                                min_c = min_c.min(edge_pair_cost(
                                    problem,
                                    g1.edge_props(e1),
                                    g2.edge_props(e2),
                                ));
                            }
                            if min_c != u64::MAX {
                                edge_cost_floor += min_c;
                            }
                        }
                    }
                }
                None => {
                    for e1 in 0..g1.edge_count() as u32 {
                        let mut min_c = u64::MAX;
                        for e2 in 0..g2.edge_count() as u32 {
                            if g1.edge_label(e1) != g2.edge_label(e2) {
                                continue;
                            }
                            min_c = min_c.min(edge_pair_cost(
                                problem,
                                g1.edge_props(e1),
                                g2.edge_props(e2),
                            ));
                        }
                        if min_c != u64::MAX {
                            edge_cost_floor += min_c;
                        }
                    }
                }
            }
        }
        let unassigned_floor = node_min_cost.iter().sum::<u64>();
        let global_floor = unassigned_floor + edge_cost_floor;

        Search {
            problem,
            config,
            g1,
            g2,
            n1,
            n2,
            cand_flat,
            cand_start,
            pair_cost,
            node_min_cost,
            edge_cost_floor,
            groups2: None,
            pruning,
            wl_active,
            words,
            dyn_bits,
            wl_bits,
            free_bits,
            mask_buf,
            seed_order,
            trail,
            assign,
            used,
            cand_buf: scratch,
            partial_cost: 0,
            unassigned_floor,
            stats: SolverStats::default(),
            budget_exhausted: false,
            best: None,
            best_cost: u64::MAX,
            global_floor,
        }
    }

    #[inline]
    fn cost_of(&self, i: u32, j: u32) -> u64 {
        if self.pair_cost.is_empty() {
            0
        } else {
            self.pair_cost[i as usize * self.n2 + j as usize]
        }
    }

    #[inline]
    fn candidates(&self, i: u32) -> (usize, usize) {
        (
            self.cand_start[i as usize] as usize,
            self.cand_start[i as usize + 1] as usize,
        )
    }

    /// Dismantle the search, returning its reusable allocations to a
    /// [`SearchScratch`] (each vector cleared, oversized ones dropped).
    fn into_scratch(self) -> SearchScratch {
        SearchScratch {
            cand_flat: reclaim(self.cand_flat),
            cand_start: reclaim(self.cand_start),
            pair_cost: reclaim(self.pair_cost),
            node_min_cost: reclaim(self.node_min_cost),
            assign: reclaim(self.assign),
            used: reclaim(self.used),
            cand_buf: reclaim(self.cand_buf),
            dyn_bits: reclaim(self.dyn_bits),
            wl_bits: reclaim(self.wl_bits),
            free_bits: reclaim(self.free_bits),
            mask_buf: reclaim(self.mask_buf),
            seed_order: reclaim(self.seed_order),
            trail: reclaim(self.trail),
        }
    }

    fn run(&mut self) {
        // A node with zero candidates makes the problem infeasible.
        if self.cand_start.windows(2).any(|w| w[0] == w[1]) {
            return;
        }
        // A node with no colour-compatible candidate is just as
        // infeasible for a bijective problem: colour-preserving maps
        // cannot leave the colour class. The legacy path would search
        // and find nothing — outcome identical, statistics smaller.
        if self.wl_active {
            for i in 0..self.n1 {
                let row = i * self.words;
                if self.wl_bits[row..row + self.words].iter().all(|&w| w == 0) {
                    return;
                }
            }
        }
        self.descend(0);
    }

    #[inline]
    fn dyn_bit(&self, i: u32, j: u32) -> bool {
        self.dyn_bits[i as usize * self.words + (j as usize >> 6)] >> (j & 63) & 1 != 0
    }

    #[inline]
    fn wl_bit(&self, i: u32, j: u32) -> bool {
        self.wl_bits[i as usize * self.words + (j as usize >> 6)] >> (j & 63) & 1 != 0
    }

    #[inline]
    fn free_bit(&self, j: u32) -> bool {
        self.free_bits[j as usize >> 6] >> (j & 63) & 1 != 0
    }

    /// `depth` = number of assigned nodes so far.
    fn descend(&mut self, depth: usize) -> bool {
        if self.budget_exhausted {
            return true;
        }
        if depth == self.n1 {
            return self.complete();
        }
        let var = match self.select_variable() {
            Some(v) => v,
            None => return false, // some node has no remaining candidate
        };
        let (start, end) = self.candidates(var);
        for ci in start..end {
            let j = self.cand_flat[ci];
            if self.pruning {
                // One word-indexed probe replaces the legacy `used` test
                // and the per-neighbour `consistent` walk: the dynamic
                // row already encodes adjacency consistency with every
                // assigned neighbour (and stays static with
                // `forward_check` off, reproducing naive semantics).
                if !self.free_bit(j) || !self.dyn_bit(var, j) {
                    continue;
                }
                // A colour-mismatched pair heads a provably solution-free
                // subtree (no colour-preserving bijection extends it), so
                // it is skipped before the step counter: outcomes are
                // untouched, statistics shrink deterministically.
                if self.wl_active && !self.wl_bit(var, j) {
                    continue;
                }
            } else {
                if self.used[j as usize] {
                    continue;
                }
                if self.config.forward_check && !self.consistent(var, j) {
                    continue;
                }
            }
            self.stats.steps += 1;
            if self.stats.steps > self.config.max_steps {
                self.budget_exhausted = true;
                return true;
            }
            let pair = self.cost_of(var, j);
            if self.config.cost_bound && self.problem.optimizing() {
                // Incrementally maintained bound: assigned cost + this
                // pair + floors of the other unassigned nodes + edges.
                let bound = self.partial_cost
                    + pair
                    + self.edge_cost_floor
                    + (self.unassigned_floor - self.node_min_cost[var as usize]);
                if bound >= self.best_cost {
                    continue;
                }
            }
            self.assign[var as usize] = j;
            self.used[j as usize] = true;
            self.partial_cost += pair;
            self.unassigned_floor -= self.node_min_cost[var as usize];
            let trail_mark = self.trail.len();
            if self.pruning {
                self.free_bits[j as usize >> 6] &= !(1u64 << (j & 63));
                if self.config.forward_check {
                    self.restrict_neighbours(var, j);
                }
            }
            let stop = self.descend(depth + 1);
            if self.pruning {
                while self.trail.len() > trail_mark {
                    // provlint: allow(panic-in-lib) -- trail_mark was captured from this trail before descent
                    let (n, w, old) = self.trail.pop().expect("trail mark within bounds");
                    self.dyn_bits[n as usize * self.words + w as usize] = old;
                }
                self.free_bits[j as usize >> 6] |= 1u64 << (j & 63);
            }
            self.assign[var as usize] = UNASSIGNED;
            self.used[j as usize] = false;
            self.partial_cost -= pair;
            self.unassigned_floor += self.node_min_cost[var as usize];
            if stop {
                return true;
            }
        }
        self.stats.backtracks += 1;
        false
    }

    /// Word-parallel forward propagation of `var → j`: every unassigned
    /// g1-neighbour `n` of `var` loses the candidates that are not
    /// adjacency-consistent with the new assignment, by one AND per row
    /// word. Changed words are logged to `trail` for undo.
    ///
    /// Survivors are necessarily g2-neighbours of `j` — `n` is adjacent
    /// to `var`, so some direction of `g1.pair_labels` is non-empty and
    /// any image of `n` must carry the matching g2 edge(s) to `j` — so
    /// the allowed mask is built over `g2.neighbours(j)` only. The
    /// resulting rows equal exactly the legacy `consistent` predicate
    /// over the currently assigned set (induction over the assignment
    /// stack), which is what keeps step counts identical to the vector
    /// path modulo the WL skips.
    fn restrict_neighbours(&mut self, var: u32, j: u32) {
        let g1 = self.g1;
        let g2 = self.g2;
        let words = self.words;
        let mut mask = std::mem::take(&mut self.mask_buf);
        for &n in g1.neighbours(var) {
            if self.assign[n as usize] != UNASSIGNED {
                continue;
            }
            mask.iter_mut().for_each(|w| *w = 0);
            for &m in g2.neighbours(j) {
                if self.pair_edges_ok(n, var, m, j) && self.pair_edges_ok(var, n, j, m) {
                    mask[m as usize >> 6] |= 1u64 << (m & 63);
                }
            }
            let row = n as usize * words;
            for (w, &allowed) in mask.iter().enumerate() {
                let old = self.dyn_bits[row + w];
                let new = old & allowed;
                if new != old {
                    self.trail.push((n, w as u32, old));
                    self.dyn_bits[row + w] = new;
                }
            }
        }
        self.mask_buf = mask;
    }

    /// Minimum-remaining-values with a preference for nodes adjacent to the
    /// already-assigned frontier.
    fn select_variable(&self) -> Option<u32> {
        if self.pruning {
            return self.select_variable_bitset();
        }
        let mut best: Option<(usize, usize, u32)> = None; // (remaining, -adjacency, var)
        for i in 0..self.n1 as u32 {
            if self.assign[i as usize] != UNASSIGNED {
                continue;
            }
            let mut remaining = 0usize;
            let (start, end) = self.candidates(i);
            for ci in start..end {
                let j = self.cand_flat[ci];
                if !self.used[j as usize] && (!self.config.forward_check || self.consistent(i, j)) {
                    remaining += 1;
                }
            }
            if remaining == 0 {
                return None;
            }
            let adjacency = self
                .g1
                .neighbours(i)
                .iter()
                .filter(|&&n| self.assign[n as usize] != UNASSIGNED)
                .count();
            let key = (remaining, usize::MAX - adjacency, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Bitset MRV: domain sizes are `popcount(dyn & free)` per row word
    /// instead of a candidate walk with per-pair consistency probes.
    ///
    /// The MRV key counts the **unpruned** dynamic domain — identical to
    /// the legacy count — so the selected variable, and with it the
    /// witness, never depends on the WL signal; colours only contribute
    /// the early `None` when some node's colour-compatible domain wipes
    /// out (a state with no feasible completion either way). Scanning in
    /// `seed_order` surfaces wipeouts early; the minimum itself is
    /// scan-order-invariant because the key totalizes on the node index.
    fn select_variable_bitset(&self) -> Option<u32> {
        let mut best: Option<(usize, usize, u32)> = None; // (remaining, -adjacency, var)
        for &i in &self.seed_order {
            if self.assign[i as usize] != UNASSIGNED {
                continue;
            }
            let row = i as usize * self.words;
            let mut remaining = 0usize;
            let mut wl_remaining = 0usize;
            for w in 0..self.words {
                let live = self.dyn_bits[row + w] & self.free_bits[w];
                remaining += live.count_ones() as usize;
                if self.wl_active {
                    wl_remaining += (live & self.wl_bits[row + w]).count_ones() as usize;
                }
            }
            if remaining == 0 || (self.wl_active && wl_remaining == 0) {
                return None;
            }
            let adjacency = self
                .g1
                .neighbours(i)
                .iter()
                .filter(|&&n| self.assign[n as usize] != UNASSIGNED)
                .count();
            let key = (remaining, usize::MAX - adjacency, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Is mapping node `i` → `j` consistent with every assigned neighbour?
    fn consistent(&self, i: u32, j: u32) -> bool {
        for &n in self.g1.neighbours(i) {
            let jn = self.assign[n as usize];
            if jn == UNASSIGNED {
                continue;
            }
            if !self.pair_edges_ok(i, n, j, jn) || !self.pair_edges_ok(n, i, jn, j) {
                return false;
            }
        }
        true
    }

    /// Check edge-count compatibility for the ordered pair (a→b) vs (x→y):
    /// a sorted-slice compare, no map probing, no allocation.
    #[inline]
    fn pair_edges_ok(&self, a: u32, b: u32, x: u32, y: u32) -> bool {
        let c1 = self.g1.pair_labels(a, b);
        let c2 = self.g2.pair_labels(x, y);
        if self.problem.bijective() {
            c1 == c2
        } else {
            label_counts_leq(c1, c2)
        }
    }

    /// All nodes assigned: place edges group-by-group and record solution.
    /// Returns `true` when the search can stop globally.
    fn complete(&mut self) -> bool {
        let node_cost = self.partial_cost;
        if self.problem.optimizing() && node_cost + self.edge_cost_floor >= self.best_cost {
            return false;
        }
        if self.groups2.is_none() {
            // Built on the first complete assignment only: infeasible
            // searches never pay for it.
            let mut groups: BTreeMap<(u32, u32, Symbol), Vec<u32>> = BTreeMap::new();
            for e in 0..self.g2.edge_count() as u32 {
                groups
                    .entry((
                        self.g2.edge_src(e),
                        self.g2.edge_tgt(e),
                        self.g2.edge_label(e),
                    ))
                    .or_default()
                    .push(e);
            }
            self.groups2 = Some(groups);
        }
        let Some((edge_pairs, edge_cost)) = self.place_edges() else {
            return false;
        };
        self.stats.solutions += 1;
        let total = node_cost + edge_cost;
        if total < self.best_cost {
            self.best_cost = total;
            self.best = Some((self.assign.clone(), edge_pairs, total));
        }
        if !self.problem.optimizing() {
            return true; // first feasible solution suffices
        }
        // Optimal as soon as we hit the admissible global floor.
        self.best_cost <= self.global_floor
    }

    /// Assign g1 edges to g2 edges given the complete node map.
    fn place_edges(&self) -> Option<(Vec<(u32, u32)>, u64)> {
        // provlint: allow(panic-in-lib) -- complete() populates groups2 before place_edges is reachable
        let groups2 = self.groups2.as_ref().expect("groups built in complete()");
        // Group g1 edges by mapped (src, tgt, label).
        let mut groups1: BTreeMap<(u32, u32, Symbol), Vec<u32>> = BTreeMap::new();
        for e in 0..self.g1.edge_count() as u32 {
            let s = self.assign[self.g1.edge_src(e) as usize];
            let t = self.assign[self.g1.edge_tgt(e) as usize];
            groups1
                .entry((s, t, self.g1.edge_label(e)))
                .or_default()
                .push(e);
        }
        if self.problem.bijective() {
            // Every g2 edge must be covered by an equal-size g1 group.
            if groups1.len() != groups2.len() {
                return None;
            }
            for (k, v2) in groups2 {
                if groups1.get(k).map(Vec::len) != Some(v2.len()) {
                    return None;
                }
            }
        }
        let mut edge_pairs = Vec::with_capacity(self.g1.edge_count());
        let mut total_cost = 0u64;
        for (key, es1) in &groups1 {
            let es2 = groups2.get(key)?;
            if es1.len() > es2.len() {
                return None;
            }
            let cost_matrix: Vec<Vec<u64>> = es1
                .iter()
                .map(|&e1| {
                    es2.iter()
                        .map(|&e2| {
                            let p1 = self.g1.edge_props(e1);
                            let p2 = self.g2.edge_props(e2);
                            if self.problem == Problem::Isomorphism && p1 != p2 {
                                FORBIDDEN
                            } else {
                                edge_pair_cost(self.problem, p1, p2)
                            }
                        })
                        .collect()
                })
                .collect();
            let (cols, cost) = min_cost_assignment(&cost_matrix)?;
            total_cost += cost;
            for (row, col) in cols.into_iter().enumerate() {
                edge_pairs.push((es1[row], es2[col]));
            }
        }
        Some((edge_pairs, total_cost))
    }
}

fn node_pair_cost(problem: Problem, p1: &[(Symbol, Symbol)], p2: &[(Symbol, Symbol)]) -> u64 {
    match problem {
        Problem::Similarity | Problem::Isomorphism => 0,
        Problem::Generalization => symmetric_prop_diff(p1, p2),
        Problem::Subgraph => one_sided_prop_diff(p1, p2),
    }
}

fn edge_pair_cost(problem: Problem, p1: &[(Symbol, Symbol)], p2: &[(Symbol, Symbol)]) -> u64 {
    node_pair_cost(problem, p1, p2)
}

/// Build-time candidate domains of a dense search, exposed for the
/// differential domain proptests (`tests/pruned_search.rs`). Not part of
/// the public API contract.
#[doc(hidden)]
#[derive(Debug)]
pub struct DebugDomains {
    /// Legacy vector candidates per left node, in search order
    /// (cost-sorted when `order_by_cost` applies).
    pub candidates: Vec<Vec<u32>>,
    /// Bitset domain per left node, decoded to ascending right ids;
    /// empty when `dense_pruning` is off.
    pub bitset: Vec<Vec<u32>>,
    /// WL-colour-surviving candidates per left node (ascending right
    /// ids); `None` when colour pruning is inactive for this
    /// problem/config (non-bijective problem or pruning off).
    pub wl: Option<Vec<Vec<u32>>>,
}

/// Compile `g1`/`g2` against a fresh interner and expose the dense
/// search's build-time candidate state — the introspection hook behind
/// the bitset/WL domain differential tests. Skips the global
/// feasibility pre-checks on purpose: domains are compared even for
/// pairs the full solve would reject early.
#[doc(hidden)]
pub fn debug_domains(
    problem: Problem,
    g1: &PropertyGraph,
    g2: &PropertyGraph,
    config: &SolverConfig,
) -> DebugDomains {
    let mut interner = Interner::new();
    let c1 = CompiledGraph::compile(g1, &mut interner);
    let c2 = CompiledGraph::compile(g2, &mut interner);
    let core1: &GraphCore = &c1;
    let core2: &GraphCore = &c2;
    let derived: (Vec<u64>, Vec<u64>);
    let wl_colors = if config.dense_pruning && problem.bijective() {
        derived = (shape_colors_core(core1), shape_colors_core(core2));
        Some((derived.0.as_slice(), derived.1.as_slice()))
    } else {
        None
    };
    let search = Search::build(
        problem,
        core1,
        core2,
        config,
        None,
        wl_colors,
        SearchScratch::default(),
    );
    let n1 = core1.node_count();
    let n2 = core2.node_count() as u32;
    let words = search.words;
    let candidates = (0..n1)
        .map(|i| {
            let (s, e) = search.candidates(i as u32);
            search.cand_flat[s..e].to_vec()
        })
        .collect();
    let decode = |bits: &[u64], i: usize| -> Vec<u32> {
        let row = &bits[i * words..(i + 1) * words];
        (0..n2)
            .filter(|&j| row[j as usize >> 6] >> (j & 63) & 1 != 0)
            .collect()
    };
    let bitset = if search.pruning {
        (0..n1).map(|i| decode(&search.dyn_bits, i)).collect()
    } else {
        Vec::new()
    };
    let wl = search
        .wl_active
        .then(|| (0..n1).map(|i| decode(&search.wl_bits, i)).collect());
    DebugDomains {
        candidates,
        bitset,
        wl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(build: impl FnOnce(&mut PropertyGraph)) -> PropertyGraph {
        let mut graph = PropertyGraph::new();
        build(&mut graph);
        graph
    }

    fn triangle(prefix: &str) -> PropertyGraph {
        g(|g| {
            for i in 0..3 {
                g.add_node(format!("{prefix}{i}"), "N").unwrap();
            }
            for i in 0..3 {
                g.add_edge(
                    format!("{prefix}e{i}"),
                    format!("{prefix}{i}"),
                    format!("{prefix}{}", (i + 1) % 3),
                    "r",
                )
                .unwrap();
            }
        })
    }

    #[test]
    fn triangle_similar_to_relabelled_triangle() {
        let a = triangle("a");
        let b = triangle("b");
        let m = solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map.len(), 3);
        assert_eq!(m.edge_map.len(), 3);
        assert_eq!(m.cost, 0);
        // The witness must be structure-preserving.
        for (e1, e2) in &m.edge_map {
            let d1 = a.edge(e1).unwrap();
            let d2 = b.edge(e2).unwrap();
            assert_eq!(m.node_map[&d1.src], d2.src);
            assert_eq!(m.node_map[&d1.tgt], d2.tgt);
        }
    }

    #[test]
    fn triangle_not_similar_to_path() {
        let a = triangle("a");
        let path = g(|g| {
            for i in 0..3 {
                g.add_node(format!("p{i}"), "N").unwrap();
            }
            g.add_edge("e0", "p0", "p1", "r").unwrap();
            g.add_edge("e1", "p1", "p2", "r").unwrap();
            g.add_edge("e2", "p0", "p2", "r").unwrap();
        });
        assert!(
            solve(Problem::Similarity, &a, &path, &SolverConfig::default())
                .matching
                .is_none()
        );
    }

    #[test]
    fn label_mismatch_fails_fast() {
        let a = g(|g| {
            g.add_node("x", "A").unwrap();
        });
        let b = g(|g| {
            g.add_node("y", "B").unwrap();
        });
        let out = solve(Problem::Similarity, &a, &b, &SolverConfig::default());
        assert!(out.matching.is_none());
        assert!(out.optimal);
        assert_eq!(out.stats.steps, 0, "must fail in the pre-check");
    }

    #[test]
    fn isomorphism_requires_equal_properties() {
        let a = g(|g| {
            g.add_node("x", "A").unwrap();
            g.set_node_property("x", "k", "1").unwrap();
        });
        let b = g(|g| {
            g.add_node("y", "A").unwrap();
            g.set_node_property("y", "k", "2").unwrap();
        });
        assert!(
            solve(Problem::Isomorphism, &a, &b, &SolverConfig::default())
                .matching
                .is_none()
        );
        assert!(solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .is_some());
    }

    #[test]
    fn generalization_minimizes_property_mismatch() {
        // Two nodes with same label; pairing by matching "name" property
        // costs 2 (the volatile timestamps), the wrong pairing costs 6.
        let a = g(|g| {
            g.add_node("a1", "F").unwrap();
            g.set_node_property("a1", "name", "alpha").unwrap();
            g.set_node_property("a1", "time", "100").unwrap();
            g.add_node("a2", "F").unwrap();
            g.set_node_property("a2", "name", "beta").unwrap();
            g.set_node_property("a2", "time", "101").unwrap();
        });
        let b = g(|g| {
            g.add_node("b1", "F").unwrap();
            g.set_node_property("b1", "name", "beta").unwrap();
            g.set_node_property("b1", "time", "200").unwrap();
            g.add_node("b2", "F").unwrap();
            g.set_node_property("b2", "name", "alpha").unwrap();
            g.set_node_property("b2", "time", "201").unwrap();
        });
        let m = solve(Problem::Generalization, &a, &b, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["a1"], "b2");
        assert_eq!(m.node_map["a2"], "b1");
        assert_eq!(m.cost, 4, "two volatile timestamps, counted on both sides");
    }

    #[test]
    fn subgraph_finds_embedding_with_extra_structure() {
        let bg = g(|g| {
            g.add_node("p", "Process").unwrap();
            g.add_node("f", "Artifact").unwrap();
            g.add_edge("e", "p", "f", "Used").unwrap();
        });
        let fg = g(|g| {
            g.add_node("q", "Process").unwrap();
            g.add_node("x", "Artifact").unwrap();
            g.add_node("y", "Artifact").unwrap();
            g.add_edge("e1", "q", "x", "Used").unwrap();
            g.add_edge("e2", "q", "y", "WasGeneratedBy").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["p"], "q");
        assert_eq!(m.node_map["f"], "x");
        assert_eq!(m.edge_map["e"], "e1");
    }

    #[test]
    fn subgraph_prefers_property_matching_image() {
        let bg = g(|g| {
            g.add_node("f", "Artifact").unwrap();
            g.set_node_property("f", "path", "/tmp/t").unwrap();
        });
        let fg = g(|g| {
            g.add_node("x", "Artifact").unwrap();
            g.set_node_property("x", "path", "/lib/libc").unwrap();
            g.add_node("y", "Artifact").unwrap();
            g.set_node_property("y", "path", "/tmp/t").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["f"], "y");
        assert_eq!(m.cost, 0);
    }

    #[test]
    fn subgraph_respects_structure_over_properties() {
        // The property-perfect node is not structurally viable.
        let bg = g(|g| {
            g.add_node("p", "P").unwrap();
            g.add_node("f", "F").unwrap();
            g.add_edge("e", "p", "f", "r").unwrap();
            g.set_node_property("f", "name", "t").unwrap();
        });
        let fg = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("isolated", "F").unwrap();
            g.set_node_property("isolated", "name", "t").unwrap();
            g.add_node("linked", "F").unwrap();
            g.set_node_property("linked", "name", "other").unwrap();
            g.add_edge("e1", "q", "linked", "r").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["f"], "linked");
        assert_eq!(m.cost, 1);
    }

    #[test]
    fn subgraph_infeasible_when_larger() {
        let bg = triangle("a");
        let fg = g(|g| {
            g.add_node("x", "N").unwrap();
        });
        let out = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default());
        assert!(out.matching.is_none());
        assert!(out.optimal);
    }

    #[test]
    fn empty_bg_embeds_into_anything() {
        let bg = PropertyGraph::new();
        let fg = triangle("a");
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn empty_graphs_are_similar() {
        let out = solve(
            Problem::Similarity,
            &PropertyGraph::new(),
            &PropertyGraph::new(),
            &SolverConfig::default(),
        );
        assert!(out.matching.unwrap().is_empty());
    }

    #[test]
    fn multigraph_edge_counts_respected() {
        // Two parallel edges in bg require two in fg.
        let bg = g(|g| {
            g.add_node("p", "P").unwrap();
            g.add_node("f", "F").unwrap();
            g.add_edge("e1", "p", "f", "r").unwrap();
            g.add_edge("e2", "p", "f", "r").unwrap();
        });
        let fg_one = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("x", "F").unwrap();
            g.add_edge("e", "q", "x", "r").unwrap();
            g.add_edge("other", "x", "q", "r").unwrap();
        });
        assert!(
            solve(Problem::Subgraph, &bg, &fg_one, &SolverConfig::default())
                .matching
                .is_none()
        );
        let fg_two = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("x", "F").unwrap();
            g.add_edge("f1", "q", "x", "r").unwrap();
            g.add_edge("f2", "q", "x", "r").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg_two, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.edge_map.len(), 2);
        // Injective on edges.
        assert_ne!(m.edge_map["e1"], m.edge_map["e2"]);
    }

    #[test]
    fn multigraph_parallel_edge_costs_optimally_assigned() {
        let bg = g(|g| {
            g.add_node("p", "P").unwrap();
            g.add_node("f", "F").unwrap();
            for (e, v) in [("e1", "1"), ("e2", "2")] {
                g.add_edge(e, "p", "f", "r").unwrap();
                g.set_edge_property(e, "seq", v).unwrap();
            }
        });
        let fg = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("x", "F").unwrap();
            for (e, v) in [("f2", "2"), ("f1", "1"), ("f3", "3")] {
                g.add_edge(e, "q", "x", "r").unwrap();
                g.set_edge_property(e, "seq", v).unwrap();
            }
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.cost, 0);
        assert_eq!(m.edge_map["e1"], "f1");
        assert_eq!(m.edge_map["e2"], "f2");
    }

    #[test]
    fn bijective_requires_all_g2_edges_covered() {
        // Same node multiset, same edge count, but edges placed such that
        // no bijection exists.
        let a = g(|g| {
            g.add_node("a", "N").unwrap();
            g.add_node("b", "N").unwrap();
            g.add_edge("e1", "a", "b", "r").unwrap();
            g.add_edge("e2", "a", "b", "r").unwrap();
        });
        let b = g(|g| {
            g.add_node("x", "N").unwrap();
            g.add_node("y", "N").unwrap();
            g.add_edge("f1", "x", "y", "r").unwrap();
            g.add_edge("f2", "y", "x", "r").unwrap();
        });
        assert!(solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .is_none());
    }

    #[test]
    fn naive_config_agrees_with_default() {
        let a = triangle("a");
        let mut b = triangle("b");
        b.set_node_property("b1", "time", "42").unwrap();
        let full = solve(Problem::Generalization, &a, &b, &SolverConfig::default());
        let naive = solve(Problem::Generalization, &a, &b, &SolverConfig::naive());
        assert_eq!(
            full.matching.as_ref().map(|m| m.cost),
            naive.matching.as_ref().map(|m| m.cost)
        );
        assert!(full.optimal && naive.optimal);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A graph with many interchangeable nodes explodes the naive search.
        let make = |p: &str| {
            g(|g| {
                for i in 0..12 {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                }
            })
        };
        let a = make("a");
        let b = make("b");
        let cfg = SolverConfig {
            max_steps: 5,
            ..SolverConfig::naive()
        };
        let out = solve(Problem::Similarity, &a, &b, &cfg);
        // Either it happened to finish (it should: first dive is a valid
        // bijection) or it reports non-optimality — but never both empty
        // and "optimal".
        if out.matching.is_none() {
            assert!(!out.optimal);
        }
    }

    #[test]
    fn self_loops_matched() {
        let a = g(|g| {
            g.add_node("x", "N").unwrap();
            g.add_edge("e", "x", "x", "loop").unwrap();
        });
        let b = g(|g| {
            g.add_node("y", "N").unwrap();
            g.add_edge("f", "y", "y", "loop").unwrap();
        });
        let m = solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["x"], "y");
        assert_eq!(m.edge_map["e"], "f");
        // A self-loop is not similar to a plain edge.
        let c = g(|g| {
            g.add_node("y", "N").unwrap();
            g.add_node("z", "N").unwrap();
            g.add_edge("f", "y", "z", "loop").unwrap();
        });
        assert!(solve(Problem::Subgraph, &a, &c, &SolverConfig::default())
            .matching
            .is_none());
    }

    #[test]
    fn star_graph_automorphisms_handled() {
        // A star with 6 identical leaves has 720 automorphisms; the solver
        // must still terminate instantly on feasibility problems.
        let star = |p: &str| {
            g(|g| {
                g.add_node(format!("{p}hub"), "Hub").unwrap();
                for i in 0..6 {
                    g.add_node(format!("{p}leaf{i}"), "Leaf").unwrap();
                    g.add_edge(
                        format!("{p}e{i}"),
                        format!("{p}hub"),
                        format!("{p}leaf{i}"),
                        "spoke",
                    )
                    .unwrap();
                }
            })
        };
        let out = solve(
            Problem::Similarity,
            &star("a"),
            &star("b"),
            &SolverConfig::default(),
        );
        assert!(out.matching.is_some());
        assert!(out.optimal);
        assert!(out.stats.steps < 100, "steps: {}", out.stats.steps);
    }

    #[test]
    fn pruning_reduces_search_effort() {
        // A chain matched against a copy whose nodes are inserted in
        // reverse order: the naive search's candidate order is maximally
        // wrong, while degree filtering + forward checking cut through.
        let chain = |p: &str, order: &mut dyn Iterator<Item = usize>| {
            g(|g| {
                for i in order {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                }
                for i in 0..6 {
                    g.add_edge(
                        format!("{p}e{i}"),
                        format!("{p}{i}"),
                        format!("{p}{}", i + 1),
                        "r",
                    )
                    .unwrap();
                }
            })
        };
        let a = chain("a", &mut (0..7));
        let b = chain("b", &mut (0..7).rev());
        let smart = solve(Problem::Similarity, &a, &b, &SolverConfig::default());
        let naive = solve(Problem::Similarity, &a, &b, &SolverConfig::naive());
        assert!(smart.matching.is_some() && naive.matching.is_some());
        assert!(
            smart.stats.steps < naive.stats.steps,
            "pruned {} vs naive {}",
            smart.stats.steps,
            naive.stats.steps
        );
    }

    #[test]
    fn generalization_on_disconnected_components() {
        let make = |p: &str, t: &str| {
            g(|g| {
                g.add_node(format!("{p}1"), "A").unwrap();
                g.add_node(format!("{p}2"), "A").unwrap();
                g.set_node_property(&format!("{p}1"), "name", "one")
                    .unwrap();
                g.set_node_property(&format!("{p}1"), "t", t).unwrap();
                g.set_node_property(&format!("{p}2"), "name", "two")
                    .unwrap();
                g.set_node_property(&format!("{p}2"), "t", t).unwrap();
            })
        };
        let m = solve(
            Problem::Generalization,
            &make("x", "5"),
            &make("y", "9"),
            &SolverConfig::default(),
        )
        .matching
        .unwrap();
        // Optimal pairing aligns names; cost = 2 volatile props × 2 sides.
        assert_eq!(m.node_map["x1"], "y1");
        assert_eq!(m.cost, 4);
    }

    #[test]
    fn subgraph_budget_reports_best_effort() {
        let many = |p: &str, n: usize| {
            g(|g| {
                for i in 0..n {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                }
            })
        };
        let cfg = SolverConfig {
            max_steps: 3,
            ..SolverConfig::naive()
        };
        let out = solve(Problem::Subgraph, &many("a", 8), &many("b", 9), &cfg);
        // Either found quickly or flagged non-optimal — never a silent wrong answer.
        if out.matching.is_none() {
            assert!(!out.optimal);
        }
    }

    #[test]
    fn stats_populated() {
        let a = triangle("a");
        let b = triangle("b");
        let out = solve(Problem::Similarity, &a, &b, &SolverConfig::default());
        assert!(out.stats.steps >= 3);
        assert_eq!(out.stats.solutions, 1);
    }

    #[test]
    fn solve_in_matches_session_members() {
        // The corpus-session call pattern: compile everything once, then
        // match members pairwise with zero per-call compile cost.
        let a = triangle("a");
        let b = triangle("b");
        let c = g(|g| {
            g.add_node("only", "N").unwrap();
        });
        let mut session = CorpusSession::new();
        let ia = session.add(&a);
        let ib = session.add(&b);
        let ic = session.add(&c);
        let cfg = SolverConfig::default();
        let m = solve_in(Problem::Similarity, &session, ia, ib, &cfg)
            .matching
            .expect("triangles similar");
        assert_eq!(m.node_map.len(), 3);
        // Witness identifiers resolve to the original strings.
        assert!(m.node_map.keys().all(|k| k.starts_with('a')));
        assert!(m.node_map.values().all(|v| v.starts_with('b')));
        assert!(solve_in(Problem::Similarity, &session, ia, ic, &cfg)
            .matching
            .is_none());
        // Session outcomes equal the one-shot path in full.
        let oneshot = solve(Problem::Similarity, &a, &b, &cfg);
        let in_session = solve_in(Problem::Similarity, &session, ia, ib, &cfg);
        assert_eq!(oneshot.matching, in_session.matching);
        assert_eq!(oneshot.stats, in_session.stats);
    }

    #[test]
    fn batch_solver_matches_per_pair_session_path() {
        let a = triangle("a");
        let mut b = triangle("b");
        // A property perturbation drives the optimizing problems off the
        // zero-cost diagonal, exercising the prepared pair-cost table.
        b.set_node_property("b1", "time", "42").unwrap();
        let c = g(|g| {
            g.add_node("only", "N").unwrap();
        });
        let mut session = CorpusSession::new();
        let ia = session.add(&a);
        let ib = session.add(&b);
        let ic = session.add(&c);
        let cfg = SolverConfig::default();
        let rhs = [ia, ib, ic];
        for problem in [
            Problem::Similarity,
            Problem::Isomorphism,
            Problem::Generalization,
            Problem::Subgraph,
        ] {
            let batch = solve_batch_in(problem, &session, ia, &rhs, &cfg);
            assert_eq!(batch.len(), rhs.len());
            for (out, &r) in batch.iter().zip(&rhs) {
                let per_pair = solve_in(problem, &session, ia, r, &cfg);
                assert_eq!(out.matching, per_pair.matching, "{problem:?}");
                assert_eq!(out.optimal, per_pair.optimal, "{problem:?}");
                assert_eq!(out.stats, per_pair.stats, "{problem:?}");
            }
        }
        // A kept solver reuses one plan across batches and single solves.
        let solver = BatchSolver::new(Problem::Similarity, &session, ia, cfg);
        assert_eq!(solver.problem(), Problem::Similarity);
        assert_eq!(solver.lhs(), ia);
        assert!(solver.solve_one(ib).matching.is_some());
        assert!(solver.solve_one(ic).matching.is_none());
        assert!(solver.solve_batch(&[]).is_empty());
    }

    #[test]
    fn solve_compiled_reuses_precompiled_graphs() {
        // Compile once, match the same g1 against two partners — the
        // amortized call pattern of similarity classification.
        let a = triangle("a");
        let b = triangle("b");
        let c = g(|g| {
            g.add_node("only", "N").unwrap();
        });
        let mut interner = Interner::new();
        let ca = CompiledGraph::compile(&a, &mut interner);
        let cb = CompiledGraph::compile(&b, &mut interner);
        let cc = CompiledGraph::compile(&c, &mut interner);
        let cfg = SolverConfig::default();
        assert!(solve_compiled(Problem::Similarity, &ca, &cb, &cfg)
            .matching
            .is_some());
        assert!(solve_compiled(Problem::Similarity, &ca, &cc, &cfg)
            .matching
            .is_none());
        // And the wrapper agrees.
        assert!(solve(Problem::Similarity, &a, &b, &cfg).matching.is_some());
    }

    #[test]
    fn memo_shares_across_calls_and_left_sides() {
        let a = triangle("a");
        let b = triangle("b");
        let a_again = triangle("x"); // same core as `a`, different handle
        let mut session = CorpusSession::new();
        let ia = session.add(&a);
        let ib = session.add(&b);
        let ix = session.add(&a_again);
        let cfg = SolverConfig::default();
        let memo = SolveMemo::new();
        // First batch populates the memo.
        let first =
            solve_batch_in_memo(Problem::Similarity, &session, ia, &[ib], &cfg, Some(&memo));
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 0);
        // A separate call replaying the same pair is a pure hit.
        let replay =
            solve_batch_in_memo(Problem::Similarity, &session, ia, &[ib], &cfg, Some(&memo));
        assert_eq!(memo.hits(), 1);
        // A *different left handle* with an equivalent core hits too —
        // the cross-left-side sharing the per-batch path cannot do.
        let cross_left = solve_in_memo(Problem::Similarity, &session, ix, ib, &cfg, Some(&memo));
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 1);
        // Every memo outcome equals the memo-off solve in full, with the
        // witness translated through the *actual* carriers.
        for (out, lhs) in [(&first[0], ia), (&replay[0], ia), (&cross_left, ix)] {
            let plain = solve_in(Problem::Similarity, &session, lhs, ib, &cfg);
            assert_eq!(out.matching, plain.matching);
            assert_eq!(out.optimal, plain.optimal);
            assert_eq!(out.stats, plain.stats);
        }
        let m = cross_left.matching.expect("triangles similar");
        assert!(m.node_map.keys().all(|k| k.starts_with('x')));
    }

    #[test]
    fn memo_keys_are_property_blind_only_for_similarity() {
        let a = triangle("a");
        let mut b = triangle("b");
        b.set_node_property("b0", "time", "1").unwrap();
        let mut c = triangle("c");
        c.set_node_property("c0", "time", "2").unwrap();
        let mut session = CorpusSession::new();
        let ia = session.add(&a);
        let ib = session.add(&b);
        let ic = session.add(&c);
        let cfg = SolverConfig::default();
        let memo = SolveMemo::new();
        // Similarity never reads a property, so b and c share one entry.
        solve_in_memo(Problem::Similarity, &session, ia, ib, &cfg, Some(&memo));
        solve_in_memo(Problem::Similarity, &session, ia, ic, &cfg, Some(&memo));
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // Isomorphism reads properties: distinct rows, distinct entries —
        // and the memoed verdicts still equal the memo-off ones.
        let iso_b = solve_in_memo(Problem::Isomorphism, &session, ia, ib, &cfg, Some(&memo));
        let iso_c = solve_in_memo(Problem::Isomorphism, &session, ia, ic, &cfg, Some(&memo));
        assert_eq!((memo.hits(), memo.misses()), (1, 3));
        assert!(iso_b.matching.is_none() && iso_c.matching.is_none());
    }

    #[test]
    fn memo_does_not_reuse_budget_exhausted_outcomes_under_larger_budget() {
        // Pathological pair: many interchangeable nodes whose properties
        // make the optimizing search explore, so a tiny step budget
        // exhausts before any complete assignment exists.
        let make = |p: &str, shift: usize| {
            g(|g| {
                for i in 0..10 {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                    g.set_node_property(&format!("{p}{i}"), "t", ((i + shift) % 10).to_string())
                        .unwrap();
                }
            })
        };
        let a = make("a", 0);
        let b = make("b", 0);
        let mut session = CorpusSession::new();
        let ia = session.add(&a);
        let ib = session.add(&b);
        let memo = SolveMemo::new();
        let small = SolverConfig {
            max_steps: 4,
            ..SolverConfig::naive()
        };
        let exhausted = solve_in_memo(
            Problem::Generalization,
            &session,
            ia,
            ib,
            &small,
            Some(&memo),
        );
        assert!(
            !exhausted.optimal && exhausted.matching.is_none(),
            "4 steps cannot assign 10 nodes"
        );
        // A larger budget must trigger a fresh search (the budget is part
        // of the memo key), not replay the truncated outcome.
        let full_cfg = SolverConfig::default();
        let full = solve_in_memo(
            Problem::Generalization,
            &session,
            ia,
            ib,
            &full_cfg,
            Some(&memo),
        );
        assert!(
            full.optimal,
            "larger budget must not reuse the exhausted outcome"
        );
        assert_eq!(full.matching.as_ref().map(|m| m.cost), Some(0));
        let plain = solve_in(Problem::Generalization, &session, ia, ib, &full_cfg);
        assert_eq!(full.matching, plain.matching);
        assert_eq!(full.stats, plain.stats);
        assert_eq!(memo.hits(), 0, "distinct budgets are distinct keys");
        // Replaying the *same* small budget is a legal hit and reproduces
        // the exhausted outcome bit-for-bit.
        let replay = solve_in_memo(
            Problem::Generalization,
            &session,
            ia,
            ib,
            &small,
            Some(&memo),
        );
        assert_eq!(memo.hits(), 1);
        assert_eq!(replay.optimal, exhausted.optimal);
        assert_eq!(replay.matching, exhausted.matching);
        assert_eq!(replay.stats, exhausted.stats);
    }
}
