//! Branch-and-bound search engine for the graph matching problems.
//!
//! The engine searches over *node* mappings only: once every g1 node has an
//! image, the edges decompose into independent groups keyed by
//! `(mapped source, mapped target, label)` and each group is an assignment
//! problem solved exactly by the Hungarian algorithm
//! ([`crate::min_cost_assignment`]). This two-level decomposition is what
//! makes the NP-complete subgraph isomorphism instances from provenance
//! graphs tractable in practice (paper §5.1 establishes "minutes rather
//! than days"; we do better on the simulated substrate).

use std::collections::{BTreeMap, HashMap};

use provgraph::{Props, PropertyGraph};

use crate::assignment::{min_cost_assignment, FORBIDDEN};
use crate::matching::{Matching, Outcome};

/// Which matching problem to solve (see crate docs for the paper mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Bijection preserving structure + labels; properties ignored
    /// (paper Listing 3).
    Similarity,
    /// Bijection preserving structure + labels + exact properties.
    Isomorphism,
    /// Bijection preserving structure + labels, minimizing the number of
    /// properties in the symmetric difference of matched pairs (§3.4).
    Generalization,
    /// Injective embedding of g1 into g2 preserving structure + labels,
    /// minimizing g1 properties unmatched on the image (paper Listing 4).
    Subgraph,
}

impl Problem {
    fn bijective(self) -> bool {
        !matches!(self, Problem::Subgraph)
    }

    fn optimizing(self) -> bool {
        matches!(self, Problem::Generalization | Problem::Subgraph)
    }
}

/// Tuning knobs for the search; the defaults enable every pruning rule.
///
/// The individual switches exist for the solver ablation benchmark
/// (`ablation_solver`), which quantifies what each rule buys.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Budget on candidate assignments tried before giving up and
    /// returning the best solution found so far (`optimal = false`).
    pub max_steps: u64,
    /// Prune candidates whose per-label degree signature is incompatible.
    pub degree_filter: bool,
    /// Check adjacency consistency against already-assigned neighbours at
    /// every assignment (forward checking).
    pub forward_check: bool,
    /// Prune branches whose cost lower bound meets the incumbent.
    pub cost_bound: bool,
    /// Try cheap candidates first (best-first value ordering).
    pub order_by_cost: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_steps: 10_000_000,
            degree_filter: true,
            forward_check: true,
            cost_bound: true,
            order_by_cost: true,
        }
    }
}

impl SolverConfig {
    /// A configuration with every optimization disabled — pure generate
    /// and test over label-compatible candidates (the ablation baseline).
    pub fn naive() -> Self {
        SolverConfig {
            max_steps: 10_000_000,
            degree_filter: false,
            forward_check: false,
            cost_bound: false,
            order_by_cost: false,
        }
    }
}

/// Search statistics, reported for every run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Candidate node assignments attempted.
    pub steps: u64,
    /// Dead ends that forced the search to undo an assignment.
    pub backtracks: u64,
    /// Complete (feasible) solutions encountered.
    pub solutions: u64,
}

/// Solve `problem` matching `g1` against `g2`.
///
/// For bijective problems the graphs must have identical element counts and
/// label multisets or the result is immediately infeasible. The returned
/// [`Outcome`] carries the optimal matching (or `None`), an optimality
/// flag, and search statistics.
pub fn solve(
    problem: Problem,
    g1: &PropertyGraph,
    g2: &PropertyGraph,
    config: &SolverConfig,
) -> Outcome {
    let mut outcome = Outcome {
        matching: None,
        optimal: true,
        stats: SolverStats::default(),
    };

    // Global pre-checks that make the problem trivially infeasible.
    if problem.bijective() {
        if g1.node_count() != g2.node_count()
            || g1.edge_count() != g2.edge_count()
            || g1.node_label_multiset() != g2.node_label_multiset()
            || g1.edge_label_multiset() != g2.edge_label_multiset()
        {
            return outcome;
        }
    } else {
        if g1.node_count() > g2.node_count() || g1.edge_count() > g2.edge_count() {
            return outcome;
        }
        if !multiset_leq(&g1.node_label_multiset(), &g2.node_label_multiset())
            || !multiset_leq(&g1.edge_label_multiset(), &g2.edge_label_multiset())
        {
            return outcome;
        }
    }
    if g1.node_count() == 0 {
        // Possible only when g2 is also empty (bijective) or any g2
        // (subgraph): the empty matching, with no edges to place.
        outcome.matching = Some(Matching::default());
        outcome.stats.solutions = 1;
        return outcome;
    }

    let mut search = Search::new(problem, g1, g2, config);
    search.run();
    outcome.stats = search.stats;
    outcome.optimal = !search.budget_exhausted;
    outcome.matching = search.best.take().map(|(node_assign, edge_map, cost)| {
        let node_map: BTreeMap<String, String> = node_assign
            .iter()
            .enumerate()
            .map(|(i, &j)| (search.ids1[i].clone(), search.ids2[j].clone()))
            .collect();
        Matching {
            node_map,
            edge_map,
            cost,
        }
    });
    outcome
}

fn multiset_leq<T: Ord>(small: &[T], big: &[T]) -> bool {
    // Both inputs are sorted; check small ⊆ big as multisets.
    let mut i = 0;
    for x in small {
        while i < big.len() && big[i] < *x {
            i += 1;
        }
        if i >= big.len() || big[i] != *x {
            return false;
        }
        i += 1;
    }
    true
}

/// Per-node signature: for each (direction, edge label) the number of
/// incident edges. Direction 0 = outgoing, 1 = incoming.
type DegreeSig = BTreeMap<(u8, String), usize>;

struct Search<'a> {
    problem: Problem,
    config: &'a SolverConfig,
    g1: &'a PropertyGraph,
    g2: &'a PropertyGraph,
    ids1: Vec<String>,
    ids2: Vec<String>,
    idx2: HashMap<String, usize>,
    /// adjacency label counts between node index pairs
    adj1: HashMap<(usize, usize), BTreeMap<String, usize>>,
    adj2: HashMap<(usize, usize), BTreeMap<String, usize>>,
    /// neighbours of each g1 node (for forward checking)
    neigh1: Vec<Vec<usize>>,
    /// statically feasible candidates for each g1 node
    candidates: Vec<Vec<usize>>,
    /// pair costs for statically feasible pairs
    pair_cost: HashMap<(usize, usize), u64>,
    /// admissible per-node lower bound (min static pair cost)
    node_min_cost: Vec<u64>,
    /// admissible total lower bound contribution of all g1 edges
    edge_cost_floor: u64,
    // search state
    assign: Vec<Option<usize>>,
    used: Vec<bool>,
    stats: SolverStats,
    budget_exhausted: bool,
    best: Option<(Vec<usize>, BTreeMap<String, String>, u64)>,
    best_cost: u64,
    /// global lower bound; reaching it allows immediate termination
    global_floor: u64,
}

impl<'a> Search<'a> {
    fn new(
        problem: Problem,
        g1: &'a PropertyGraph,
        g2: &'a PropertyGraph,
        config: &'a SolverConfig,
    ) -> Self {
        let ids1: Vec<String> = g1.nodes().map(|n| n.id.clone()).collect();
        let ids2: Vec<String> = g2.nodes().map(|n| n.id.clone()).collect();
        let idx1: HashMap<String, usize> = ids1
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let idx2: HashMap<String, usize> = ids2
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();

        let mut adj1: HashMap<(usize, usize), BTreeMap<String, usize>> = HashMap::new();
        let mut neigh1: Vec<Vec<usize>> = vec![Vec::new(); ids1.len()];
        for e in g1.edges() {
            let s = idx1[&e.src];
            let t = idx1[&e.tgt];
            *adj1
                .entry((s, t))
                .or_default()
                .entry(e.label.as_str().to_owned())
                .or_default() += 1;
            if !neigh1[s].contains(&t) {
                neigh1[s].push(t);
            }
            if !neigh1[t].contains(&s) {
                neigh1[t].push(s);
            }
        }
        let mut adj2: HashMap<(usize, usize), BTreeMap<String, usize>> = HashMap::new();
        for e in g2.edges() {
            let s = idx2[&e.src];
            let t = idx2[&e.tgt];
            *adj2
                .entry((s, t))
                .or_default()
                .entry(e.label.as_str().to_owned())
                .or_default() += 1;
        }

        let sig = |g: &PropertyGraph, id: &str| -> DegreeSig {
            let mut s = DegreeSig::new();
            for e in g.out_edges(id) {
                *s.entry((0, e.label.as_str().to_owned())).or_default() += 1;
            }
            for e in g.in_edges(id) {
                *s.entry((1, e.label.as_str().to_owned())).or_default() += 1;
            }
            s
        };
        let sigs1: Vec<DegreeSig> = ids1.iter().map(|id| sig(g1, id)).collect();
        let sigs2: Vec<DegreeSig> = ids2.iter().map(|id| sig(g2, id)).collect();

        let bijective = problem.bijective();
        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(ids1.len());
        let mut pair_cost: HashMap<(usize, usize), u64> = HashMap::new();
        let mut node_min_cost: Vec<u64> = Vec::with_capacity(ids1.len());
        for (i, n1) in g1.nodes().enumerate() {
            let mut cands = Vec::new();
            let mut min_cost = u64::MAX;
            for (j, n2) in g2.nodes().enumerate() {
                if n1.label != n2.label {
                    continue;
                }
                if problem == Problem::Isomorphism && n1.props != n2.props {
                    continue;
                }
                if config.degree_filter {
                    let ok = if bijective {
                        sigs1[i] == sigs2[j]
                    } else {
                        sig_leq(&sigs1[i], &sigs2[j])
                    };
                    if !ok {
                        continue;
                    }
                }
                let cost = node_pair_cost(problem, &n1.props, &n2.props);
                pair_cost.insert((i, j), cost);
                min_cost = min_cost.min(cost);
                cands.push(j);
            }
            if config.order_by_cost {
                cands.sort_by_key(|&j| pair_cost[&(i, j)]);
            }
            node_min_cost.push(if min_cost == u64::MAX { 0 } else { min_cost });
            candidates.push(cands);
        }

        // Admissible edge-cost floor: each g1 edge costs at least the
        // minimum mismatch against any same-label g2 edge.
        let mut edge_cost_floor = 0u64;
        if problem.optimizing() {
            for e1 in g1.edges() {
                let mut min_c = u64::MAX;
                for e2 in g2.edges() {
                    if e1.label != e2.label {
                        continue;
                    }
                    min_c = min_c.min(edge_pair_cost(problem, &e1.props, &e2.props));
                }
                if min_c != u64::MAX {
                    edge_cost_floor += min_c;
                }
            }
        }
        let global_floor = node_min_cost.iter().sum::<u64>() + edge_cost_floor;

        let n2 = ids2.len();
        let n1 = ids1.len();
        Search {
            problem,
            config,
            g1,
            g2,
            ids1,
            ids2,
            idx2,
            adj1,
            adj2,
            neigh1,
            candidates,
            pair_cost,
            node_min_cost,
            edge_cost_floor,
            assign: vec![None; n1],
            used: vec![false; n2],
            stats: SolverStats::default(),
            budget_exhausted: false,
            best: None,
            best_cost: u64::MAX,
            global_floor,
        }
    }

    fn run(&mut self) {
        // A node with zero candidates makes the problem infeasible.
        if self.candidates.iter().any(|c| c.is_empty()) {
            return;
        }
        self.descend(0);
    }

    /// `depth` = number of assigned nodes so far.
    fn descend(&mut self, depth: usize) -> bool {
        if self.budget_exhausted {
            return true;
        }
        if depth == self.assign.len() {
            return self.complete();
        }
        let var = match self.select_variable() {
            Some(v) => v,
            None => return false, // some node has no remaining candidate
        };
        let cands = self.candidates[var].clone();
        for j in cands {
            if self.used[j] {
                continue;
            }
            if self.config.forward_check && !self.consistent(var, j) {
                continue;
            }
            self.stats.steps += 1;
            if self.stats.steps > self.config.max_steps {
                self.budget_exhausted = true;
                return true;
            }
            if self.config.cost_bound && self.problem.optimizing() {
                let bound = self.partial_cost_with(var, j) + self.remaining_floor(var);
                if bound >= self.best_cost {
                    continue;
                }
            }
            self.assign[var] = Some(j);
            self.used[j] = true;
            let stop = self.descend(depth + 1);
            self.assign[var] = None;
            self.used[j] = false;
            if stop {
                return true;
            }
        }
        self.stats.backtracks += 1;
        false
    }

    /// Minimum-remaining-values with a preference for nodes adjacent to the
    /// already-assigned frontier.
    fn select_variable(&self) -> Option<usize> {
        let mut best: Option<(usize, usize, usize)> = None; // (remaining, -adjacency, var)
        for i in 0..self.assign.len() {
            if self.assign[i].is_some() {
                continue;
            }
            let mut remaining = 0usize;
            for &j in &self.candidates[i] {
                if !self.used[j] && (!self.config.forward_check || self.consistent(i, j)) {
                    remaining += 1;
                }
            }
            if remaining == 0 {
                return None;
            }
            let adjacency = self.neigh1[i]
                .iter()
                .filter(|&&n| self.assign[n].is_some())
                .count();
            let key = (remaining, usize::MAX - adjacency, i);
            if best.map_or(true, |b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Is mapping node `i` → `j` consistent with every assigned neighbour?
    fn consistent(&self, i: usize, j: usize) -> bool {
        for &n in &self.neigh1[i] {
            let Some(jn) = self.assign[n] else { continue };
            if !self.pair_edges_ok(i, n, j, jn) || !self.pair_edges_ok(n, i, jn, j) {
                return false;
            }
        }
        true
    }

    /// Check edge-count compatibility for the ordered pair (a→b) vs (x→y).
    fn pair_edges_ok(&self, a: usize, b: usize, x: usize, y: usize) -> bool {
        let empty = BTreeMap::new();
        let c1 = self.adj1.get(&(a, b)).unwrap_or(&empty);
        let c2 = self.adj2.get(&(x, y)).unwrap_or(&empty);
        if self.problem.bijective() {
            c1 == c2
        } else {
            c1.iter().all(|(l, &n)| c2.get(l).copied().unwrap_or(0) >= n)
        }
    }

    fn partial_cost_with(&self, var: usize, j: usize) -> u64 {
        let mut cost = self.pair_cost[&(var, j)];
        for (i, a) in self.assign.iter().enumerate() {
            if let Some(jj) = a {
                cost += self.pair_cost[&(i, *jj)];
            }
        }
        cost
    }

    fn remaining_floor(&self, excluding: usize) -> u64 {
        let mut floor = self.edge_cost_floor;
        for (i, a) in self.assign.iter().enumerate() {
            if a.is_none() && i != excluding {
                floor += self.node_min_cost[i];
            }
        }
        floor
    }

    /// All nodes assigned: place edges group-by-group and record solution.
    /// Returns `true` when the search can stop globally.
    fn complete(&mut self) -> bool {
        let node_cost: u64 = self
            .assign
            .iter()
            .enumerate()
            .map(|(i, a)| self.pair_cost[&(i, a.expect("complete assignment"))])
            .sum();
        if self.problem.optimizing() && node_cost + self.edge_cost_floor >= self.best_cost {
            return false;
        }
        let Some((edge_map, edge_cost)) = self.place_edges() else {
            return false;
        };
        self.stats.solutions += 1;
        let total = node_cost + edge_cost;
        if total < self.best_cost {
            self.best_cost = total;
            let assign: Vec<usize> = self.assign.iter().map(|a| a.unwrap()).collect();
            self.best = Some((assign, edge_map, total));
        }
        if !self.problem.optimizing() {
            return true; // first feasible solution suffices
        }
        // Optimal as soon as we hit the admissible global floor.
        self.best_cost <= self.global_floor
    }

    /// Assign g1 edges to g2 edges given the complete node map.
    fn place_edges(&self) -> Option<(BTreeMap<String, String>, u64)> {
        // Group g1 edges by mapped (src, tgt, label).
        let mut groups1: BTreeMap<(usize, usize, String), Vec<&provgraph::EdgeData>> =
            BTreeMap::new();
        for e in self.g1.edges() {
            let s = self.assign[self.node_index1(&e.src)].expect("assigned");
            let t = self.assign[self.node_index1(&e.tgt)].expect("assigned");
            groups1
                .entry((s, t, e.label.as_str().to_owned()))
                .or_default()
                .push(e);
        }
        let mut groups2: BTreeMap<(usize, usize, String), Vec<&provgraph::EdgeData>> =
            BTreeMap::new();
        for e in self.g2.edges() {
            let s = self.idx2[&e.src];
            let t = self.idx2[&e.tgt];
            groups2
                .entry((s, t, e.label.as_str().to_owned()))
                .or_default()
                .push(e);
        }
        if self.problem.bijective() {
            // Every g2 edge must be covered by an equal-size g1 group.
            if groups1.len() != groups2.len() {
                return None;
            }
            for (k, v2) in &groups2 {
                if groups1.get(k).map(Vec::len) != Some(v2.len()) {
                    return None;
                }
            }
        }
        let mut edge_map = BTreeMap::new();
        let mut total_cost = 0u64;
        for (key, es1) in &groups1 {
            let es2 = groups2.get(key)?;
            if es1.len() > es2.len() {
                return None;
            }
            let cost_matrix: Vec<Vec<u64>> = es1
                .iter()
                .map(|e1| {
                    es2.iter()
                        .map(|e2| {
                            if self.problem == Problem::Isomorphism && e1.props != e2.props {
                                FORBIDDEN
                            } else {
                                edge_pair_cost(self.problem, &e1.props, &e2.props)
                            }
                        })
                        .collect()
                })
                .collect();
            let (cols, cost) = min_cost_assignment(&cost_matrix)?;
            total_cost += cost;
            for (row, col) in cols.into_iter().enumerate() {
                edge_map.insert(es1[row].id.clone(), es2[col].id.clone());
            }
        }
        Some((edge_map, total_cost))
    }

    fn node_index1(&self, id: &str) -> usize {
        self.ids1
            .iter()
            .position(|x| x == id)
            .expect("edge endpoint indexed")
    }
}

fn symmetric_diff_count(p1: &Props, p2: &Props) -> u64 {
    let mut n = 0u64;
    for (k, v) in p1 {
        if p2.get(k) != Some(v) {
            n += 1;
        }
    }
    for (k, v) in p2 {
        if p1.get(k) != Some(v) {
            n += 1;
        }
    }
    n
}

fn one_sided_diff_count(p1: &Props, p2: &Props) -> u64 {
    // Paper Listing 4: a g1 property costs 1 when the image either lacks
    // the key or carries a different value.
    p1.iter().filter(|(k, v)| p2.get(*k) != Some(*v)).count() as u64
}

fn node_pair_cost(problem: Problem, p1: &Props, p2: &Props) -> u64 {
    match problem {
        Problem::Similarity | Problem::Isomorphism => 0,
        Problem::Generalization => symmetric_diff_count(p1, p2),
        Problem::Subgraph => one_sided_diff_count(p1, p2),
    }
}

fn edge_pair_cost(problem: Problem, p1: &Props, p2: &Props) -> u64 {
    node_pair_cost(problem, p1, p2)
}

fn sig_leq(s1: &DegreeSig, s2: &DegreeSig) -> bool {
    s1.iter()
        .all(|(k, &n)| s2.get(k).copied().unwrap_or(0) >= n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(build: impl FnOnce(&mut PropertyGraph)) -> PropertyGraph {
        let mut graph = PropertyGraph::new();
        build(&mut graph);
        graph
    }

    fn triangle(prefix: &str) -> PropertyGraph {
        g(|g| {
            for i in 0..3 {
                g.add_node(format!("{prefix}{i}"), "N").unwrap();
            }
            for i in 0..3 {
                g.add_edge(
                    format!("{prefix}e{i}"),
                    format!("{prefix}{i}"),
                    format!("{prefix}{}", (i + 1) % 3),
                    "r",
                )
                .unwrap();
            }
        })
    }

    #[test]
    fn triangle_similar_to_relabelled_triangle() {
        let a = triangle("a");
        let b = triangle("b");
        let m = solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map.len(), 3);
        assert_eq!(m.edge_map.len(), 3);
        assert_eq!(m.cost, 0);
        // The witness must be structure-preserving.
        for (e1, e2) in &m.edge_map {
            let d1 = a.edge(e1).unwrap();
            let d2 = b.edge(e2).unwrap();
            assert_eq!(m.node_map[&d1.src], d2.src);
            assert_eq!(m.node_map[&d1.tgt], d2.tgt);
        }
    }

    #[test]
    fn triangle_not_similar_to_path() {
        let a = triangle("a");
        let path = g(|g| {
            for i in 0..3 {
                g.add_node(format!("p{i}"), "N").unwrap();
            }
            g.add_edge("e0", "p0", "p1", "r").unwrap();
            g.add_edge("e1", "p1", "p2", "r").unwrap();
            g.add_edge("e2", "p0", "p2", "r").unwrap();
        });
        assert!(solve(Problem::Similarity, &a, &path, &SolverConfig::default())
            .matching
            .is_none());
    }

    #[test]
    fn label_mismatch_fails_fast() {
        let a = g(|g| {
            g.add_node("x", "A").unwrap();
        });
        let b = g(|g| {
            g.add_node("y", "B").unwrap();
        });
        let out = solve(Problem::Similarity, &a, &b, &SolverConfig::default());
        assert!(out.matching.is_none());
        assert!(out.optimal);
        assert_eq!(out.stats.steps, 0, "must fail in the pre-check");
    }

    #[test]
    fn isomorphism_requires_equal_properties() {
        let a = g(|g| {
            g.add_node("x", "A").unwrap();
            g.set_node_property("x", "k", "1").unwrap();
        });
        let b = g(|g| {
            g.add_node("y", "A").unwrap();
            g.set_node_property("y", "k", "2").unwrap();
        });
        assert!(solve(Problem::Isomorphism, &a, &b, &SolverConfig::default())
            .matching
            .is_none());
        assert!(solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .is_some());
    }

    #[test]
    fn generalization_minimizes_property_mismatch() {
        // Two nodes with same label; pairing by matching "name" property
        // costs 2 (the volatile timestamps), the wrong pairing costs 6.
        let a = g(|g| {
            g.add_node("a1", "F").unwrap();
            g.set_node_property("a1", "name", "alpha").unwrap();
            g.set_node_property("a1", "time", "100").unwrap();
            g.add_node("a2", "F").unwrap();
            g.set_node_property("a2", "name", "beta").unwrap();
            g.set_node_property("a2", "time", "101").unwrap();
        });
        let b = g(|g| {
            g.add_node("b1", "F").unwrap();
            g.set_node_property("b1", "name", "beta").unwrap();
            g.set_node_property("b1", "time", "200").unwrap();
            g.add_node("b2", "F").unwrap();
            g.set_node_property("b2", "name", "alpha").unwrap();
            g.set_node_property("b2", "time", "201").unwrap();
        });
        let m = solve(Problem::Generalization, &a, &b, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["a1"], "b2");
        assert_eq!(m.node_map["a2"], "b1");
        assert_eq!(m.cost, 4, "two volatile timestamps, counted on both sides");
    }

    #[test]
    fn subgraph_finds_embedding_with_extra_structure() {
        let bg = g(|g| {
            g.add_node("p", "Process").unwrap();
            g.add_node("f", "Artifact").unwrap();
            g.add_edge("e", "p", "f", "Used").unwrap();
        });
        let fg = g(|g| {
            g.add_node("q", "Process").unwrap();
            g.add_node("x", "Artifact").unwrap();
            g.add_node("y", "Artifact").unwrap();
            g.add_edge("e1", "q", "x", "Used").unwrap();
            g.add_edge("e2", "q", "y", "WasGeneratedBy").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["p"], "q");
        assert_eq!(m.node_map["f"], "x");
        assert_eq!(m.edge_map["e"], "e1");
    }

    #[test]
    fn subgraph_prefers_property_matching_image() {
        let bg = g(|g| {
            g.add_node("f", "Artifact").unwrap();
            g.set_node_property("f", "path", "/tmp/t").unwrap();
        });
        let fg = g(|g| {
            g.add_node("x", "Artifact").unwrap();
            g.set_node_property("x", "path", "/lib/libc").unwrap();
            g.add_node("y", "Artifact").unwrap();
            g.set_node_property("y", "path", "/tmp/t").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["f"], "y");
        assert_eq!(m.cost, 0);
    }

    #[test]
    fn subgraph_respects_structure_over_properties() {
        // The property-perfect node is not structurally viable.
        let bg = g(|g| {
            g.add_node("p", "P").unwrap();
            g.add_node("f", "F").unwrap();
            g.add_edge("e", "p", "f", "r").unwrap();
            g.set_node_property("f", "name", "t").unwrap();
        });
        let fg = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("isolated", "F").unwrap();
            g.set_node_property("isolated", "name", "t").unwrap();
            g.add_node("linked", "F").unwrap();
            g.set_node_property("linked", "name", "other").unwrap();
            g.add_edge("e1", "q", "linked", "r").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["f"], "linked");
        assert_eq!(m.cost, 1);
    }

    #[test]
    fn subgraph_infeasible_when_larger() {
        let bg = triangle("a");
        let fg = g(|g| {
            g.add_node("x", "N").unwrap();
        });
        let out = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default());
        assert!(out.matching.is_none());
        assert!(out.optimal);
    }

    #[test]
    fn empty_bg_embeds_into_anything() {
        let bg = PropertyGraph::new();
        let fg = triangle("a");
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn empty_graphs_are_similar() {
        let out = solve(
            Problem::Similarity,
            &PropertyGraph::new(),
            &PropertyGraph::new(),
            &SolverConfig::default(),
        );
        assert!(out.matching.unwrap().is_empty());
    }

    #[test]
    fn multigraph_edge_counts_respected() {
        // Two parallel edges in bg require two in fg.
        let bg = g(|g| {
            g.add_node("p", "P").unwrap();
            g.add_node("f", "F").unwrap();
            g.add_edge("e1", "p", "f", "r").unwrap();
            g.add_edge("e2", "p", "f", "r").unwrap();
        });
        let fg_one = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("x", "F").unwrap();
            g.add_edge("e", "q", "x", "r").unwrap();
            g.add_edge("other", "x", "q", "r").unwrap();
        });
        assert!(solve(Problem::Subgraph, &bg, &fg_one, &SolverConfig::default())
            .matching
            .is_none());
        let fg_two = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("x", "F").unwrap();
            g.add_edge("f1", "q", "x", "r").unwrap();
            g.add_edge("f2", "q", "x", "r").unwrap();
        });
        let m = solve(Problem::Subgraph, &bg, &fg_two, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.edge_map.len(), 2);
        // Injective on edges.
        assert_ne!(m.edge_map["e1"], m.edge_map["e2"]);
    }

    #[test]
    fn multigraph_parallel_edge_costs_optimally_assigned() {
        let bg = g(|g| {
            g.add_node("p", "P").unwrap();
            g.add_node("f", "F").unwrap();
            for (e, v) in [("e1", "1"), ("e2", "2")] {
                g.add_edge(e, "p", "f", "r").unwrap();
                g.set_edge_property(e, "seq", v).unwrap();
            }
        });
        let fg = g(|g| {
            g.add_node("q", "P").unwrap();
            g.add_node("x", "F").unwrap();
            for (e, v) in [("f2", "2"), ("f1", "1"), ("f3", "3")] {
                g.add_edge(e, "q", "x", "r").unwrap();
                g.set_edge_property(e, "seq", v).unwrap();
            }
        });
        let m = solve(Problem::Subgraph, &bg, &fg, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.cost, 0);
        assert_eq!(m.edge_map["e1"], "f1");
        assert_eq!(m.edge_map["e2"], "f2");
    }

    #[test]
    fn bijective_requires_all_g2_edges_covered() {
        // Same node multiset, same edge count, but edges placed such that
        // no bijection exists.
        let a = g(|g| {
            g.add_node("a", "N").unwrap();
            g.add_node("b", "N").unwrap();
            g.add_edge("e1", "a", "b", "r").unwrap();
            g.add_edge("e2", "a", "b", "r").unwrap();
        });
        let b = g(|g| {
            g.add_node("x", "N").unwrap();
            g.add_node("y", "N").unwrap();
            g.add_edge("f1", "x", "y", "r").unwrap();
            g.add_edge("f2", "y", "x", "r").unwrap();
        });
        assert!(solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .is_none());
    }

    #[test]
    fn naive_config_agrees_with_default() {
        let a = triangle("a");
        let mut b = triangle("b");
        b.set_node_property("b1", "time", "42").unwrap();
        let full = solve(Problem::Generalization, &a, &b, &SolverConfig::default());
        let naive = solve(Problem::Generalization, &a, &b, &SolverConfig::naive());
        assert_eq!(
            full.matching.as_ref().map(|m| m.cost),
            naive.matching.as_ref().map(|m| m.cost)
        );
        assert!(full.optimal && naive.optimal);
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A graph with many interchangeable nodes explodes the naive search.
        let make = |p: &str| {
            g(|g| {
                for i in 0..12 {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                }
            })
        };
        let a = make("a");
        let b = make("b");
        let cfg = SolverConfig {
            max_steps: 5,
            ..SolverConfig::naive()
        };
        let out = solve(Problem::Similarity, &a, &b, &cfg);
        // Either it happened to finish (it should: first dive is a valid
        // bijection) or it reports non-optimality — but never both empty
        // and "optimal".
        if out.matching.is_none() {
            assert!(!out.optimal);
        }
    }

    #[test]
    fn self_loops_matched() {
        let a = g(|g| {
            g.add_node("x", "N").unwrap();
            g.add_edge("e", "x", "x", "loop").unwrap();
        });
        let b = g(|g| {
            g.add_node("y", "N").unwrap();
            g.add_edge("f", "y", "y", "loop").unwrap();
        });
        let m = solve(Problem::Similarity, &a, &b, &SolverConfig::default())
            .matching
            .unwrap();
        assert_eq!(m.node_map["x"], "y");
        assert_eq!(m.edge_map["e"], "f");
        // A self-loop is not similar to a plain edge.
        let c = g(|g| {
            g.add_node("y", "N").unwrap();
            g.add_node("z", "N").unwrap();
            g.add_edge("f", "y", "z", "loop").unwrap();
        });
        assert!(solve(Problem::Subgraph, &a, &c, &SolverConfig::default())
            .matching
            .is_none());
    }

    #[test]
    fn star_graph_automorphisms_handled() {
        // A star with 6 identical leaves has 720 automorphisms; the solver
        // must still terminate instantly on feasibility problems.
        let star = |p: &str| {
            g(|g| {
                g.add_node(format!("{p}hub"), "Hub").unwrap();
                for i in 0..6 {
                    g.add_node(format!("{p}leaf{i}"), "Leaf").unwrap();
                    g.add_edge(format!("{p}e{i}"), format!("{p}hub"), format!("{p}leaf{i}"), "spoke")
                        .unwrap();
                }
            })
        };
        let out = solve(Problem::Similarity, &star("a"), &star("b"), &SolverConfig::default());
        assert!(out.matching.is_some());
        assert!(out.optimal);
        assert!(out.stats.steps < 100, "steps: {}", out.stats.steps);
    }

    #[test]
    fn pruning_reduces_search_effort() {
        // A chain matched against a copy whose nodes are inserted in
        // reverse order: the naive search's candidate order is maximally
        // wrong, while degree filtering + forward checking cut through.
        let chain = |p: &str, order: &mut dyn Iterator<Item = usize>| {
            g(|g| {
                for i in order {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                }
                for i in 0..6 {
                    g.add_edge(format!("{p}e{i}"), format!("{p}{i}"), format!("{p}{}", i + 1), "r")
                        .unwrap();
                }
            })
        };
        let a = chain("a", &mut (0..7));
        let b = chain("b", &mut (0..7).rev());
        let smart = solve(Problem::Similarity, &a, &b, &SolverConfig::default());
        let naive = solve(Problem::Similarity, &a, &b, &SolverConfig::naive());
        assert!(smart.matching.is_some() && naive.matching.is_some());
        assert!(
            smart.stats.steps < naive.stats.steps,
            "pruned {} vs naive {}",
            smart.stats.steps,
            naive.stats.steps
        );
    }

    #[test]
    fn generalization_on_disconnected_components() {
        let make = |p: &str, t: &str| {
            g(|g| {
                g.add_node(format!("{p}1"), "A").unwrap();
                g.add_node(format!("{p}2"), "A").unwrap();
                g.set_node_property(&format!("{p}1"), "name", "one").unwrap();
                g.set_node_property(&format!("{p}1"), "t", t).unwrap();
                g.set_node_property(&format!("{p}2"), "name", "two").unwrap();
                g.set_node_property(&format!("{p}2"), "t", t).unwrap();
            })
        };
        let m = solve(
            Problem::Generalization,
            &make("x", "5"),
            &make("y", "9"),
            &SolverConfig::default(),
        )
        .matching
        .unwrap();
        // Optimal pairing aligns names; cost = 2 volatile props × 2 sides.
        assert_eq!(m.node_map["x1"], "y1");
        assert_eq!(m.cost, 4);
    }

    #[test]
    fn subgraph_budget_reports_best_effort() {
        let many = |p: &str, n: usize| {
            g(|g| {
                for i in 0..n {
                    g.add_node(format!("{p}{i}"), "N").unwrap();
                }
            })
        };
        let cfg = SolverConfig {
            max_steps: 3,
            ..SolverConfig::naive()
        };
        let out = solve(Problem::Subgraph, &many("a", 8), &many("b", 9), &cfg);
        // Either found quickly or flagged non-optimal — never a silent wrong answer.
        if out.matching.is_none() {
            assert!(!out.optimal);
        }
    }

    #[test]
    fn stats_populated() {
        let a = triangle("a");
        let b = triangle("b");
        let out = solve(Problem::Similarity, &a, &b, &SolverConfig::default());
        assert!(out.stats.steps >= 3);
        assert_eq!(out.stats.solutions, 1);
    }
}
