//! Graph matching solver for ProvMark, replacing the clingo ASP solver.
//!
//! The paper (§3.4–3.5) reduces two pipeline stages to matching problems
//! over property graphs and hands them to an Answer Set Programming solver:
//!
//! 1. **Similarity** (Listing 3) — is there a bijection `h` between the
//!    elements of two graphs preserving edge structure and labels (but not
//!    necessarily properties)? Used to partition recording trials into
//!    similarity classes.
//! 2. **Generalization** — among all similarity bijections, find one that
//!    *minimizes the number of differing properties*; properties that still
//!    differ under the optimal matching are volatile (timestamps, ids) and
//!    are discarded.
//! 3. **Approximate subgraph isomorphism** (Listing 4) — embed the
//!    background graph injectively into the foreground graph, minimizing
//!    the number of background properties with no matching foreground
//!    property (`#minimize { PC,X,K : cost(X,K,PC) }`).
//!
//! This crate solves all three *exactly* with a branch-and-bound
//! backtracking search: same models, same optima an ASP solver would
//! produce, without the external dependency. The [`asp`] module renders the
//! exact clingo programs from the paper for inspection and differential
//! debugging.
//!
//! # Engine paths
//!
//! The default entry points ([`solve`] and the `find_*` helpers) run on
//! the **compiled path**: both graphs are interned into a shared
//! [`provgraph::compiled::Interner`] and searched as
//! [`provgraph::compiled::CompiledGraph`]s, so the hot loop touches only
//! dense integers (see [`provgraph::compiled`] for the representation).
//!
//! Callers that match corpus members against each other repeatedly — the
//! whole benchmark pipeline: similarity classification, generalization,
//! the comparison stage — should compile every graph once into a
//! [`provgraph::compiled::CorpusSession`] and use the **session path**
//! ([`solve_in`] and the `find_*_in` helpers over
//! [`provgraph::compiled::GraphId`] handles); each solve then pays zero
//! compile or interning cost. [`solve_compiled`] serves the same purpose
//! for borrow-based [`provgraph::compiled::CompiledGraph`]s compiled by
//! the caller.
//!
//! Callers that match one *fixed* left-hand graph against many right-hand
//! graphs — a similarity-class representative confirmed against every
//! bucket member, a generalized graph replayed across matrix cells —
//! should use the **batch path**: [`BatchSolver`] (or the [`solve_batch_in`]
//! one-shot wrapper) prepares the left-hand search plan ([`PreparedLhs`])
//! once and reuses it for every right-hand solve, fanning the batch out
//! over the machine's cores. Batch outcomes are identical to per-pair
//! [`solve_in`] calls in every observable, including search statistics.
//!
//! Callers replaying the same pairs across *separate* calls — the
//! Table 2 matrix replaying one foreground against many backgrounds,
//! similarity classification re-confirming equivalent cores under
//! several representatives — should additionally thread a session-level
//! [`SolveMemo`] through the `_memo` entry points ([`solve_in_memo`],
//! [`solve_batch_in_memo`], [`BatchSolver::with_memo`]): identifier-free
//! dense outcomes are cached under the cores' deterministic **content
//! hashes** and the full [`SolverConfig`], so cross-call and
//! cross-left-side replays are searched once — and, because content
//! hashes are interner-independent, the memo is valid across sessions
//! and can be persisted to a cache file and reloaded in another process
//! (see [`persist`]). Memo-on outcomes are byte-identical to memo-off
//! ones, search statistics included.
//!
//! Every dense path above runs the **bitset-pruned kernel** by default
//! ([`SolverConfig::dense_pruning`]): candidate domains are `u64`-block
//! bitsets intersected word-parallel as assignments extend, and for
//! bijective problems the session's memoized Weisfeiler–Lehman shape
//! colours pre-filter pairs whose colour classes can never correspond
//! (see the engine module docs for the design). Pruning is
//! outcome-neutral — matchings, costs and optimality flags are
//! unchanged — while [`SolverStats`] shrinks deterministically.
//!
//! The legacy **string path** ([`solve_strings`]) searches
//! [`PropertyGraph`] directly. It is retained as the reference
//! implementation for differential tests and as the baseline of the
//! solver ablation benchmark. All paths provably return identical
//! outcomes (matchings, costs, optimality); with `dense_pruning`
//! disabled the compiled paths additionally reproduce the string path's
//! search statistics bit-for-bit (`tests/differential_compiled.rs`).
//!
//! # Example
//!
//! ```
//! use provgraph::PropertyGraph;
//! use aspsolver::{find_similarity, find_subgraph};
//!
//! # fn main() -> Result<(), provgraph::GraphError> {
//! let mut bg = PropertyGraph::new();
//! bg.add_node("p", "Process")?;
//! let mut fg = PropertyGraph::new();
//! fg.add_node("q", "Process")?;
//! fg.add_node("f", "Artifact")?;
//! fg.add_edge("e", "q", "f", "Used")?;
//!
//! // bg embeds into fg …
//! let m = find_subgraph(&bg, &fg).expect("embedding exists");
//! assert_eq!(m.node_map["p"], "q");
//! // … but they are not similar (different shapes).
//! assert!(find_similarity(&bg, &fg).is_none());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asp;
mod assignment;
mod engine;
mod matching;
pub mod persist;
mod strpath;

pub use assignment::min_cost_assignment;
#[doc(hidden)]
pub use engine::{debug_domains, DebugDomains};
pub use engine::{
    solve, solve_batch_in, solve_batch_in_memo, solve_compiled, solve_in, solve_in_memo,
    solve_prepared, BatchSolver, PreparedLhs, Problem, SolveMemo, SolverConfig, SolverStats,
};
pub use matching::{Matching, Outcome};
pub use persist::{
    cache_bytes, delta_bytes, load_cache_bytes, load_cache_file, write_bytes_durable,
    write_cache_file, SolveCacheError, SOLVE_CACHE_MAGIC, SOLVE_CACHE_VERSION,
};
pub use strpath::solve_strings;

use provgraph::compiled::{CorpusSession, GraphId};
use provgraph::PropertyGraph;

/// Decide *similarity* (paper Listing 3): a bijection preserving structure
/// and labels, ignoring properties. Returns a witness matching if similar.
pub fn find_similarity(g1: &PropertyGraph, g2: &PropertyGraph) -> Option<Matching> {
    solve(Problem::Similarity, g1, g2, &SolverConfig::default()).matching
}

/// Decide full property-graph isomorphism: similarity plus equal
/// properties on every matched pair.
pub fn find_isomorphism(g1: &PropertyGraph, g2: &PropertyGraph) -> Option<Matching> {
    solve(Problem::Isomorphism, g1, g2, &SolverConfig::default()).matching
}

/// Find the similarity bijection minimizing the number of differing
/// properties (the generalization stage's matching, paper §3.4).
///
/// Returns `None` when the graphs are not similar at all. The returned
/// matching's `cost` counts properties in the symmetric difference of each
/// matched pair.
pub fn find_generalization(g1: &PropertyGraph, g2: &PropertyGraph) -> Option<Matching> {
    solve(Problem::Generalization, g1, g2, &SolverConfig::default()).matching
}

/// Approximate subgraph isomorphism (paper Listing 4): embed `g1` into
/// `g2` injectively, preserving structure and labels, minimizing the count
/// of `g1` properties with no matching property on the image.
///
/// Returns `None` when no structure/label-preserving embedding exists.
pub fn find_subgraph(g1: &PropertyGraph, g2: &PropertyGraph) -> Option<Matching> {
    solve(Problem::Subgraph, g1, g2, &SolverConfig::default()).matching
}

/// [`find_similarity`] over two members of a [`CorpusSession`] — the
/// amortized path for similarity classification (no compile per call).
pub fn find_similarity_in(session: &CorpusSession, g1: GraphId, g2: GraphId) -> Option<Matching> {
    solve_in(
        Problem::Similarity,
        session,
        g1,
        g2,
        &SolverConfig::default(),
    )
    .matching
}

/// [`find_generalization`] over two members of a [`CorpusSession`] — the
/// amortized path for the generalization stage (paper §3.4).
pub fn find_generalization_in(
    session: &CorpusSession,
    g1: GraphId,
    g2: GraphId,
) -> Option<Matching> {
    solve_in(
        Problem::Generalization,
        session,
        g1,
        g2,
        &SolverConfig::default(),
    )
    .matching
}

/// [`find_subgraph`] over two members of a [`CorpusSession`] — the
/// amortized path for the comparison stage (paper Listing 4).
pub fn find_subgraph_in(session: &CorpusSession, g1: GraphId, g2: GraphId) -> Option<Matching> {
    solve_in(Problem::Subgraph, session, g1, g2, &SolverConfig::default()).matching
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example() {
        let mut bg = PropertyGraph::new();
        bg.add_node("p", "Process").unwrap();
        let mut fg = PropertyGraph::new();
        fg.add_node("q", "Process").unwrap();
        fg.add_node("f", "Artifact").unwrap();
        fg.add_edge("e", "q", "f", "Used").unwrap();
        let m = find_subgraph(&bg, &fg).unwrap();
        assert_eq!(m.node_map["p"], "q");
        assert!(find_similarity(&bg, &fg).is_none());
    }
}
