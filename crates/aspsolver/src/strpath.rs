//! The legacy **string-path** solver: branch-and-bound search directly
//! over [`PropertyGraph`], re-hashing `String` ids and probing
//! `BTreeMap<String, String>` property dictionaries in the inner loop.
//!
//! The compiled path ([`crate::solve`]) replaced this as the default; the
//! string path is kept verbatim (plus the neighbour-list construction
//! fix) as
//!
//! 1. the **reference implementation** differential tests compare the
//!    compiled engine against (`tests/differential_compiled.rs`), and
//! 2. the **baseline** of the `ablation_solver` benchmark and the
//!    `BENCH_solver.json` report, quantifying what interning buys.
//!
//! Do not add features here: new solver work goes into the compiled
//! engine, and this module only changes when the *semantics* of the
//! matching problems change.

use std::collections::{BTreeMap, HashMap};

use provgraph::{PropertyGraph, Props};

use crate::assignment::{min_cost_assignment, FORBIDDEN};
use crate::engine::{Problem, SolverConfig, SolverStats};
use crate::matching::{Matching, Outcome};

/// Solve `problem` over the string path (legacy reference engine).
///
/// Same contract as [`crate::solve`]; kept for differential testing and
/// the solver ablation benchmarks.
pub fn solve_strings(
    problem: Problem,
    g1: &PropertyGraph,
    g2: &PropertyGraph,
    config: &SolverConfig,
) -> Outcome {
    let mut outcome = Outcome {
        matching: None,
        optimal: true,
        stats: SolverStats::default(),
    };

    // Global pre-checks that make the problem trivially infeasible.
    if problem.bijective() {
        if g1.node_count() != g2.node_count()
            || g1.edge_count() != g2.edge_count()
            || g1.node_label_multiset() != g2.node_label_multiset()
            || g1.edge_label_multiset() != g2.edge_label_multiset()
        {
            return outcome;
        }
    } else {
        if g1.node_count() > g2.node_count() || g1.edge_count() > g2.edge_count() {
            return outcome;
        }
        if !multiset_leq(&g1.node_label_multiset(), &g2.node_label_multiset())
            || !multiset_leq(&g1.edge_label_multiset(), &g2.edge_label_multiset())
        {
            return outcome;
        }
    }
    if g1.node_count() == 0 {
        // Possible only when g2 is also empty (bijective) or any g2
        // (subgraph): the empty matching, with no edges to place.
        outcome.matching = Some(Matching::default());
        outcome.stats.solutions = 1;
        return outcome;
    }

    let mut search = Search::new(problem, g1, g2, config);
    search.run();
    outcome.stats = search.stats;
    outcome.optimal = !search.budget_exhausted;
    outcome.matching = search.best.take().map(|(node_assign, edge_map, cost)| {
        let node_map: BTreeMap<String, String> = node_assign
            .iter()
            .enumerate()
            .map(|(i, &j)| (search.ids1[i].clone(), search.ids2[j].clone()))
            .collect();
        Matching {
            node_map,
            edge_map,
            cost,
        }
    });
    outcome
}

fn multiset_leq<T: Ord>(small: &[T], big: &[T]) -> bool {
    // Both inputs are sorted; check small ⊆ big as multisets.
    let mut i = 0;
    for x in small {
        while i < big.len() && big[i] < *x {
            i += 1;
        }
        if i >= big.len() || big[i] != *x {
            return false;
        }
        i += 1;
    }
    true
}

/// Per-node signature: for each (direction, edge label) the number of
/// incident edges. Direction 0 = outgoing, 1 = incoming.
type DegreeSig = BTreeMap<(u8, String), usize>;

struct Search<'a> {
    problem: Problem,
    config: &'a SolverConfig,
    g1: &'a PropertyGraph,
    g2: &'a PropertyGraph,
    ids1: Vec<String>,
    ids2: Vec<String>,
    idx2: HashMap<String, usize>,
    /// adjacency label counts between node index pairs
    adj1: HashMap<(usize, usize), BTreeMap<String, usize>>,
    adj2: HashMap<(usize, usize), BTreeMap<String, usize>>,
    /// neighbours of each g1 node (for forward checking)
    neigh1: Vec<Vec<usize>>,
    /// statically feasible candidates for each g1 node
    candidates: Vec<Vec<usize>>,
    /// pair costs for statically feasible pairs
    pair_cost: HashMap<(usize, usize), u64>,
    /// admissible per-node lower bound (min static pair cost)
    node_min_cost: Vec<u64>,
    /// admissible total lower bound contribution of all g1 edges
    edge_cost_floor: u64,
    // search state
    assign: Vec<Option<usize>>,
    used: Vec<bool>,
    stats: SolverStats,
    budget_exhausted: bool,
    best: Option<(Vec<usize>, BTreeMap<String, String>, u64)>,
    best_cost: u64,
    /// global lower bound; reaching it allows immediate termination
    global_floor: u64,
}

impl<'a> Search<'a> {
    fn new(
        problem: Problem,
        g1: &'a PropertyGraph,
        g2: &'a PropertyGraph,
        config: &'a SolverConfig,
    ) -> Self {
        let ids1: Vec<String> = g1.nodes().map(|n| n.id.clone()).collect();
        let ids2: Vec<String> = g2.nodes().map(|n| n.id.clone()).collect();
        let idx1: HashMap<String, usize> = ids1
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let idx2: HashMap<String, usize> = ids2
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();

        let mut adj1: HashMap<(usize, usize), BTreeMap<String, usize>> = HashMap::new();
        let mut neigh1: Vec<Vec<usize>> = vec![Vec::new(); ids1.len()];
        for e in g1.edges() {
            let s = idx1[&e.src];
            let t = idx1[&e.tgt];
            *adj1
                .entry((s, t))
                .or_default()
                .entry(e.label.as_str().to_owned())
                .or_default() += 1;
            neigh1[s].push(t);
            neigh1[t].push(s);
        }
        // Sort + dedup instead of the old per-edge `Vec::contains` scan,
        // which made neighbour-list construction quadratic in degree.
        for list in &mut neigh1 {
            list.sort_unstable();
            list.dedup();
        }
        let mut adj2: HashMap<(usize, usize), BTreeMap<String, usize>> = HashMap::new();
        for e in g2.edges() {
            let s = idx2[&e.src];
            let t = idx2[&e.tgt];
            *adj2
                .entry((s, t))
                .or_default()
                .entry(e.label.as_str().to_owned())
                .or_default() += 1;
        }

        let sig = |g: &PropertyGraph, id: &str| -> DegreeSig {
            let mut s = DegreeSig::new();
            for e in g.out_edges(id) {
                *s.entry((0, e.label.as_str().to_owned())).or_default() += 1;
            }
            for e in g.in_edges(id) {
                *s.entry((1, e.label.as_str().to_owned())).or_default() += 1;
            }
            s
        };
        let sigs1: Vec<DegreeSig> = ids1.iter().map(|id| sig(g1, id)).collect();
        let sigs2: Vec<DegreeSig> = ids2.iter().map(|id| sig(g2, id)).collect();

        let bijective = problem.bijective();
        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(ids1.len());
        let mut pair_cost: HashMap<(usize, usize), u64> = HashMap::new();
        let mut node_min_cost: Vec<u64> = Vec::with_capacity(ids1.len());
        for (i, n1) in g1.nodes().enumerate() {
            let mut cands = Vec::new();
            let mut min_cost = u64::MAX;
            for (j, n2) in g2.nodes().enumerate() {
                if n1.label != n2.label {
                    continue;
                }
                if problem == Problem::Isomorphism && n1.props != n2.props {
                    continue;
                }
                if config.degree_filter {
                    let ok = if bijective {
                        sigs1[i] == sigs2[j]
                    } else {
                        sig_leq(&sigs1[i], &sigs2[j])
                    };
                    if !ok {
                        continue;
                    }
                }
                let cost = node_pair_cost(problem, &n1.props, &n2.props);
                pair_cost.insert((i, j), cost);
                min_cost = min_cost.min(cost);
                cands.push(j);
            }
            if config.order_by_cost {
                cands.sort_by_key(|&j| pair_cost[&(i, j)]);
            }
            node_min_cost.push(if min_cost == u64::MAX { 0 } else { min_cost });
            candidates.push(cands);
        }

        // Admissible edge-cost floor: each g1 edge costs at least the
        // minimum mismatch against any same-label g2 edge.
        let mut edge_cost_floor = 0u64;
        if problem.optimizing() {
            for e1 in g1.edges() {
                let mut min_c = u64::MAX;
                for e2 in g2.edges() {
                    if e1.label != e2.label {
                        continue;
                    }
                    min_c = min_c.min(edge_pair_cost(problem, &e1.props, &e2.props));
                }
                if min_c != u64::MAX {
                    edge_cost_floor += min_c;
                }
            }
        }
        let global_floor = node_min_cost.iter().sum::<u64>() + edge_cost_floor;

        let n2 = ids2.len();
        let n1 = ids1.len();
        Search {
            problem,
            config,
            g1,
            g2,
            ids1,
            ids2,
            idx2,
            adj1,
            adj2,
            neigh1,
            candidates,
            pair_cost,
            node_min_cost,
            edge_cost_floor,
            assign: vec![None; n1],
            used: vec![false; n2],
            stats: SolverStats::default(),
            budget_exhausted: false,
            best: None,
            best_cost: u64::MAX,
            global_floor,
        }
    }

    fn run(&mut self) {
        // A node with zero candidates makes the problem infeasible.
        if self.candidates.iter().any(|c| c.is_empty()) {
            return;
        }
        self.descend(0);
    }

    /// `depth` = number of assigned nodes so far.
    fn descend(&mut self, depth: usize) -> bool {
        if self.budget_exhausted {
            return true;
        }
        if depth == self.assign.len() {
            return self.complete();
        }
        let var = match self.select_variable() {
            Some(v) => v,
            None => return false, // some node has no remaining candidate
        };
        let cands = self.candidates[var].clone();
        for j in cands {
            if self.used[j] {
                continue;
            }
            if self.config.forward_check && !self.consistent(var, j) {
                continue;
            }
            self.stats.steps += 1;
            if self.stats.steps > self.config.max_steps {
                self.budget_exhausted = true;
                return true;
            }
            if self.config.cost_bound && self.problem.optimizing() {
                let bound = self.partial_cost_with(var, j) + self.remaining_floor(var);
                if bound >= self.best_cost {
                    continue;
                }
            }
            self.assign[var] = Some(j);
            self.used[j] = true;
            let stop = self.descend(depth + 1);
            self.assign[var] = None;
            self.used[j] = false;
            if stop {
                return true;
            }
        }
        self.stats.backtracks += 1;
        false
    }

    /// Minimum-remaining-values with a preference for nodes adjacent to the
    /// already-assigned frontier.
    fn select_variable(&self) -> Option<usize> {
        let mut best: Option<(usize, usize, usize)> = None; // (remaining, -adjacency, var)
        for i in 0..self.assign.len() {
            if self.assign[i].is_some() {
                continue;
            }
            let mut remaining = 0usize;
            for &j in &self.candidates[i] {
                if !self.used[j] && (!self.config.forward_check || self.consistent(i, j)) {
                    remaining += 1;
                }
            }
            if remaining == 0 {
                return None;
            }
            let adjacency = self.neigh1[i]
                .iter()
                .filter(|&&n| self.assign[n].is_some())
                .count();
            let key = (remaining, usize::MAX - adjacency, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// Is mapping node `i` → `j` consistent with every assigned neighbour?
    fn consistent(&self, i: usize, j: usize) -> bool {
        for &n in &self.neigh1[i] {
            let Some(jn) = self.assign[n] else { continue };
            if !self.pair_edges_ok(i, n, j, jn) || !self.pair_edges_ok(n, i, jn, j) {
                return false;
            }
        }
        true
    }

    /// Check edge-count compatibility for the ordered pair (a→b) vs (x→y).
    fn pair_edges_ok(&self, a: usize, b: usize, x: usize, y: usize) -> bool {
        let empty = BTreeMap::new();
        let c1 = self.adj1.get(&(a, b)).unwrap_or(&empty);
        let c2 = self.adj2.get(&(x, y)).unwrap_or(&empty);
        if self.problem.bijective() {
            c1 == c2
        } else {
            c1.iter()
                .all(|(l, &n)| c2.get(l).copied().unwrap_or(0) >= n)
        }
    }

    fn partial_cost_with(&self, var: usize, j: usize) -> u64 {
        let mut cost = self.pair_cost[&(var, j)];
        for (i, a) in self.assign.iter().enumerate() {
            if let Some(jj) = a {
                cost += self.pair_cost[&(i, *jj)];
            }
        }
        cost
    }

    fn remaining_floor(&self, excluding: usize) -> u64 {
        let mut floor = self.edge_cost_floor;
        for (i, a) in self.assign.iter().enumerate() {
            if a.is_none() && i != excluding {
                floor += self.node_min_cost[i];
            }
        }
        floor
    }

    /// All nodes assigned: place edges group-by-group and record solution.
    /// Returns `true` when the search can stop globally.
    fn complete(&mut self) -> bool {
        let node_cost: u64 = self
            .assign
            .iter()
            .enumerate()
            // provlint: allow(panic-in-lib) -- complete() is only called once every node is assigned
            .map(|(i, a)| self.pair_cost[&(i, a.expect("complete assignment"))])
            .sum();
        if self.problem.optimizing() && node_cost + self.edge_cost_floor >= self.best_cost {
            return false;
        }
        let Some((edge_map, edge_cost)) = self.place_edges() else {
            return false;
        };
        self.stats.solutions += 1;
        let total = node_cost + edge_cost;
        if total < self.best_cost {
            self.best_cost = total;
            // provlint: allow(panic-in-lib) -- same complete-assignment invariant as the cost sum above
            let assign: Vec<usize> = self.assign.iter().map(|a| a.unwrap()).collect();
            self.best = Some((assign, edge_map, total));
        }
        if !self.problem.optimizing() {
            return true; // first feasible solution suffices
        }
        // Optimal as soon as we hit the admissible global floor.
        self.best_cost <= self.global_floor
    }

    /// Assign g1 edges to g2 edges given the complete node map.
    fn place_edges(&self) -> Option<(BTreeMap<String, String>, u64)> {
        // Group g1 edges by mapped (src, tgt, label).
        let mut groups1: BTreeMap<(usize, usize, String), Vec<&provgraph::EdgeData>> =
            BTreeMap::new();
        for e in self.g1.edges() {
            // provlint: allow(panic-in-lib) -- place_edges runs only on a complete node map
            let s = self.assign[self.node_index1(&e.src)].expect("assigned");
            // provlint: allow(panic-in-lib) -- place_edges runs only on a complete node map
            let t = self.assign[self.node_index1(&e.tgt)].expect("assigned");
            groups1
                .entry((s, t, e.label.as_str().to_owned()))
                .or_default()
                .push(e);
        }
        let mut groups2: BTreeMap<(usize, usize, String), Vec<&provgraph::EdgeData>> =
            BTreeMap::new();
        for e in self.g2.edges() {
            let s = self.idx2[&e.src];
            let t = self.idx2[&e.tgt];
            groups2
                .entry((s, t, e.label.as_str().to_owned()))
                .or_default()
                .push(e);
        }
        if self.problem.bijective() {
            // Every g2 edge must be covered by an equal-size g1 group.
            if groups1.len() != groups2.len() {
                return None;
            }
            for (k, v2) in &groups2 {
                if groups1.get(k).map(Vec::len) != Some(v2.len()) {
                    return None;
                }
            }
        }
        let mut edge_map = BTreeMap::new();
        let mut total_cost = 0u64;
        for (key, es1) in &groups1 {
            let es2 = groups2.get(key)?;
            if es1.len() > es2.len() {
                return None;
            }
            let cost_matrix: Vec<Vec<u64>> = es1
                .iter()
                .map(|e1| {
                    es2.iter()
                        .map(|e2| {
                            if self.problem == Problem::Isomorphism && e1.props != e2.props {
                                FORBIDDEN
                            } else {
                                edge_pair_cost(self.problem, &e1.props, &e2.props)
                            }
                        })
                        .collect()
                })
                .collect();
            let (cols, cost) = min_cost_assignment(&cost_matrix)?;
            total_cost += cost;
            for (row, col) in cols.into_iter().enumerate() {
                edge_map.insert(es1[row].id.clone(), es2[col].id.clone());
            }
        }
        Some((edge_map, total_cost))
    }

    fn node_index1(&self, id: &str) -> usize {
        self.ids1
            .iter()
            .position(|x| x == id)
            // provlint: allow(panic-in-lib) -- ids1 indexes every g1 node; edges reference only g1 nodes
            .expect("edge endpoint indexed")
    }
}

fn symmetric_diff_count(p1: &Props, p2: &Props) -> u64 {
    let mut n = 0u64;
    for (k, v) in p1 {
        if p2.get(k) != Some(v) {
            n += 1;
        }
    }
    for (k, v) in p2 {
        if p1.get(k) != Some(v) {
            n += 1;
        }
    }
    n
}

fn one_sided_diff_count(p1: &Props, p2: &Props) -> u64 {
    // Paper Listing 4: a g1 property costs 1 when the image either lacks
    // the key or carries a different value.
    p1.iter().filter(|(k, v)| p2.get(*k) != Some(*v)).count() as u64
}

fn node_pair_cost(problem: Problem, p1: &Props, p2: &Props) -> u64 {
    match problem {
        Problem::Similarity | Problem::Isomorphism => 0,
        Problem::Generalization => symmetric_diff_count(p1, p2),
        Problem::Subgraph => one_sided_diff_count(p1, p2),
    }
}

fn edge_pair_cost(problem: Problem, p1: &Props, p2: &Props) -> u64 {
    node_pair_cost(problem, p1, p2)
}

fn sig_leq(s1: &DegreeSig, s2: &DegreeSig) -> bool {
    s1.iter()
        .all(|(k, &n)| s2.get(k).copied().unwrap_or(0) >= n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(prefix: &str) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..3 {
            g.add_node(format!("{prefix}{i}"), "N").unwrap();
        }
        for i in 0..3 {
            g.add_edge(
                format!("{prefix}e{i}"),
                format!("{prefix}{i}"),
                format!("{prefix}{}", (i + 1) % 3),
                "r",
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn string_path_still_solves() {
        let m = solve_strings(
            Problem::Similarity,
            &triangle("a"),
            &triangle("b"),
            &SolverConfig::default(),
        )
        .matching
        .unwrap();
        assert_eq!(m.node_map.len(), 3);
        assert_eq!(m.edge_map.len(), 3);
        assert_eq!(m.cost, 0);
    }

    #[test]
    fn string_path_agrees_with_compiled_default() {
        let mut b = triangle("b");
        b.set_node_property("b1", "time", "42").unwrap();
        let a = triangle("a");
        let legacy = solve_strings(Problem::Generalization, &a, &b, &SolverConfig::default());
        let compiled = crate::solve(Problem::Generalization, &a, &b, &SolverConfig::default());
        assert_eq!(
            legacy.matching.as_ref().map(|m| m.cost),
            compiled.matching.as_ref().map(|m| m.cost)
        );
        assert_eq!(
            legacy.matching.map(|m| m.node_map),
            compiled.matching.map(|m| m.node_map)
        );
    }

    #[test]
    fn neighbour_lists_deduplicate_parallel_edges() {
        // Two parallel edges between one pair: the neighbour fix must not
        // change feasibility or witness shape.
        let mk = |p: &str| {
            let mut g = PropertyGraph::new();
            g.add_node(format!("{p}a"), "N").unwrap();
            g.add_node(format!("{p}b"), "N").unwrap();
            g.add_edge(format!("{p}e1"), format!("{p}a"), format!("{p}b"), "r")
                .unwrap();
            g.add_edge(format!("{p}e2"), format!("{p}a"), format!("{p}b"), "r")
                .unwrap();
            g
        };
        let m = solve_strings(
            Problem::Similarity,
            &mk("x"),
            &mk("y"),
            &SolverConfig::default(),
        )
        .matching
        .unwrap();
        assert_eq!(m.edge_map.len(), 2);
    }
}
