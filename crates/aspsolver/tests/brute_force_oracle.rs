//! Differential test: on tiny graphs, enumerate **every** injective
//! mapping by brute force and check that the solver's verdicts and optima
//! coincide with ground truth — i.e. our engine computes exactly the
//! models the paper's ASP encodings (Listings 3 and 4) define.

use proptest::prelude::*;
use provgraph::{PropertyGraph, Props};

fn arb_tiny_graph(max_nodes: usize) -> impl Strategy<Value = PropertyGraph> {
    let node_label = prop::sample::select(vec!["A", "B"]);
    let edge_label = prop::sample::select(vec!["r", "s"]);
    (
        prop::collection::vec(node_label, 1..=max_nodes),
        prop::collection::vec((0usize..max_nodes, 0usize..max_nodes, edge_label), 0..=4),
        prop::collection::vec((0usize..max_nodes, "k[12]", "[xy]"), 0..=3),
    )
        .prop_map(|(nodes, edges, props)| {
            let mut g = PropertyGraph::new();
            for (i, l) in nodes.iter().enumerate() {
                g.add_node(format!("n{i}"), *l).unwrap();
            }
            let n = g.node_count();
            for (j, (s, t, l)) in edges.iter().enumerate() {
                g.add_edge(
                    format!("e{j}"),
                    format!("n{}", s % n),
                    format!("n{}", t % n),
                    *l,
                )
                .unwrap();
            }
            for (i, k, v) in props {
                g.set_node_property(&format!("n{}", i % n), k, v).unwrap();
            }
            g
        })
}

fn one_sided_cost(p1: &Props, p2: &Props) -> u64 {
    p1.iter().filter(|(k, v)| p2.get(*k) != Some(*v)).count() as u64
}

/// Brute force the approximate-subgraph-isomorphism optimum (Listing 4):
/// minimum property-mismatch cost over every structure/label-preserving
/// injective mapping, or `None` when no mapping exists.
fn brute_force_subgraph(g1: &PropertyGraph, g2: &PropertyGraph) -> Option<u64> {
    let n1: Vec<_> = g1.nodes().collect();
    let n2: Vec<_> = g2.nodes().collect();
    if n1.len() > n2.len() {
        return None;
    }
    let e1: Vec<_> = g1.edges().collect();
    let e2: Vec<_> = g2.edges().collect();
    let mut best: Option<u64> = None;

    // Enumerate injective node maps.
    fn rec(
        depth: usize,
        n1: &[&provgraph::NodeData],
        n2: &[&provgraph::NodeData],
        used: &mut Vec<bool>,
        assign: &mut Vec<usize>,
        on_complete: &mut dyn FnMut(&[usize]),
    ) {
        if depth == n1.len() {
            on_complete(assign);
            return;
        }
        for j in 0..n2.len() {
            if used[j] || n1[depth].label != n2[j].label {
                continue;
            }
            used[j] = true;
            assign.push(j);
            rec(depth + 1, n1, n2, used, assign, on_complete);
            assign.pop();
            used[j] = false;
        }
    }

    let mut used = vec![false; n2.len()];
    let mut assign = Vec::new();
    rec(0, &n1, &n2, &mut used, &mut assign, &mut |assign| {
        // Node cost under this map.
        let mut cost: u64 = 0;
        for (i, &j) in assign.iter().enumerate() {
            cost += one_sided_cost(&n1[i].props, &n2[j].props);
        }
        // Edge placement: brute force an injective edge map.
        let node_img = |id: &str| -> String {
            let idx = n1.iter().position(|n| n.id == id).unwrap();
            n2[assign[idx]].id.clone()
        };
        fn edge_rec(
            depth: usize,
            e1: &[&provgraph::EdgeData],
            e2: &[&provgraph::EdgeData],
            node_img: &dyn Fn(&str) -> String,
            used: &mut Vec<bool>,
            acc: u64,
            best: &mut Option<u64>,
        ) {
            if depth == e1.len() {
                *best = Some(best.map_or(acc, |b: u64| b.min(acc)));
                return;
            }
            let e = e1[depth];
            for (j, f) in e2.iter().enumerate() {
                if used[j]
                    || e.label != f.label
                    || node_img(&e.src) != f.src
                    || node_img(&e.tgt) != f.tgt
                {
                    continue;
                }
                used[j] = true;
                edge_rec(
                    depth + 1,
                    e1,
                    e2,
                    node_img,
                    used,
                    acc + one_sided_cost(&e.props, &f.props),
                    best,
                );
                used[j] = false;
            }
        }
        let mut edge_used = vec![false; e2.len()];
        let mut local_best: Option<u64> = None;
        edge_rec(
            0,
            &e1,
            &e2,
            &node_img,
            &mut edge_used,
            cost,
            &mut local_best,
        );
        if let Some(b) = local_best {
            best = Some(best.map_or(b, |x| x.min(b)));
        }
    });
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_matches_brute_force_subgraph_optimum(
        g1 in arb_tiny_graph(3),
        g2 in arb_tiny_graph(4),
    ) {
        let expected = brute_force_subgraph(&g1, &g2);
        let out = aspsolver::solve(
            aspsolver::Problem::Subgraph,
            &g1,
            &g2,
            &aspsolver::SolverConfig::default(),
        );
        prop_assert!(out.optimal);
        match (expected, &out.matching) {
            (None, None) => {}
            (Some(cost), Some(m)) => prop_assert_eq!(m.cost, cost, "wrong optimum"),
            (e, m) => prop_assert!(false, "feasibility disagrees: brute={e:?} solver={:?}", m.as_ref().map(|m| m.cost)),
        }
    }

    #[test]
    fn solver_matches_brute_force_on_self_embedding(g in arb_tiny_graph(4)) {
        // A graph always embeds into itself at cost 0, and brute force
        // must agree.
        prop_assert_eq!(brute_force_subgraph(&g, &g), Some(0));
        let m = aspsolver::find_subgraph(&g, &g).expect("self-embedding exists");
        prop_assert_eq!(m.cost, 0);
    }

    /// Memo-hit spot-check against ground truth: the second solve of a
    /// pair through a [`aspsolver::SolveMemo`] is served from the cache,
    /// and that cached outcome must still equal the brute-force optimum
    /// (not merely the first solve) — a memo that cached a wrong or
    /// stale outcome would fail here independently of the engine
    /// differentials.
    #[test]
    fn memo_hit_path_matches_brute_force_subgraph_optimum(
        g1 in arb_tiny_graph(3),
        g2 in arb_tiny_graph(4),
    ) {
        use provgraph::compiled::CorpusSession;

        let expected = brute_force_subgraph(&g1, &g2);
        let mut session = CorpusSession::new();
        let a = session.add(&g1);
        let b = session.add(&g2);
        let memo = aspsolver::SolveMemo::new();
        let config = aspsolver::SolverConfig::default();
        let cold = aspsolver::solve_in_memo(
            aspsolver::Problem::Subgraph, &session, a, b, &config, Some(&memo),
        );
        let warm = aspsolver::solve_in_memo(
            aspsolver::Problem::Subgraph, &session, a, b, &config, Some(&memo),
        );
        prop_assert!(memo.hits() >= 1, "the replay must hit the memo");
        for (label, out) in [("cold", &cold), ("warm", &warm)] {
            prop_assert!(out.optimal, "{}: tiny instances solve to optimality", label);
            match (expected, &out.matching) {
                (None, None) => {}
                (Some(cost), Some(m)) => prop_assert_eq!(
                    m.cost, cost, "{}: wrong optimum on the memo path", label
                ),
                (e, m) => prop_assert!(
                    false,
                    "{label}: feasibility disagrees: brute={e:?} solver={:?}",
                    m.as_ref().map(|m| m.cost)
                ),
            }
        }
    }
}
