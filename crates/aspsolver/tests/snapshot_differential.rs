//! Snapshot round-trip differential: a [`CorpusSession`] serialized to
//! the versioned snapshot format and rehydrated in (what would be)
//! another process must be **solver-identical** to the original — same
//! matchings, costs, optimality flags and search statistics for every
//! problem over every ordered pair of members, and the same memoized
//! fingerprints. This is what licenses the sharding subsystem to ship
//! sessions between worker processes instead of recompiling trials.

use proptest::prelude::*;
use provgraph::compiled::{CorpusSession, GraphId};
use provgraph::fingerprint::{full_fingerprint_core, shape_fingerprint_core};
use provgraph::snapshot::{
    restore_session, snapshot_session, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use provgraph::PropertyGraph;

use aspsolver::{solve_batch_in, solve_in, solve_strings, Problem, SolverConfig};

/// An arbitrary small multigraph with node and edge properties (same
/// shape as the engine differentials in `differential_compiled.rs`).
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = PropertyGraph> {
    let node_label = prop::sample::select(vec!["P", "A", "E"]);
    let edge_label = prop::sample::select(vec!["u", "g"]);
    (
        prop::collection::vec(node_label, 1..=max_nodes),
        prop::collection::vec((0usize..8, 0usize..8, edge_label), 0..=8),
        prop::collection::vec((0usize..8, "k[123]", "[abc]"), 0..=5),
        prop::collection::vec((0usize..8, "t[12]", "[xy]"), 0..=4),
    )
        .prop_map(|(nodes, edges, node_props, edge_props)| {
            let mut g = PropertyGraph::new();
            for (i, label) in nodes.iter().enumerate() {
                g.add_node(format!("n{i}"), *label).unwrap();
            }
            let n = g.node_count();
            for (j, (s, t, label)) in edges.iter().enumerate() {
                g.add_edge(
                    format!("e{j}"),
                    format!("n{}", s % n),
                    format!("n{}", t % n),
                    *label,
                )
                .unwrap();
            }
            for (i, k, v) in node_props {
                g.set_node_property(&format!("n{}", i % n), k, v).unwrap();
            }
            let m = g.edge_count();
            if m > 0 {
                for (j, k, v) in edge_props {
                    g.set_edge_property(&format!("e{}", j % m), k, v).unwrap();
                }
            }
            g
        })
}

/// A structurally identical copy with fresh ids (guarantees feasible
/// bijective pairs exist, so witnesses are exercised).
fn relabelled(g: &PropertyGraph) -> PropertyGraph {
    let mut out = PropertyGraph::new();
    let nodes: Vec<_> = g.nodes().collect();
    for n in nodes.iter().rev() {
        let mut copy = (*n).clone();
        copy.id = format!("c_{}", n.id);
        out.add_node_data(copy).unwrap();
    }
    let edges: Vec<_> = g.edges().collect();
    for e in edges.iter().rev() {
        let mut copy = (*e).clone();
        copy.id = format!("c_{}", e.id);
        copy.src = format!("c_{}", e.src);
        copy.tgt = format!("c_{}", e.tgt);
        out.add_edge_data(copy).unwrap();
    }
    out
}

const ALL_PROBLEMS: [Problem; 4] = [
    Problem::Similarity,
    Problem::Isomorphism,
    Problem::Generalization,
    Problem::Subgraph,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → rehydrate → solve is indistinguishable from solving
    /// the in-memory session, across all four problems and all ordered
    /// member pairs (with the string path as the independent oracle).
    #[test]
    fn rehydrated_session_solves_identically(
        graphs in prop::collection::vec(arb_graph(4), 2..4),
    ) {
        let mut corpus: Vec<PropertyGraph> = graphs;
        let copy = relabelled(&corpus[0]);
        corpus.push(copy);
        let mut session = CorpusSession::new();
        let ids: Vec<GraphId> = corpus.iter().map(|g| session.add(g)).collect();

        let bytes = snapshot_session(&session);
        let restored = restore_session(&bytes).expect("snapshot round trip");
        prop_assert_eq!(restored.len(), session.len());

        // Memoized fingerprints survive, and still equal a fresh
        // computation over the restored cores.
        for &id in &ids {
            prop_assert_eq!(
                restored.shape_fingerprint(id),
                session.shape_fingerprint(id)
            );
            prop_assert_eq!(restored.full_fingerprint(id), session.full_fingerprint(id));
            prop_assert_eq!(
                restored.shape_fingerprint(id),
                shape_fingerprint_core(restored.graph(id).core())
            );
            prop_assert_eq!(
                restored.full_fingerprint(id),
                full_fingerprint_core(restored.graph(id).core())
            );
        }

        let config = SolverConfig::default();
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                for problem in ALL_PROBLEMS {
                    let original = solve_in(problem, &session, a, b, &config);
                    let rehydrated = solve_in(problem, &restored, a, b, &config);
                    let oracle = solve_strings(problem, &corpus[i], &corpus[j], &config);
                    prop_assert_eq!(
                        &rehydrated.matching, &original.matching,
                        "{:?} ({}, {}): rehydrated matching diverges", problem, i, j
                    );
                    prop_assert_eq!(
                        rehydrated.optimal, original.optimal,
                        "{:?} ({}, {}): rehydrated optimality diverges", problem, i, j
                    );
                    prop_assert_eq!(
                        rehydrated.stats, original.stats,
                        "{:?} ({}, {}): rehydrated statistics diverge", problem, i, j
                    );
                    prop_assert_eq!(
                        &rehydrated.matching, &oracle.matching,
                        "{:?} ({}, {}): rehydrated matching diverges from oracle", problem, i, j
                    );
                    prop_assert_eq!(
                        rehydrated.stats, oracle.stats,
                        "{:?} ({}, {}): rehydrated statistics diverge from oracle", problem, i, j
                    );
                }
            }
        }
    }

    /// The batch path (prepared left-hand plan + dense-solve sharing)
    /// over a rehydrated session equals the batch path over the
    /// original — the grouping decisions rest on the memoized
    /// fingerprints and exact core comparisons, both of which the
    /// snapshot must preserve.
    #[test]
    fn rehydrated_session_batches_identically(
        graphs in prop::collection::vec(arb_graph(4), 2..4),
    ) {
        let mut corpus: Vec<PropertyGraph> = graphs;
        let copy = relabelled(&corpus[0]);
        corpus.push(copy);
        let mut session = CorpusSession::new();
        let ids: Vec<GraphId> = corpus.iter().map(|g| session.add(g)).collect();
        let restored = restore_session(&snapshot_session(&session)).expect("round trip");
        let config = SolverConfig::default();
        for problem in ALL_PROBLEMS {
            for &lhs in &ids {
                let original = solve_batch_in(problem, &session, lhs, &ids, &config);
                let rehydrated = solve_batch_in(problem, &restored, lhs, &ids, &config);
                prop_assert_eq!(original.len(), rehydrated.len());
                for (o, r) in original.iter().zip(&rehydrated) {
                    prop_assert_eq!(&o.matching, &r.matching, "{:?}", problem);
                    prop_assert_eq!(o.optimal, r.optimal, "{:?}", problem);
                    prop_assert_eq!(o.stats, r.stats, "{:?}", problem);
                }
            }
        }
    }

    /// Restore fuzz: **every** strict prefix of a valid snapshot must be
    /// rejected with a typed [`SnapshotError`] — no panic, no partially
    /// restored session. Truncations inside the header fail the header
    /// reads; truncations anywhere in the body fail the whole-payload
    /// checksum before any structure is trusted.
    #[test]
    fn truncated_snapshots_never_restore(
        graphs in prop::collection::vec(arb_graph(4), 1..3),
        cut in 0usize..1_000_000,
    ) {
        let mut session = CorpusSession::new();
        for g in &graphs {
            session.add(g);
        }
        let bytes = snapshot_session(&session);
        let len = cut % bytes.len(); // 0..len → strictly shorter
        let result = restore_session(&bytes[..len]);
        prop_assert!(
            result.is_err(),
            "a {len}-byte prefix of a {}-byte snapshot must not restore",
            bytes.len()
        );
    }
}

/// Degenerate restore inputs: zero-length and header-only buffers each
/// fail with the *specific* typed error their truncation point implies.
#[test]
fn degenerate_snapshot_buffers_rejected_with_typed_errors() {
    // Zero-length: not even a magic.
    assert!(
        restore_session(&[]).is_err(),
        "empty input must not restore"
    );

    // Wrong magic fails before anything else is read.
    assert!(matches!(
        restore_session(b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0"),
        Err(SnapshotError::BadMagic)
    ));

    // Magic alone: truncated before the version.
    assert!(matches!(
        restore_session(&SNAPSHOT_MAGIC),
        Err(SnapshotError::Truncated { .. })
    ));

    // Magic + version: truncated before the checksum.
    let mut header = SNAPSHOT_MAGIC.to_vec();
    header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    assert!(matches!(
        restore_session(&header),
        Err(SnapshotError::Truncated { .. })
    ));

    // Full header with a checksum over an *empty* payload (FxHash of no
    // bytes is 0): the checksum passes, then the body reads must still
    // fail typed — never panic, never yield a partial session.
    let mut empty_payload = header.clone();
    empty_payload.extend_from_slice(&0u64.to_le_bytes());
    assert!(matches!(
        restore_session(&empty_payload),
        Err(SnapshotError::Truncated { .. })
    ));

    // Unsupported version is detected before the checksum.
    let mut skewed = SNAPSHOT_MAGIC.to_vec();
    skewed.extend_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    skewed.extend_from_slice(&0u64.to_le_bytes());
    assert!(matches!(
        restore_session(&skewed),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));
}

/// A corrupted body (any flipped byte after the header) must fail the
/// payload checksum — snapshot restore trusts nothing it did not verify.
#[test]
fn flipped_payload_byte_fails_checksum() {
    let mut g = PropertyGraph::new();
    g.add_node("n0", "P").unwrap();
    g.add_node("n1", "A").unwrap();
    g.add_edge("e0", "n0", "n1", "u").unwrap();
    let mut session = CorpusSession::new();
    session.add(&g);
    let bytes = snapshot_session(&session);
    // Header = magic (4) + version (4) + checksum (8).
    for at in [16, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x40;
        let result = restore_session(&corrupted);
        assert!(
            matches!(result, Err(SnapshotError::Corrupt { .. })),
            "flip at byte {at}: {result:?}"
        );
    }
}
