//! Differential tests for the bitset-pruned dense kernel: the bitset
//! candidate domains must be **set-identical** to an independent
//! reconstruction of the legacy vector candidate rules, and the
//! WL-colour pre-filter must never remove a pair that appears in any
//! optimal matching the string oracle finds.
//!
//! These pin the two halves of the pruned kernel separately from the
//! end-to-end differentials in `differential_compiled.rs`: domain
//! construction (via the `debug_domains` introspection hook) and the
//! soundness of the colour signal (via oracle witnesses).

use proptest::prelude::*;
use provgraph::compiled::{CompiledGraph, Interner};
use provgraph::fingerprint::shape_colors_core;
use provgraph::PropertyGraph;

use aspsolver::{debug_domains, solve, solve_strings, Problem, SolverConfig};

/// An arbitrary small multigraph with node and edge properties (same
/// shape as the generator in `differential_compiled.rs`).
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = PropertyGraph> {
    let node_label = prop::sample::select(vec!["P", "A", "E"]);
    let edge_label = prop::sample::select(vec!["u", "g"]);
    (
        prop::collection::vec(node_label, 1..=max_nodes),
        prop::collection::vec((0usize..8, 0usize..8, edge_label), 0..=8),
        prop::collection::vec((0usize..8, "k[123]", "[abc]"), 0..=5),
    )
        .prop_map(|(nodes, edges, node_props)| {
            let mut g = PropertyGraph::new();
            for (i, label) in nodes.iter().enumerate() {
                g.add_node(format!("n{i}"), *label).unwrap();
            }
            let n = g.node_count();
            for (j, (s, t, label)) in edges.iter().enumerate() {
                g.add_edge(
                    format!("e{j}"),
                    format!("n{}", s % n),
                    format!("n{}", t % n),
                    *label,
                )
                .unwrap();
            }
            for (i, k, v) in node_props {
                g.set_node_property(&format!("n{}", i % n), k, v).unwrap();
            }
            g
        })
}

/// A structurally identical copy with fresh ids and reversed insertion
/// order, so bijective problems are feasible and witnesses non-trivial.
fn relabelled(g: &PropertyGraph) -> PropertyGraph {
    let mut out = PropertyGraph::new();
    let nodes: Vec<_> = g.nodes().collect();
    for n in nodes.iter().rev() {
        let mut copy = (*n).clone();
        copy.id = format!("c_{}", n.id);
        out.add_node_data(copy).unwrap();
    }
    let edges: Vec<_> = g.edges().collect();
    for e in edges.iter().rev() {
        let mut copy = (*e).clone();
        copy.id = format!("c_{}", e.id);
        copy.src = format!("c_{}", e.src);
        copy.tgt = format!("c_{}", e.tgt);
        out.add_edge_data(copy).unwrap();
    }
    out
}

const ALL_PROBLEMS: [Problem; 4] = [
    Problem::Similarity,
    Problem::Isomorphism,
    Problem::Generalization,
    Problem::Subgraph,
];

/// Rebuild the legacy per-pair candidate rules from public accessors
/// only: label equality, exact properties for isomorphism, and the
/// degree-signature filter. Returns ascending right ids per left node.
fn expected_candidates(
    problem: Problem,
    c1: &CompiledGraph,
    c2: &CompiledGraph,
    config: &SolverConfig,
) -> Vec<Vec<u32>> {
    use provgraph::compiled::degree_sig_leq;
    let n1 = c1.node_count() as u32;
    let n2 = c2.node_count() as u32;
    (0..n1)
        .map(|i| {
            (0..n2)
                .filter(|&j| {
                    if c1.node_label(i) != c2.node_label(j) {
                        return false;
                    }
                    if problem == Problem::Isomorphism && c1.node_props(i) != c2.node_props(j) {
                        return false;
                    }
                    if config.degree_filter {
                        let ok = if problem.bijective() {
                            c1.degree_sig(i) == c2.degree_sig(j)
                        } else {
                            degree_sig_leq(c1.degree_sig(i), c2.degree_sig(j))
                        };
                        if !ok {
                            return false;
                        }
                    }
                    true
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The initial bitset domains decode to exactly the candidate sets
    /// the legacy vector rules produce, for all four problems and for
    /// configurations with and without the degree filter; the WL masks
    /// are exactly the colour-compatible subsets.
    #[test]
    fn bitset_domains_match_vector_candidates(
        g1 in arb_graph(5),
        g2 in arb_graph(6),
        degree_filter in prop::sample::select(vec![false, true]),
    ) {
        let config = SolverConfig { degree_filter, ..SolverConfig::default() };
        for problem in ALL_PROBLEMS {
            let dd = debug_domains(problem, &g1, &g2, &config);
            let mut interner = Interner::new();
            let c1 = CompiledGraph::compile(&g1, &mut interner);
            let c2 = CompiledGraph::compile(&g2, &mut interner);
            let expected = expected_candidates(problem, &c1, &c2, &config);
            prop_assert_eq!(dd.candidates.len(), expected.len());
            prop_assert_eq!(dd.bitset.len(), expected.len());
            for (i, exp) in expected.iter().enumerate() {
                let mut cand = dd.candidates[i].clone();
                cand.sort_unstable();
                prop_assert_eq!(
                    &cand, exp,
                    "{:?} node {}: vector candidates diverge from the rules", problem, i
                );
                // `bitset` rows decode ascending by construction.
                prop_assert_eq!(
                    &dd.bitset[i], exp,
                    "{:?} node {}: bitset domain diverges from vector candidates", problem, i
                );
            }
            match &dd.wl {
                Some(wl) => {
                    prop_assert!(problem.bijective(), "WL masks only for bijective problems");
                    let colors1 = shape_colors_core(&c1);
                    let colors2 = shape_colors_core(&c2);
                    for (i, exp) in expected.iter().enumerate() {
                        let exp_wl: Vec<u32> = exp
                            .iter()
                            .copied()
                            .filter(|&j| colors1[i] == colors2[j as usize])
                            .collect();
                        prop_assert_eq!(
                            &wl[i], &exp_wl,
                            "{:?} node {}: WL mask diverges from colour classes", problem, i
                        );
                    }
                }
                None => prop_assert!(
                    !problem.bijective(),
                    "{:?}: WL masks must be active for bijective problems", problem
                ),
            }
        }
    }

    /// Soundness of the colour signal: every pair appearing in an
    /// optimal matching found by the string oracle survives the WL
    /// pre-filter (the filter only ever removes pairs no witness uses).
    #[test]
    fn wl_prefilter_keeps_oracle_witness_pairs(g in arb_graph(6)) {
        let h = relabelled(&g);
        let config = SolverConfig::default();
        for problem in [Problem::Similarity, Problem::Isomorphism, Problem::Generalization] {
            let Some(m) = solve_strings(problem, &g, &h, &config).matching else {
                continue;
            };
            let dd = debug_domains(problem, &g, &h, &config);
            let wl = dd.wl.as_ref().expect("bijective problem has WL masks");
            let mut interner = Interner::new();
            let c1 = CompiledGraph::compile(&g, &mut interner);
            let c2 = CompiledGraph::compile(&h, &mut interner);
            let index_of = |c: &CompiledGraph, id: &str| -> u32 {
                (0..c.node_count() as u32)
                    .find(|&v| c.node_id(v) == id)
                    .expect("witness id exists in its graph")
            };
            for (id1, id2) in &m.node_map {
                let i = index_of(&c1, id1);
                let j = index_of(&c2, id2);
                prop_assert!(
                    wl[i as usize].contains(&j),
                    "{:?}: witness pair {} -> {} removed by the WL pre-filter",
                    problem, id1, id2
                );
            }
        }
    }

    /// End-to-end: the pruned default agrees with the unpruned ablation
    /// baseline and the oracle on every outcome, with statistics never
    /// worse, on feasible bijective instances.
    #[test]
    fn pruned_outcomes_match_unpruned_on_copies(g in arb_graph(6)) {
        let h = relabelled(&g);
        let base = SolverConfig { dense_pruning: false, ..SolverConfig::default() };
        for problem in ALL_PROBLEMS {
            let pruned = solve(problem, &g, &h, &SolverConfig::default());
            let unpruned = solve(problem, &g, &h, &base);
            let strings = solve_strings(problem, &g, &h, &base);
            prop_assert_eq!(&pruned.matching, &unpruned.matching, "{:?}", problem);
            prop_assert_eq!(pruned.optimal, unpruned.optimal, "{:?}", problem);
            prop_assert_eq!(&unpruned.matching, &strings.matching, "{:?}", problem);
            prop_assert_eq!(unpruned.stats, strings.stats, "{:?}", problem);
            prop_assert!(pruned.stats.steps <= unpruned.stats.steps, "{:?}", problem);
        }
    }
}

/// A deterministic instance where the colour signal strictly beats
/// forward checking: two disjoint uniform-label paths of different
/// lengths. Path starts share degree signatures, so the search may try
/// mapping the start of the long path onto the start of the short one
/// and walk the chain before failing; iterated WL colours separate the
/// positions immediately. The right-hand graph inserts the short path
/// first so the wrong image precedes the right one in candidate order.
#[test]
fn wl_pruning_strictly_reduces_steps_on_mixed_paths() {
    fn paths(prefix: &str, chains: [(&str, usize); 2]) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for (c, len) in chains {
            for i in 0..len {
                g.add_node(format!("{prefix}{c}{i}"), "N").unwrap();
            }
            for i in 0..len - 1 {
                g.add_edge(
                    format!("{prefix}{c}e{i}"),
                    format!("{prefix}{c}{i}"),
                    format!("{prefix}{c}{}", i + 1),
                    "r",
                )
                .unwrap();
            }
        }
        g
    }
    let g1 = paths("x", [("a", 7), ("b", 3)]);
    let g2 = paths("y", [("b", 3), ("a", 7)]);
    let base = SolverConfig {
        dense_pruning: false,
        ..SolverConfig::default()
    };
    for problem in [Problem::Similarity, Problem::Generalization] {
        let pruned = solve(problem, &g1, &g2, &SolverConfig::default());
        let unpruned = solve(problem, &g1, &g2, &base);
        assert_eq!(pruned.matching, unpruned.matching, "{problem:?}");
        assert_eq!(pruned.optimal, unpruned.optimal, "{problem:?}");
        assert!(
            pruned.stats.steps < unpruned.stats.steps,
            "{problem:?}: colour pruning should strictly reduce steps \
             ({} vs {})",
            pruned.stats.steps,
            unpruned.stats.steps
        );
    }
}
