//! Differential property tests: the compiled (symbol-interned) engine and
//! the legacy string-path engine must return **identical** outcomes —
//! same feasibility verdict, same witness matching, same cost, same
//! optimality flag — for every problem over randomly generated graphs.
//!
//! The two engines share candidate ordering, variable selection and edge
//! placement logic by construction, so even witnesses (which are not
//! unique in general) line up exactly; asserting full equality is what
//! lets the string path serve as the reference implementation while the
//! compiled path serves production traffic.
//!
//! # What is pinned, and under which configuration
//!
//! The bitset-pruned kernel (`SolverConfig::dense_pruning`, default on)
//! is **outcome-neutral but statistics-improving**: WL-colour skips
//! remove provably solution-free work before the step counter. The
//! invariant split is therefore:
//!
//! - **every configuration**: matchings, costs, optimality flags equal
//!   the string oracle's;
//! - **`dense_pruning: false`**: search statistics are additionally
//!   bit-equal to the oracle's (the compiled representation is a pure
//!   representation change);
//! - **`dense_pruning: true`**: statistics are deterministic, never
//!   larger than the unpruned path's, and identical across the one-shot
//!   / session / batch / memo paths (asserted against each other, not
//!   against the oracle).

use proptest::prelude::*;
use provgraph::compiled::{CompiledGraph, CorpusSession, GraphId, Interner};
use provgraph::PropertyGraph;

use aspsolver::{
    solve, solve_batch_in, solve_batch_in_memo, solve_compiled, solve_in, solve_in_memo,
    solve_strings, Matching, Problem, SolveMemo, SolverConfig,
};

/// An arbitrary small multigraph with node and edge properties.
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = PropertyGraph> {
    let node_label = prop::sample::select(vec!["P", "A", "E"]);
    let edge_label = prop::sample::select(vec!["u", "g"]);
    (
        prop::collection::vec(node_label, 1..=max_nodes),
        prop::collection::vec((0usize..8, 0usize..8, edge_label), 0..=8),
        prop::collection::vec((0usize..8, "k[123]", "[abc]"), 0..=5),
        prop::collection::vec((0usize..8, "t[12]", "[xy]"), 0..=4),
    )
        .prop_map(|(nodes, edges, node_props, edge_props)| {
            let mut g = PropertyGraph::new();
            for (i, label) in nodes.iter().enumerate() {
                g.add_node(format!("n{i}"), *label).unwrap();
            }
            let n = g.node_count();
            for (j, (s, t, label)) in edges.iter().enumerate() {
                g.add_edge(
                    format!("e{j}"),
                    format!("n{}", s % n),
                    format!("n{}", t % n),
                    *label,
                )
                .unwrap();
            }
            for (i, k, v) in node_props {
                g.set_node_property(&format!("n{}", i % n), k, v).unwrap();
            }
            let m = g.edge_count();
            if m > 0 {
                for (j, k, v) in edge_props {
                    g.set_edge_property(&format!("e{}", j % m), k, v).unwrap();
                }
            }
            g
        })
}

/// A structurally identical copy with fresh ids, reversed insertion order
/// and perturbed properties (drives the optimizing problems off the
/// trivial zero-cost diagonal).
fn relabel_perturbed(g: &PropertyGraph, perturb: bool) -> PropertyGraph {
    let mut out = PropertyGraph::new();
    let nodes: Vec<_> = g.nodes().collect();
    for n in nodes.iter().rev() {
        let mut copy = (*n).clone();
        copy.id = format!("c_{}", n.id);
        if perturb {
            copy.props.insert("k1".to_owned(), "perturbed".to_owned());
        }
        out.add_node_data(copy).unwrap();
    }
    let edges: Vec<_> = g.edges().collect();
    for e in edges.iter().rev() {
        let mut copy = (*e).clone();
        copy.id = format!("c_{}", e.id);
        copy.src = format!("c_{}", e.src);
        copy.tgt = format!("c_{}", e.tgt);
        out.add_edge_data(copy).unwrap();
    }
    out
}

const ALL_PROBLEMS: [Problem; 4] = [
    Problem::Similarity,
    Problem::Isomorphism,
    Problem::Generalization,
    Problem::Subgraph,
];

/// Assert both engines produce the same outcome; returns the matching for
/// further validity checks.
fn assert_paths_agree(
    problem: Problem,
    g1: &PropertyGraph,
    g2: &PropertyGraph,
    config: &SolverConfig,
) -> Option<Matching> {
    let compiled = solve(problem, g1, g2, config);
    let strings = solve_strings(problem, g1, g2, config);
    assert_eq!(
        compiled.optimal, strings.optimal,
        "{problem:?}: optimality flags diverge"
    );
    assert_eq!(
        compiled.matching.is_some(),
        strings.matching.is_some(),
        "{problem:?}: feasibility diverges"
    );
    match (&compiled.matching, &strings.matching) {
        (Some(c), Some(s)) => {
            assert_eq!(c.cost, s.cost, "{problem:?}: optima diverge");
            assert_eq!(
                c.node_map, s.node_map,
                "{problem:?}: node witnesses diverge"
            );
            assert_eq!(
                c.edge_map, s.edge_map,
                "{problem:?}: edge witnesses diverge"
            );
        }
        (None, None) => {}
        _ => unreachable!("feasibility already compared"),
    }
    compiled.matching
}

/// Check a matching is a valid witness for `problem` (independent of
/// either engine's internals).
fn assert_valid_witness(problem: Problem, g1: &PropertyGraph, g2: &PropertyGraph, m: &Matching) {
    assert_eq!(
        m.node_map.len(),
        g1.node_count(),
        "{problem:?}: total on nodes"
    );
    assert_eq!(
        m.edge_map.len(),
        g1.edge_count(),
        "{problem:?}: total on edges"
    );
    // Injectivity.
    let images: std::collections::BTreeSet<&String> = m.node_map.values().collect();
    assert_eq!(
        images.len(),
        m.node_map.len(),
        "{problem:?}: node injectivity"
    );
    let eimages: std::collections::BTreeSet<&String> = m.edge_map.values().collect();
    assert_eq!(
        eimages.len(),
        m.edge_map.len(),
        "{problem:?}: edge injectivity"
    );
    if problem.bijective() {
        assert_eq!(m.node_map.len(), g2.node_count(), "{problem:?}: onto nodes");
        assert_eq!(m.edge_map.len(), g2.edge_count(), "{problem:?}: onto edges");
    }
    // Structure and label preservation.
    for (id1, id2) in &m.node_map {
        assert_eq!(
            g1.node_label(id1),
            g2.node_label(id2),
            "{problem:?}: node label preserved"
        );
    }
    for (e1, e2) in &m.edge_map {
        let d1 = g1.edge(e1).unwrap();
        let d2 = g2.edge(e2).unwrap();
        assert_eq!(d1.label, d2.label, "{problem:?}: edge label preserved");
        assert_eq!(
            &m.node_map[&d1.src], &d2.src,
            "{problem:?}: source preserved"
        );
        assert_eq!(
            &m.node_map[&d1.tgt], &d2.tgt,
            "{problem:?}: target preserved"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Identical outcomes on arbitrary (mostly infeasible) pairs.
    #[test]
    fn engines_agree_on_arbitrary_pairs(
        g1 in arb_graph(4),
        g2 in arb_graph(5),
    ) {
        for problem in ALL_PROBLEMS {
            if let Some(m) = assert_paths_agree(problem, &g1, &g2, &SolverConfig::default()) {
                assert_valid_witness(problem, &g1, &g2, &m);
            }
        }
    }

    /// Identical outcomes on relabelled copies (always feasible for the
    /// bijective problems, so witnesses are actually exercised).
    #[test]
    fn engines_agree_on_relabelled_copies(g in arb_graph(6)) {
        let h = relabel_perturbed(&g, false);
        for problem in ALL_PROBLEMS {
            let m = assert_paths_agree(problem, &g, &h, &SolverConfig::default())
                .expect("relabelled copy must match");
            assert_valid_witness(problem, &g, &h, &m);
            if problem.optimizing() {
                assert_eq!(m.cost, 0, "{problem:?}: identical copy at zero cost");
            }
        }
    }

    /// Identical outcomes (including nonzero optima) on property-perturbed
    /// copies.
    #[test]
    fn engines_agree_on_perturbed_copies(g in arb_graph(5)) {
        let h = relabel_perturbed(&g, true);
        for problem in [Problem::Generalization, Problem::Subgraph] {
            if let Some(m) = assert_paths_agree(problem, &g, &h, &SolverConfig::default()) {
                assert_valid_witness(problem, &g, &h, &m);
            }
        }
    }

    /// The ablation configurations agree across engines too (they drive
    /// different search orders, which must stay in lockstep).
    #[test]
    fn engines_agree_under_ablation_configs(g in arb_graph(4)) {
        let h = relabel_perturbed(&g, true);
        let configs = [
            SolverConfig::naive(),
            SolverConfig { degree_filter: false, ..SolverConfig::default() },
            // Bitset kernel with static domains (no forward propagation).
            SolverConfig { forward_check: false, ..SolverConfig::default() },
            SolverConfig { cost_bound: false, order_by_cost: false, ..SolverConfig::default() },
            // The unpruned dense path (the ablation baseline).
            SolverConfig { dense_pruning: false, ..SolverConfig::default() },
            SolverConfig {
                dense_pruning: false,
                forward_check: false,
                ..SolverConfig::default()
            },
        ];
        for config in &configs {
            for problem in ALL_PROBLEMS {
                assert_paths_agree(problem, &g, &h, config);
            }
        }
    }

    /// With pruning disabled, step/backtrack statistics line up exactly —
    /// the compiled engine is then a representation change, not a
    /// search-order change. With pruning enabled (the default), the
    /// outcome is still oracle-identical while the statistics are
    /// deterministic and never worse than the unpruned path's.
    #[test]
    fn engines_explore_identically(g in arb_graph(5), h in arb_graph(5)) {
        let base = SolverConfig { dense_pruning: false, ..SolverConfig::default() };
        for problem in ALL_PROBLEMS {
            let unpruned = solve(problem, &g, &h, &base);
            let strings = solve_strings(problem, &g, &h, &base);
            prop_assert_eq!(
                unpruned.stats, strings.stats,
                "{:?}: unpruned search statistics diverge from the oracle", problem
            );
            let pruned = solve(problem, &g, &h, &SolverConfig::default());
            prop_assert_eq!(
                &pruned.matching, &strings.matching,
                "{:?}: pruned matching diverges from the oracle", problem
            );
            prop_assert_eq!(
                pruned.optimal, strings.optimal,
                "{:?}: pruned optimality diverges from the oracle", problem
            );
            prop_assert!(
                pruned.stats.steps <= unpruned.stats.steps,
                "{:?}: pruning must never add steps ({} > {})",
                problem, pruned.stats.steps, unpruned.stats.steps
            );
            prop_assert!(
                pruned.stats.backtracks <= unpruned.stats.backtracks,
                "{:?}: pruning must never add backtracks ({} > {})",
                problem, pruned.stats.backtracks, unpruned.stats.backtracks
            );
            let replay = solve(problem, &g, &h, &SolverConfig::default());
            prop_assert_eq!(
                pruned.stats, replay.stats,
                "{:?}: pruned statistics must be deterministic", problem
            );
        }
    }

    /// The corpus-session path returns outcomes identical to **both** the
    /// string oracle and the borrow-based compiled path — matchings,
    /// costs and optimality always; statistics to the oracle with
    /// pruning off, and across compiled paths (memoized session colours
    /// vs one-shot colour derivation) with pruning on — on every ordered
    /// pair of a randomly generated corpus, for all four problems. This
    /// is what licenses the pipeline to run generalization and
    /// comparison over session handles while the string path stays the
    /// reference.
    #[test]
    fn session_path_agrees_with_both_engines(
        graphs in prop::collection::vec(arb_graph(4), 2..4),
        perturbed_copy in prop::sample::select(vec![false, true]),
    ) {
        let mut corpus: Vec<PropertyGraph> = graphs;
        // Guarantee at least one feasible bijective pair in the corpus so
        // witnesses are exercised, not just infeasibility verdicts.
        let copy = relabel_perturbed(&corpus[0], perturbed_copy);
        corpus.push(copy);
        let mut session = CorpusSession::new();
        let ids: Vec<_> = corpus.iter().map(|g| session.add(g)).collect();
        // An equivalent borrow-based compilation sharing one interner.
        let mut interner = Interner::new();
        let compiled: Vec<CompiledGraph> = corpus
            .iter()
            .map(|g| CompiledGraph::compile(g, &mut interner))
            .collect();
        let config = SolverConfig::default();
        for i in 0..corpus.len() {
            for j in 0..corpus.len() {
                for problem in ALL_PROBLEMS {
                    let in_session = solve_in(problem, &session, ids[i], ids[j], &config);
                    let strings = solve_strings(problem, &corpus[i], &corpus[j], &config);
                    let borrowed =
                        solve_compiled(problem, &compiled[i], &compiled[j], &config);
                    prop_assert_eq!(
                        in_session.optimal, strings.optimal,
                        "{:?} ({}, {}): optimality diverges from oracle", problem, i, j
                    );
                    prop_assert_eq!(
                        &in_session.matching, &strings.matching,
                        "{:?} ({}, {}): matching diverges from oracle", problem, i, j
                    );
                    // Statistics are pinned to the oracle with pruning
                    // off; with pruning on (default) they are pinned
                    // *across compiled paths* (session colours vs
                    // one-shot derivation must prune identically) and
                    // bounded by the unpruned counts.
                    let base = SolverConfig { dense_pruning: false, ..config.clone() };
                    let unpruned = solve_in(problem, &session, ids[i], ids[j], &base);
                    prop_assert_eq!(
                        unpruned.stats, strings.stats,
                        "{:?} ({}, {}): unpruned statistics diverge from oracle", problem, i, j
                    );
                    prop_assert_eq!(
                        &unpruned.matching, &strings.matching,
                        "{:?} ({}, {}): unpruned matching diverges from oracle", problem, i, j
                    );
                    prop_assert!(
                        in_session.stats.steps <= unpruned.stats.steps,
                        "{:?} ({}, {}): pruning must never add steps", problem, i, j
                    );
                    prop_assert_eq!(
                        &in_session.matching, &borrowed.matching,
                        "{:?} ({}, {}): session and borrowed compiled paths diverge",
                        problem, i, j
                    );
                    prop_assert_eq!(
                        in_session.stats, borrowed.stats,
                        "{:?} ({}, {}): session and borrowed stats diverge", problem, i, j
                    );
                    if let Some(m) = &in_session.matching {
                        assert_valid_witness(problem, &corpus[i], &corpus[j], m);
                    }
                }
            }
        }
    }

    /// The batch path (one prepared left-hand plan, many right-hand
    /// graphs) returns outcomes identical to per-pair [`solve_in`] in
    /// every observable including search statistics, and to the string
    /// oracle in matchings, costs and optimality flags — for every left
    /// graph of a random corpus against the whole corpus, for all four
    /// problems. This is what licenses similarity classification and
    /// the comparison stage to batch their solves.
    #[test]
    fn batch_path_agrees_with_per_pair_session_and_oracle(
        graphs in prop::collection::vec(arb_graph(4), 2..4),
        perturbed_copy in prop::sample::select(vec![false, true]),
    ) {
        let mut corpus: Vec<PropertyGraph> = graphs;
        // Guarantee at least one feasible bijective pair so witnesses
        // are exercised, not just infeasibility verdicts.
        let copy = relabel_perturbed(&corpus[0], perturbed_copy);
        corpus.push(copy);
        let mut session = CorpusSession::new();
        let ids: Vec<GraphId> = corpus.iter().map(|g| session.add(g)).collect();
        let config = SolverConfig::default();
        for problem in ALL_PROBLEMS {
            for (i, &lhs) in ids.iter().enumerate() {
                // The batch includes the left graph itself (the
                // self-solve is a legal member of a bucket batch).
                let batch = solve_batch_in(problem, &session, lhs, &ids, &config);
                prop_assert_eq!(batch.len(), ids.len());
                for (j, out) in batch.iter().enumerate() {
                    let per_pair = solve_in(problem, &session, lhs, ids[j], &config);
                    let strings = solve_strings(problem, &corpus[i], &corpus[j], &config);
                    prop_assert_eq!(
                        &out.matching, &per_pair.matching,
                        "{:?} ({}, {}): batch matching diverges from per-pair", problem, i, j
                    );
                    prop_assert_eq!(
                        out.optimal, per_pair.optimal,
                        "{:?} ({}, {}): batch optimality diverges from per-pair", problem, i, j
                    );
                    prop_assert_eq!(
                        out.stats, per_pair.stats,
                        "{:?} ({}, {}): batch statistics diverge from per-pair", problem, i, j
                    );
                    prop_assert_eq!(
                        &out.matching, &strings.matching,
                        "{:?} ({}, {}): batch matching diverges from oracle", problem, i, j
                    );
                    // Statistics vs the oracle are pinned under
                    // `dense_pruning: false`; the default-config batch
                    // is held to the per-pair session path above, which
                    // `session_path_agrees_with_both_engines` bounds
                    // against the oracle.
                    if let Some(m) = &out.matching {
                        assert_valid_witness(problem, &corpus[i], &corpus[j], m);
                    }
                }
            }
        }
    }

    /// Mixed-session batch fuzz: right-hand batches where [`GraphId`]
    /// handles **repeat and interleave** arbitrarily, run across all four
    /// problems over one shared session. Repeats land in one
    /// dense-solve-sharing group by construction (a graph's core is
    /// trivially solver-equivalent to itself), so this exercises the
    /// grouping, translation fan-out and ordering logic well beyond the
    /// each-member-once batches the pipeline issues — while the outcome
    /// must stay position-by-position identical to per-pair [`solve_in`]
    /// and the string oracle, including search statistics.
    #[test]
    fn batch_fuzz_repeated_interleaved_handles(
        graphs in prop::collection::vec(arb_graph(4), 2..4),
        picks in prop::collection::vec(0usize..16, 0..12),
        lhs_picks in prop::collection::vec(0usize..16, 2..4),
    ) {
        let mut corpus: Vec<PropertyGraph> = graphs;
        // A relabelled copy and an exact clone: guarantees both a
        // feasible bijective pair and same-structure rights that the
        // batch path will group into one shared dense solve.
        let copy = relabel_perturbed(&corpus[0], false);
        corpus.push(copy);
        corpus.push(corpus[0].clone());
        let mut session = CorpusSession::new();
        let ids: Vec<GraphId> = corpus.iter().map(|g| session.add(g)).collect();
        // Arbitrary multiset of handles: repeats and interleavings of
        // every corpus member, in fuzzer-chosen order.
        let rhs: Vec<GraphId> = picks.iter().map(|&p| ids[p % ids.len()]).collect();
        let config = SolverConfig::default();
        for &lp in &lhs_picks {
            let lhs = ids[lp % ids.len()];
            let li = lhs.index();
            for problem in ALL_PROBLEMS {
                let batch = solve_batch_in(problem, &session, lhs, &rhs, &config);
                prop_assert_eq!(batch.len(), rhs.len());
                for (pos, out) in batch.iter().enumerate() {
                    let rid = rhs[pos];
                    let ri = rid.index();
                    let per_pair = solve_in(problem, &session, lhs, rid, &config);
                    let strings = solve_strings(problem, &corpus[li], &corpus[ri], &config);
                    prop_assert_eq!(
                        &out.matching, &per_pair.matching,
                        "{:?} lhs {} pos {} (rhs {}): fuzzed batch diverges from per-pair",
                        problem, li, pos, ri
                    );
                    prop_assert_eq!(
                        out.optimal, per_pair.optimal,
                        "{:?} lhs {} pos {} (rhs {}): optimality diverges",
                        problem, li, pos, ri
                    );
                    prop_assert_eq!(
                        out.stats, per_pair.stats,
                        "{:?} lhs {} pos {} (rhs {}): statistics diverge",
                        problem, li, pos, ri
                    );
                    prop_assert_eq!(
                        &out.matching, &strings.matching,
                        "{:?} lhs {} pos {} (rhs {}): fuzzed batch diverges from oracle",
                        problem, li, pos, ri
                    );
                    if let Some(m) = &out.matching {
                        assert_valid_witness(problem, &corpus[li], &corpus[ri], m);
                    }
                }
            }
        }
    }

    /// Memo-on solves must be identical to memo-off solves in every
    /// observable — matchings, costs, optimality flags and search
    /// statistics — across all four problems over one **mixed** session
    /// (an exact duplicate and a relabelled copy guarantee equivalent
    /// cores under distinct handles), with one [`SolveMemo`] shared by
    /// every problem, batch and per-pair call. Each batch runs twice, so
    /// the second pass exercises the hit path; the memo must actually
    /// have served hits by the end.
    #[test]
    fn memo_on_agrees_with_memo_off(
        graphs in prop::collection::vec(arb_graph(4), 2..4),
        perturbed_copy in prop::sample::select(vec![false, true]),
    ) {
        let mut corpus: Vec<PropertyGraph> = graphs;
        let copy = relabel_perturbed(&corpus[0], perturbed_copy);
        corpus.push(copy);
        corpus.push(corpus[0].clone());
        let mut session = CorpusSession::new();
        let ids: Vec<GraphId> = corpus.iter().map(|g| session.add(g)).collect();
        let config = SolverConfig::default();
        let memo = SolveMemo::new();
        for problem in ALL_PROBLEMS {
            for (i, &lhs) in ids.iter().enumerate() {
                let plain = solve_batch_in(problem, &session, lhs, &ids, &config);
                for pass in 0..2 {
                    let memoed =
                        solve_batch_in_memo(problem, &session, lhs, &ids, &config, Some(&memo));
                    prop_assert_eq!(memoed.len(), plain.len());
                    for (j, (m, p)) in memoed.iter().zip(&plain).enumerate() {
                        prop_assert_eq!(
                            &m.matching, &p.matching,
                            "{:?} ({}, {}) pass {}: memo-on matching diverges",
                            problem, i, j, pass
                        );
                        prop_assert_eq!(
                            m.optimal, p.optimal,
                            "{:?} ({}, {}) pass {}: memo-on optimality diverges",
                            problem, i, j, pass
                        );
                        prop_assert_eq!(
                            m.stats, p.stats,
                            "{:?} ({}, {}) pass {}: memo-on statistics diverge",
                            problem, i, j, pass
                        );
                    }
                }
                // Per-pair solves through the same memo (hits seeded by
                // the batches above) agree with memo-off per-pair solves.
                for (j, &rid) in ids.iter().enumerate() {
                    let m = solve_in_memo(problem, &session, lhs, rid, &config, Some(&memo));
                    let p = solve_in(problem, &session, lhs, rid, &config);
                    prop_assert_eq!(
                        &m.matching, &p.matching,
                        "{:?} ({}, {}): per-pair memo matching diverges", problem, i, j
                    );
                    prop_assert_eq!(m.optimal, p.optimal, "{:?} ({}, {})", problem, i, j);
                    prop_assert_eq!(m.stats, p.stats, "{:?} ({}, {})", problem, i, j);
                    if let Some(w) = &m.matching {
                        assert_valid_witness(problem, &corpus[i], &corpus[j], w);
                    }
                }
            }
        }
        prop_assert!(memo.hits() > 0, "replays must be served from the memo");
    }
}
