//! Structured run telemetry for the ProvMark stack: hierarchical spans,
//! typed counters, versioned JSONL trace files and a cross-worker
//! timeline merge.
//!
//! The execution stack — compiled-kernel solves behind a capacity-capped
//! [`aspsolver`] memo, the `core::pipeline` matrix runner, and the
//! fault-tolerant elastic shard supervisor — previously exposed only
//! end-of-run aggregates. This crate is the window into a *live* run:
//! every layer holds a cheap [`Tracer`] handle and emits spans
//! (`span_enter` / `span_exit` with monotonic timestamps and parent
//! ids), point events and counters; flushing serializes them as a
//! versioned JSONL file written durably (same-directory temp file,
//! `fsync`, atomic rename) so a torn trace is never observable.
//!
//! # Design rules
//!
//! - **Zero dependencies.** The JSON writer and parser are hand-rolled,
//!   so the crate sits at the very bottom of the workspace dependency
//!   graph and everything above it (including `aspsolver`) can depend
//!   on it. Integers are serialized as plain JSON numbers and parsed
//!   exactly (no `f64` round-trip), so 64-bit counters survive.
//! - **Observably outcome-neutral.** A disabled tracer
//!   ([`Tracer::disabled`]) is a `None` behind an `Option` check: no
//!   allocation, no lock, and field closures are never invoked. Every
//!   emitting call site pays one branch when tracing is off.
//! - **Torn traces are typed errors, never panics.** The file format is
//!   framed by a magic/version header line and a footer line carrying
//!   the event count and counter totals; a file cut at *any* byte —
//!   including exactly at a line boundary — fails to parse with a
//!   [`TraceError`] (see the corruption fuzz suite in `tests/`).
//! - **Merges are deterministic.** [`TraceMerge`] folds per-worker
//!   trace files into one globally-ordered timeline keyed by
//!   `(wall-clock ns, worker label, pid, seq)`, so the merged order is
//!   independent of file arrival or enumeration order.
//!
//! # File format (`PMTRACE` version 1)
//!
//! ```text
//! {"magic":"PMTRACE","version":1,"label":"worker-0","pid":1234,"epoch_unix_ns":...}
//! {"seq":0,"ts_ns":120,"kind":"span_enter","name":"cell","span":1,"parent":null,"fields":{...}}
//! {"seq":1,"ts_ns":980,"kind":"span_exit","name":"cell","span":1,"parent":null,"fields":{}}
//! {"magic":"PMTRACE_END","events":2,"counters":{"memo.hits":17}}
//! ```
//!
//! `epoch_unix_ns` anchors the tracer's monotonic clock to wall time at
//! construction; `ts_ns` is nanoseconds since that anchor, so
//! cross-process ordering uses `epoch_unix_ns + ts_ns`. See
//! `crates/provtrace/README.md` for the full schema and versioning
//! rules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Magic tag on the first line of every trace file.
pub const TRACE_MAGIC: &str = "PMTRACE";
/// Magic tag on the footer (last) line of every complete trace file.
pub const TRACE_END_MAGIC: &str = "PMTRACE_END";
/// Current trace file format version.
pub const TRACE_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Durable writes
// ---------------------------------------------------------------------------

/// Ever-increasing suffix so concurrent durable writes from one process
/// never collide on a temp name.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` durably and atomically.
///
/// The bytes land in a same-directory temp file first
/// (`.{name}.tmp.{pid}.{seq}`), are fsynced, then renamed over `path`,
/// and the directory is fsynced so the rename itself is durable. A
/// crash at any point leaves either the old content or the new — never
/// a torn file. This is the workspace-wide primitive: `aspsolver`'s
/// solve-cache writer and `provshard`'s artifact writer both delegate
/// here, and every trace file is written through it.
pub fn write_bytes_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        std::fs::File::open(&dir)?.sync_all()?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// Fields
// ---------------------------------------------------------------------------

/// Lock the tracer state, recovering from poisoning. A panic on some
/// other thread while it held the lock leaves the record buffer in a
/// consistent state (every mutation is a single push or map update),
/// and telemetry must never turn one thread's panic into another's.
fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer (serialized exactly — no float round-trip).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}
impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U64(u64::from(v))
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

/// Field list type returned by the lazy field closures: the closure is
/// only invoked when the tracer is enabled, so disabled call sites
/// never allocate.
pub type Fields = Vec<(&'static str, Field)>;

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Opaque id of an open span, used to parent child spans and events and
/// to close the span. `None` everywhere when tracing is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// Raw numeric id (unique within one tracer).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Kind discriminant of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span` carries its id, `parent` the enclosing span).
    SpanEnter,
    /// A span closed (`span` matches the corresponding enter).
    SpanExit,
    /// A point-in-time event.
    Event,
}

impl EventKind {
    /// Stable wire/display name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Event => "event",
        }
    }
    fn parse(s: &str) -> Option<Self> {
        match s {
            "span_enter" => Some(EventKind::SpanEnter),
            "span_exit" => Some(EventKind::SpanExit),
            "event" => Some(EventKind::Event),
            _ => None,
        }
    }
}

/// One buffered record: timestamps are nanoseconds since the tracer's
/// monotonic origin.
#[derive(Debug, Clone)]
struct Record {
    ts_ns: u128,
    kind: EventKind,
    name: &'static str,
    span: Option<u64>,
    parent: Option<u64>,
    fields: Fields,
}

#[derive(Debug, Default)]
struct State {
    records: Vec<Record>,
    counters: BTreeMap<&'static str, u64>,
    next_span: u64,
}

#[derive(Debug)]
struct Inner {
    label: String,
    pid: u32,
    /// Wall-clock anchor (ns since the unix epoch) taken when the
    /// tracer was created; `epoch_unix_ns + ts_ns` is a cross-process
    /// comparable timestamp.
    epoch_unix_ns: u128,
    origin: Instant,
    state: Mutex<State>,
}

/// Thread-safe telemetry sink. Clone it freely: clones share one event
/// buffer. A disabled tracer ([`Tracer::disabled`]) costs one branch
/// per call site — no allocation, no lock, field closures not invoked.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A no-op tracer: every emitting method is a single `Option`
    /// check. This is the default everywhere tracing is not requested.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer labelled `label` (e.g. `"drive"`,
    /// `"worker-3"`). The label and the recording process id identify
    /// the worker in merged timelines.
    pub fn new(label: &str) -> Self {
        let epoch_unix_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        Tracer {
            inner: Some(Arc::new(Inner {
                label: label.to_string(),
                pid: std::process::id(),
                epoch_unix_ns,
                origin: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this tracer records anything. Callers never need to
    /// check before emitting (disabled calls are free); this exists for
    /// sites that do extra work *around* tracing, like flushing files.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Worker label, when enabled.
    pub fn label(&self) -> Option<&str> {
        self.inner.as_deref().map(|i| i.label.as_str())
    }

    /// Conventional trace file name for this tracer:
    /// `trace.{label}.{pid}.jsonl`. Distinct pids keep respawned
    /// workers from clobbering the trace a killed predecessor left
    /// behind. `None` when disabled.
    pub fn file_name(&self) -> Option<String> {
        self.inner
            .as_deref()
            .map(|i| format!("trace.{}.{}.jsonl", i.label, i.pid))
    }

    /// Open a span. `fields` is only invoked when enabled. Returns the
    /// span id to parent children under and to close with
    /// [`Tracer::span_exit`]; `None` when disabled.
    pub fn span_enter<F>(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        fields: F,
    ) -> Option<SpanId>
    where
        F: FnOnce() -> Fields,
    {
        let inner = self.inner.as_deref()?;
        let ts_ns = inner.origin.elapsed().as_nanos();
        let fields = fields();
        let mut state = lock_unpoisoned(&inner.state);
        state.next_span += 1;
        let id = state.next_span;
        state.records.push(Record {
            ts_ns,
            kind: EventKind::SpanEnter,
            name,
            span: Some(id),
            parent: parent.map(|p| p.0),
            fields,
        });
        Some(SpanId(id))
    }

    /// Close a span opened by [`Tracer::span_enter`]. Accepts the
    /// `Option` directly so disabled call sites stay one line.
    pub fn span_exit(&self, name: &'static str, span: Option<SpanId>) {
        self.span_exit_with(name, span, Vec::new);
    }

    /// Close a span, attaching exit fields (e.g. search statistics
    /// known only after the work ran).
    pub fn span_exit_with<F>(&self, name: &'static str, span: Option<SpanId>, fields: F)
    where
        F: FnOnce() -> Fields,
    {
        let (Some(inner), Some(span)) = (self.inner.as_deref(), span) else {
            return;
        };
        let ts_ns = inner.origin.elapsed().as_nanos();
        let fields = fields();
        let mut state = lock_unpoisoned(&inner.state);
        state.records.push(Record {
            ts_ns,
            kind: EventKind::SpanExit,
            name,
            span: Some(span.0),
            parent: None,
            fields,
        });
    }

    /// Emit a point-in-time event, optionally parented under a span.
    pub fn event<F>(&self, name: &'static str, parent: Option<SpanId>, fields: F)
    where
        F: FnOnce() -> Fields,
    {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let ts_ns = inner.origin.elapsed().as_nanos();
        let fields = fields();
        let mut state = lock_unpoisoned(&inner.state);
        state.records.push(Record {
            ts_ns,
            kind: EventKind::Event,
            name,
            span: None,
            parent: parent.map(|p| p.0),
            fields,
        });
    }

    /// Add `delta` to the named counter. Counter totals ride in the
    /// trace footer, not the event stream, so high-frequency counting
    /// (memo hits in a hot loop) costs one map update, not one event
    /// line each.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let mut state = lock_unpoisoned(&inner.state);
        *state.counters.entry(name).or_insert(0) += delta;
    }

    /// Serialize the current buffer as a complete versioned JSONL
    /// trace (header, events, footer). Snapshots without draining, so
    /// workers can flush cumulatively after each unit of work and a
    /// kill between flushes loses only the tail. `None` when disabled.
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        let inner = self.inner.as_deref()?;
        let state = lock_unpoisoned(&inner.state);
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"magic\":{},\"version\":{},\"label\":{},\"pid\":{},\"epoch_unix_ns\":{}}}\n",
            json_str(TRACE_MAGIC),
            TRACE_VERSION,
            json_str(&inner.label),
            inner.pid,
            inner.epoch_unix_ns
        ));
        for (seq, rec) in state.records.iter().enumerate() {
            out.push_str(&format!(
                "{{\"seq\":{},\"ts_ns\":{},\"kind\":{},\"name\":{},\"span\":{},\"parent\":{},\"fields\":{{",
                seq,
                rec.ts_ns,
                json_str(rec.kind.as_str()),
                json_str(rec.name),
                rec.span.map_or("null".to_string(), |s| s.to_string()),
                rec.parent.map_or("null".to_string(), |p| p.to_string()),
            ));
            for (i, (key, value)) in rec.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(key));
                out.push(':');
                match value {
                    Field::U64(v) => out.push_str(&v.to_string()),
                    Field::I64(v) => out.push_str(&v.to_string()),
                    Field::F64(v) => {
                        if v.is_finite() {
                            out.push_str(&format!("{v}"));
                        } else {
                            out.push_str("null");
                        }
                    }
                    Field::Str(v) => out.push_str(&json_str(v)),
                    Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                }
            }
            out.push_str("}}\n");
        }
        out.push_str(&format!(
            "{{\"magic\":{},\"events\":{},\"counters\":{{",
            json_str(TRACE_END_MAGIC),
            state.records.len()
        ));
        for (i, (name, value)) in state.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(name));
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("}}\n");
        Some(out.into_bytes())
    }

    /// Flush the buffer durably to `dir/trace.{label}.{pid}.jsonl`.
    /// No-op (and `Ok`) when disabled. Safe to call repeatedly; each
    /// flush atomically replaces the previous one with a longer,
    /// complete trace.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<()> {
        let (Some(bytes), Some(name)) = (self.to_bytes(), self.file_name()) else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)?;
        write_bytes_durable(&dir.join(name), &bytes)
    }
}

/// JSON-escape a string (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // provlint: allow(lossy-cast-in-serde) -- char to u32 is lossless by definition
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a trace file failed to load. Corruption is always a typed error,
/// never a panic: operators point `provmark-trace` at run directories
/// that may hold traces torn by killed workers or foreign versions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The first line is missing, unparseable, or does not carry the
    /// `PMTRACE` magic — this is not a trace file.
    BadMagic,
    /// The header is a trace but from an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The file ends early: no footer line (or no final newline), so
    /// the tail was lost. `at` is the byte length observed.
    Truncated {
        /// Observed byte length of the truncated file.
        at: usize,
    },
    /// The file is internally inconsistent: a malformed event line,
    /// a sequence gap, a footer count mismatch, or trailing bytes
    /// after the footer.
    Corrupt {
        /// Human-readable description of the first inconsistency.
        detail: String,
    },
    /// An I/O error while reading.
    Io {
        /// The underlying error, rendered.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => {
                write!(f, "not a provtrace file (missing {TRACE_MAGIC} header)")
            }
            TraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "trace format version {found} is not supported (this build reads version {supported}); \
                 re-record the trace with a matching build"
            ),
            TraceError::Truncated { at } => write!(
                f,
                "trace truncated at byte {at}: footer missing — the writer was likely killed mid-run; \
                 partial traces are recoverable only up to their last durable flush"
            ),
            TraceError::Corrupt { detail } => write!(f, "trace corrupt: {detail}"),
            TraceError::Io { detail } => write!(f, "trace I/O error: {detail}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io {
            detail: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal exact JSON parser
// ---------------------------------------------------------------------------

/// Hand-rolled JSON value: integers are kept exact (`i128`), so 64-bit
/// counters and 128-bit nanosecond timestamps survive parsing.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Self {
        Parser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn parse_line(line: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(line);
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at column {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\r') {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at column {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at column {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at column {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at column {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at column {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("bad unicode escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad unicode escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad unicode escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim;
                    // the input is already a valid &str.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    // provlint: allow(panic-in-lib) -- `peek()` returned Some, so `rest` is non-empty
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad float at column {start}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("integer out of range at column {start}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Parsed traces
// ---------------------------------------------------------------------------

/// A parsed field value (owned mirror of [`Field`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A null field (non-finite floats serialize as null).
    Null,
}

impl FieldValue {
    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Null => write!(f, "null"),
        }
    }
}

/// One parsed trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Position in the worker's event stream (0-based, gap-free).
    pub seq: u64,
    /// Nanoseconds since the worker tracer's monotonic origin.
    pub ts_ns: u128,
    /// Record kind.
    pub kind: EventKind,
    /// Record name (e.g. `"cell"`, `"memo.hit"`, `"claim"`).
    pub name: String,
    /// Span id for enter/exit records.
    pub span: Option<u64>,
    /// Parent span id, when parented.
    pub parent: Option<u64>,
    /// Attached fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// A closed span reconstructed from an enter/exit pair, or a still-open
/// span (enter with no matching exit — e.g. the worker was killed).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Span id within the worker.
    pub span: u64,
    /// Parent span id, when parented.
    pub parent: Option<u64>,
    /// Enter timestamp (ns since the worker origin).
    pub start_ts_ns: u128,
    /// Exit timestamp; `None` for spans never closed.
    pub end_ts_ns: Option<u128>,
    /// Enter fields followed by exit fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds, when closed.
    pub fn duration_ns(&self) -> Option<u128> {
        self.end_ts_ns
            .map(|end| end.saturating_sub(self.start_ts_ns))
    }
    /// Look up a field by name (enter fields first).
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// One fully parsed and validated trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Worker label from the header.
    pub label: String,
    /// Recording process id.
    pub pid: u32,
    /// Wall-clock anchor (ns since the unix epoch) of the worker's
    /// monotonic origin.
    pub epoch_unix_ns: u128,
    /// Format version (currently always [`TRACE_VERSION`]).
    pub version: u32,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Counter totals from the footer.
    pub counters: BTreeMap<String, u64>,
}

impl TraceFile {
    /// Parse and validate a complete trace file.
    pub fn parse(bytes: &[u8]) -> Result<TraceFile, TraceError> {
        parse_trace_bytes(bytes)
    }

    /// Read and parse `path`.
    pub fn load(path: &Path) -> Result<TraceFile, TraceError> {
        let bytes = std::fs::read(path)?;
        parse_trace_bytes(&bytes)
    }

    /// Reconstruct spans by pairing enter/exit records. Spans whose
    /// exit was lost (killed worker) come back with `end_ts_ns: None`.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut open: BTreeMap<u64, usize> = BTreeMap::new();
        let mut out: Vec<SpanRecord> = Vec::new();
        for event in &self.events {
            match event.kind {
                EventKind::SpanEnter => {
                    let Some(id) = event.span else { continue };
                    open.insert(id, out.len());
                    out.push(SpanRecord {
                        name: event.name.clone(),
                        span: id,
                        parent: event.parent,
                        start_ts_ns: event.ts_ns,
                        end_ts_ns: None,
                        fields: event.fields.clone(),
                    });
                }
                EventKind::SpanExit => {
                    let Some(id) = event.span else { continue };
                    if let Some(&idx) = open.get(&id) {
                        out[idx].end_ts_ns = Some(event.ts_ns);
                        out[idx].fields.extend(event.fields.iter().cloned());
                        open.remove(&id);
                    }
                }
                EventKind::Event => {}
            }
        }
        out
    }
}

fn field_value(v: &Json) -> FieldValue {
    match v {
        Json::Null => FieldValue::Null,
        Json::Bool(b) => FieldValue::Bool(*b),
        Json::Int(i) => {
            if *i >= 0 {
                u64::try_from(*i)
                    .map(FieldValue::U64)
                    // provlint: allow(lossy-cast-in-serde) -- explicit fallback for foreign traces whose ints exceed the exact range
                    .unwrap_or(FieldValue::F64(*i as f64))
            } else {
                i64::try_from(*i)
                    .map(FieldValue::I64)
                    // provlint: allow(lossy-cast-in-serde) -- explicit fallback for foreign traces whose ints exceed the exact range
                    .unwrap_or(FieldValue::F64(*i as f64))
            }
        }
        Json::Float(x) => FieldValue::F64(*x),
        Json::Str(s) => FieldValue::Str(s.clone()),
        // Nested containers never appear in fields; render for safety.
        Json::Arr(_) | Json::Obj(_) => FieldValue::Str(format!("{v:?}")),
    }
}

fn corrupt(detail: impl Into<String>) -> TraceError {
    TraceError::Corrupt {
        detail: detail.into(),
    }
}

/// Parse and validate trace `bytes` (see [`TraceFile::parse`]).
pub fn parse_trace_bytes(bytes: &[u8]) -> Result<TraceFile, TraceError> {
    if bytes.is_empty() {
        return Err(TraceError::Truncated { at: 0 });
    }
    let text = std::str::from_utf8(bytes).map_err(|e| corrupt(format!("invalid utf-8: {e}")))?;
    // A complete trace always ends with the footer line's newline; a
    // file cut anywhere — even exactly at the end of the footer text —
    // is missing it and is reported as truncated, not silently read.
    let Some(body) = text.strip_suffix('\n') else {
        return Err(TraceError::Truncated { at: bytes.len() });
    };
    let lines: Vec<&str> = body.split('\n').collect();

    // Header.
    let header = Parser::parse_line(lines[0]).map_err(|_| TraceError::BadMagic)?;
    if header.get("magic").and_then(Json::as_str) != Some(TRACE_MAGIC) {
        return Err(TraceError::BadMagic);
    }
    let version = header
        .get("version")
        .and_then(Json::as_int)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(TraceError::BadMagic)?;
    if version != TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion {
            found: version,
            supported: TRACE_VERSION,
        });
    }
    let label = header
        .get("label")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("header missing label"))?
        .to_string();
    let pid = header
        .get("pid")
        .and_then(Json::as_int)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| corrupt("header missing pid"))?;
    let epoch_unix_ns = header
        .get("epoch_unix_ns")
        .and_then(Json::as_int)
        .and_then(|v| u128::try_from(v).ok())
        .ok_or_else(|| corrupt("header missing epoch_unix_ns"))?;

    if lines.len() < 2 {
        // Header only, newline-terminated: the footer never landed.
        return Err(TraceError::Truncated { at: bytes.len() });
    }

    // Footer (last line).
    let footer_line = lines[lines.len() - 1];
    let footer = match Parser::parse_line(footer_line) {
        Ok(f) if f.get("magic").and_then(Json::as_str) == Some(TRACE_END_MAGIC) => f,
        // The last complete line is not a footer: the file was cut at a
        // line boundary (or mid-line, leaving an unparseable tail).
        _ => return Err(TraceError::Truncated { at: bytes.len() }),
    };
    let declared = footer
        .get("events")
        .and_then(Json::as_int)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| corrupt("footer missing event count"))?;
    let event_lines = &lines[1..lines.len() - 1];
    if event_lines.len() != declared {
        return Err(corrupt(format!(
            "footer declares {declared} event(s) but {} present",
            event_lines.len()
        )));
    }
    let mut counters = BTreeMap::new();
    match footer.get("counters") {
        Some(Json::Obj(pairs)) => {
            for (name, value) in pairs {
                let v = value
                    .as_int()
                    .and_then(|v| u64::try_from(v).ok())
                    .ok_or_else(|| corrupt(format!("counter {name} is not a u64")))?;
                counters.insert(name.clone(), v);
            }
        }
        _ => return Err(corrupt("footer missing counters")),
    }

    // Events.
    let mut events = Vec::with_capacity(event_lines.len());
    for (idx, line) in event_lines.iter().enumerate() {
        let v = Parser::parse_line(line)
            .map_err(|e| corrupt(format!("event line {}: {e}", idx + 1)))?;
        let seq = v
            .get("seq")
            .and_then(Json::as_int)
            .and_then(|s| u64::try_from(s).ok())
            .ok_or_else(|| corrupt(format!("event line {}: missing seq", idx + 1)))?;
        if seq != idx as u64 {
            return Err(corrupt(format!(
                "event line {}: seq {seq} out of order (expected {idx})",
                idx + 1
            )));
        }
        let ts_ns = v
            .get("ts_ns")
            .and_then(Json::as_int)
            .and_then(|t| u128::try_from(t).ok())
            .ok_or_else(|| corrupt(format!("event line {}: missing ts_ns", idx + 1)))?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .and_then(EventKind::parse)
            .ok_or_else(|| corrupt(format!("event line {}: bad kind", idx + 1)))?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt(format!("event line {}: missing name", idx + 1)))?
            .to_string();
        let opt_id = |key: &str| -> Result<Option<u64>, TraceError> {
            // The writer always emits `span` and `parent` (null when
            // absent); a missing key means the line was tampered with.
            match v.get(key) {
                None => Err(corrupt(format!("event line {}: missing {key}", idx + 1))),
                Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .map(Some)
                    .ok_or_else(|| corrupt(format!("event line {}: bad {key}", idx + 1))),
            }
        };
        let span = opt_id("span")?;
        let parent = opt_id("parent")?;
        let fields = match v.get("fields") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, fv)| (k.clone(), field_value(fv)))
                .collect(),
            _ => {
                return Err(corrupt(format!(
                    "event line {}: missing fields object",
                    idx + 1
                )))
            }
        };
        events.push(TraceEvent {
            seq,
            ts_ns,
            kind,
            name,
            span,
            parent,
            fields,
        });
    }

    Ok(TraceFile {
        label,
        pid,
        epoch_unix_ns,
        version,
        events,
        counters,
    })
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

/// One event placed on the merged cross-worker timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedEvent {
    /// Worker label the event came from.
    pub worker: String,
    /// Recording process id.
    pub pid: u32,
    /// Absolute wall-clock timestamp (ns since the unix epoch):
    /// the worker's anchor plus the event's monotonic offset.
    pub unix_ts_ns: u128,
    /// The event itself.
    pub event: TraceEvent,
}

/// Per-worker trace files folded into one globally-ordered timeline.
///
/// Ordering is total and deterministic — `(unix_ts_ns, worker label,
/// pid, seq)` — so two merges over the same files agree byte-for-byte
/// regardless of directory enumeration or arrival order (proptested in
/// `tests/merge_order.rs`).
#[derive(Debug, Clone)]
pub struct TraceMerge {
    /// The parsed inputs, sorted by `(label, pid)`.
    pub workers: Vec<TraceFile>,
    /// All events, globally ordered.
    pub timeline: Vec<MergedEvent>,
}

impl TraceMerge {
    /// Merge already-parsed trace files. Input order is irrelevant.
    pub fn from_files(mut files: Vec<TraceFile>) -> TraceMerge {
        files.sort_by(|a, b| (&a.label, a.pid).cmp(&(&b.label, b.pid)));
        let mut timeline: Vec<MergedEvent> = files
            .iter()
            .flat_map(|f| {
                f.events.iter().map(|event| MergedEvent {
                    worker: f.label.clone(),
                    pid: f.pid,
                    unix_ts_ns: f.epoch_unix_ns + event.ts_ns,
                    event: event.clone(),
                })
            })
            .collect();
        timeline.sort_by(|a, b| {
            (a.unix_ts_ns, &a.worker, a.pid, a.event.seq).cmp(&(
                b.unix_ts_ns,
                &b.worker,
                b.pid,
                b.event.seq,
            ))
        });
        TraceMerge {
            workers: files,
            timeline,
        }
    }

    /// Load and merge every `trace.*.jsonl` file in `dir`. Any single
    /// unreadable or corrupt file fails the whole merge with its typed
    /// error — a partial merge would silently misrepresent the run.
    pub fn from_dir(dir: &Path) -> Result<TraceMerge, TraceError> {
        let mut files = Vec::new();
        let entries = std::fs::read_dir(dir)?;
        let mut names: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("trace.") && n.ends_with(".jsonl"))
            })
            .collect();
        names.sort();
        for path in names {
            files.push(TraceFile::load(&path)?);
        }
        Ok(TraceMerge::from_files(files))
    }

    /// Counter totals summed across all workers.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for f in &self.workers {
            for (name, v) in &f.counters {
                *totals.entry(name.clone()).or_insert(0) += v;
            }
        }
        totals
    }

    /// Event counts by name across the merged timeline.
    pub fn event_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for e in &self.timeline {
            *counts
                .entry(format!("{}:{}", e.event.kind.as_str(), e.event.name))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Wall-clock extent of the merged timeline, ns since the unix
    /// epoch: `(first, last)`. `None` when there are no events.
    pub fn extent_unix_ns(&self) -> Option<(u128, u128)> {
        let first = self.timeline.first()?.unix_ts_ns;
        let last = self.timeline.last()?.unix_ts_ns;
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let span = t.span_enter("cell", None, || panic!("fields evaluated while disabled"));
        assert!(span.is_none());
        t.span_exit("cell", span);
        t.event("memo.hit", None, || {
            panic!("fields evaluated while disabled")
        });
        t.counter_add("memo.hits", 1);
        assert!(t.to_bytes().is_none());
        assert!(t.file_name().is_none());
    }

    #[test]
    fn roundtrip_spans_events_counters() {
        let t = Tracer::new("worker-0");
        let row = t.span_enter("row", None, || vec![("syscall", Field::from("open"))]);
        let cell = t.span_enter("cell", row, || {
            vec![
                ("syscall", Field::from("open")),
                ("tool", Field::from("SPADEv2")),
            ]
        });
        t.event("memo.hit", cell, || vec![("disk", Field::from(false))]);
        t.counter_add("memo.hits", 3);
        t.counter_add("memo.hits", 4);
        t.span_exit_with("cell", cell, || vec![("steps", Field::from(42u64))]);
        t.span_exit("row", row);

        let bytes = t.to_bytes().unwrap();
        let parsed = TraceFile::parse(&bytes).unwrap();
        assert_eq!(parsed.label, "worker-0");
        assert_eq!(parsed.version, TRACE_VERSION);
        assert_eq!(parsed.events.len(), 5);
        assert_eq!(parsed.counters.get("memo.hits"), Some(&7));

        let spans = parsed.spans();
        assert_eq!(spans.len(), 2);
        let cell_span = spans.iter().find(|s| s.name == "cell").unwrap();
        assert!(cell_span.duration_ns().is_some());
        assert_eq!(cell_span.field("tool").unwrap().as_str(), Some("SPADEv2"));
        assert_eq!(cell_span.field("steps").unwrap().as_u64(), Some(42));
        assert_eq!(
            cell_span.parent,
            spans.iter().find(|s| s.name == "row").map(|s| s.span)
        );

        // The memo.hit event is parented under the cell span.
        let hit = parsed.events.iter().find(|e| e.name == "memo.hit").unwrap();
        assert_eq!(hit.parent, Some(cell_span.span));
        assert_eq!(hit.field("disk"), Some(&FieldValue::Bool(false)));
    }

    #[test]
    fn cumulative_flushes_replace_with_longer_trace() {
        let t = Tracer::new("w");
        t.event("a", None, Vec::new);
        let first = t.to_bytes().unwrap();
        t.event("b", None, Vec::new);
        let second = t.to_bytes().unwrap();
        assert!(second.len() > first.len());
        assert_eq!(TraceFile::parse(&first).unwrap().events.len(), 1);
        assert_eq!(TraceFile::parse(&second).unwrap().events.len(), 2);
    }

    #[test]
    fn exact_u64_fields_survive() {
        let t = Tracer::new("w");
        let big = u64::MAX - 7;
        t.event("e", None, || vec![("v", Field::from(big))]);
        t.counter_add("c", big);
        let parsed = TraceFile::parse(&t.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed.events[0].field("v").unwrap().as_u64(), Some(big));
        assert_eq!(parsed.counters.get("c"), Some(&big));
    }

    #[test]
    fn string_escaping_roundtrips() {
        let t = Tracer::new("w\"ei\\rd\nlabel");
        t.event("e", None, || {
            vec![("path", Field::from("a\tb\"c\\d\u{1}e"))]
        });
        let parsed = TraceFile::parse(&t.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed.label, "w\"ei\\rd\nlabel");
        assert_eq!(
            parsed.events[0].field("path").unwrap().as_str(),
            Some("a\tb\"c\\d\u{1}e")
        );
    }

    #[test]
    fn write_to_dir_lands_durable_and_parseable() {
        let dir = std::env::temp_dir().join(format!(
            "provtrace-test-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let t = Tracer::new("drive");
        t.event("worker.spawn", None, || vec![("worker", Field::from(0u64))]);
        t.write_to_dir(&dir).unwrap();
        let path = dir.join(t.file_name().unwrap());
        let parsed = TraceFile::load(&path).unwrap();
        assert_eq!(parsed.events.len(), 1);
        // Disabled write is an Ok no-op, leaves nothing behind.
        Tracer::disabled().write_to_dir(&dir).unwrap();
        let count = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(count, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_orders_across_workers() {
        let mk = |label: &str, anchor: u128, ts: &[u128]| {
            let t = Tracer::new(label);
            for _ in ts {
                t.event("e", None, Vec::new);
            }
            let mut f = TraceFile::parse(&t.to_bytes().unwrap()).unwrap();
            f.epoch_unix_ns = anchor;
            for (e, &want) in f.events.iter_mut().zip(ts) {
                e.ts_ns = want;
            }
            f
        };
        let a = mk("a", 1_000, &[10, 500]);
        let b = mk("b", 1_200, &[5, 100]);
        let merged = TraceMerge::from_files(vec![b.clone(), a.clone()]);
        let order: Vec<(u128, &str)> = merged
            .timeline
            .iter()
            .map(|e| (e.unix_ts_ns, e.worker.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![(1_010, "a"), (1_205, "b"), (1_300, "b"), (1_500, "a")]
        );
        // Arrival order never matters.
        let again = TraceMerge::from_files(vec![a, b]);
        assert_eq!(merged.timeline, again.timeline);
        assert_eq!(merged.extent_unix_ns(), Some((1_010, 1_500)));
    }

    #[test]
    fn merge_sums_counters() {
        let mk = |label: &str, n: u64| {
            let t = Tracer::new(label);
            t.counter_add("memo.hits", n);
            TraceFile::parse(&t.to_bytes().unwrap()).unwrap()
        };
        let merged = TraceMerge::from_files(vec![mk("a", 3), mk("b", 4)]);
        assert_eq!(merged.counter_totals().get("memo.hits"), Some(&7));
    }
}
