//! `provmark-trace` — render aggregate tables from merged trace
//! directories recorded with `--trace DIR` (see `provmark-shard`) or
//! `BenchmarkOptions::trace`.
//!
//! ```text
//! provmark-trace summary DIR          # workers, event counts, counters, wall span
//! provmark-trace timeline DIR [--limit N]
//! provmark-trace slowest-cells DIR [--top N]
//! provmark-trace memo-report DIR
//! ```
//!
//! Exit codes: `0` success, `1` unreadable/corrupt trace, `2` usage.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use provtrace::TraceMerge;

const USAGE: &str = "\
provmark-trace — inspect merged provtrace run telemetry

USAGE:
    provmark-trace summary DIR
        Workers, per-kind event counts, counter totals and the wall-clock
        extent of the merged timeline.

    provmark-trace timeline DIR [--limit N]
        The globally-ordered event timeline (default limit 200 lines;
        --limit 0 prints everything).

    provmark-trace slowest-cells DIR [--top N]
        Closed `cell` spans ranked by duration (default top 20).

    provmark-trace memo-report DIR
        Solve-memo counters (hits, disk hits, misses, evictions) per
        worker and overall, with hit rates.

DIR is a trace directory holding one `trace.<label>.<pid>.jsonl` file
per worker, e.g. the directory passed to `provmark-shard ... --trace`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Error::Usage(msg)) => {
            eprintln!("{msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(Error::Trace(msg)) => {
            eprintln!("provmark-trace: {msg}");
            ExitCode::from(1)
        }
    }
}

enum Error {
    Usage(String),
    Trace(String),
}

fn run(args: &[String]) -> Result<(), Error> {
    let Some(command) = args.first() else {
        return Err(Error::Usage("missing subcommand".to_string()));
    };
    let Some(dir) = args.get(1) else {
        return Err(Error::Usage(format!("{command}: missing trace DIR")));
    };
    let dir = PathBuf::from(dir);
    let rest = &args[2..];
    match command.as_str() {
        "summary" => {
            expect_no_flags(command, rest)?;
            summary(&dir)
        }
        "timeline" => {
            let limit = flag_value(rest, "--limit")?.unwrap_or(200);
            timeline(&dir, limit)
        }
        "slowest-cells" => {
            let top = flag_value(rest, "--top")?.unwrap_or(20);
            slowest_cells(&dir, top)
        }
        "memo-report" => {
            expect_no_flags(command, rest)?;
            memo_report(&dir)
        }
        other => Err(Error::Usage(format!("unknown subcommand `{other}`"))),
    }
}

fn expect_no_flags(command: &str, rest: &[String]) -> Result<(), Error> {
    if let Some(extra) = rest.first() {
        return Err(Error::Usage(format!(
            "{command}: unexpected argument `{extra}`"
        )));
    }
    Ok(())
}

fn flag_value(rest: &[String], flag: &str) -> Result<Option<usize>, Error> {
    let mut it = rest.iter();
    let mut found = None;
    while let Some(arg) = it.next() {
        if arg == flag {
            let value = it
                .next()
                .ok_or_else(|| Error::Usage(format!("{flag} needs a value")))?;
            found = Some(value.parse::<usize>().map_err(|_| {
                Error::Usage(format!("{flag} needs an unsigned integer, got `{value}`"))
            })?);
        } else {
            return Err(Error::Usage(format!("unexpected argument `{arg}`")));
        }
    }
    Ok(found)
}

fn load(dir: &Path) -> Result<TraceMerge, Error> {
    let merge =
        TraceMerge::from_dir(dir).map_err(|e| Error::Trace(format!("{}: {e}", dir.display())))?;
    if merge.workers.is_empty() {
        return Err(Error::Trace(format!(
            "{}: no trace.*.jsonl files found",
            dir.display()
        )));
    }
    Ok(merge)
}

fn fmt_ms(ns: u128) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn summary(dir: &Path) -> Result<(), Error> {
    let merge = load(dir)?;
    println!("trace directory: {}", dir.display());
    println!(
        "workers: {}   events: {}",
        merge.workers.len(),
        merge.timeline.len()
    );
    if let Some((first, last)) = merge.extent_unix_ns() {
        println!("wall span: {}", fmt_ms(last.saturating_sub(first)));
    }
    println!("\nper-worker:");
    for w in &merge.workers {
        let open = w.spans().iter().filter(|s| s.end_ts_ns.is_none()).count();
        println!(
            "  {:<14} pid {:<8} {:>6} event(s){}",
            w.label,
            w.pid,
            w.events.len(),
            if open > 0 {
                format!("  ({open} span(s) never closed — worker died mid-span)")
            } else {
                String::new()
            }
        );
    }
    println!("\nevents by kind:name:");
    for (name, count) in merge.event_counts() {
        println!("  {name:<36} {count:>7}");
    }
    let totals = merge.counter_totals();
    if !totals.is_empty() {
        println!("\ncounter totals:");
        for (name, value) in &totals {
            println!("  {name:<36} {value:>7}");
        }
    }
    Ok(())
}

fn timeline(dir: &Path, limit: usize) -> Result<(), Error> {
    let merge = load(dir)?;
    let origin = merge.extent_unix_ns().map_or(0, |(first, _)| first);
    for (shown, e) in merge.timeline.iter().enumerate() {
        if limit != 0 && shown >= limit {
            println!(
                "... {} more event(s); use --limit 0 for everything",
                merge.timeline.len() - shown
            );
            break;
        }
        let fields: Vec<String> = e
            .event
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "{:>12}  {:<14} {:<10} {:<18} {}",
            fmt_ms(e.unix_ts_ns.saturating_sub(origin)),
            e.worker,
            e.event.kind.as_str(),
            e.event.name,
            fields.join(" ")
        );
    }
    Ok(())
}

fn slowest_cells(dir: &Path, top: usize) -> Result<(), Error> {
    let merge = load(dir)?;
    let mut cells: Vec<(String, String, u128)> = Vec::new();
    for w in &merge.workers {
        for span in w.spans() {
            if span.name != "cell" {
                continue;
            }
            let Some(duration) = span.duration_ns() else {
                continue;
            };
            let syscall = span
                .field("syscall")
                .map_or_else(|| "?".to_string(), |v| v.to_string());
            let tool = span
                .field("tool")
                .map_or_else(|| "?".to_string(), |v| v.to_string());
            cells.push((format!("{syscall} × {tool}"), w.label.clone(), duration));
        }
    }
    if cells.is_empty() {
        println!("no closed `cell` spans in {}", dir.display());
        return Ok(());
    }
    cells.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    println!(
        "{} closed cell span(s); slowest {}:",
        cells.len(),
        top.min(cells.len())
    );
    println!("{:>12}  {:<14} cell", "duration", "worker");
    for (cell, worker, duration) in cells.iter().take(top) {
        println!("{:>12}  {:<14} {}", fmt_ms(*duration), worker, cell);
    }
    Ok(())
}

fn memo_report(dir: &Path) -> Result<(), Error> {
    let merge = load(dir)?;
    const KEYS: [&str; 4] = [
        "memo.hits",
        "memo.disk_hits",
        "memo.misses",
        "memo.evictions",
    ];
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>10} {:>9}",
        "worker", "hits", "disk_hits", "misses", "evictions", "hit_rate"
    );
    let mut any = false;
    let row = |label: &str, counters: &BTreeMap<String, u64>| {
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        let hits = get(KEYS[0]);
        let misses = get(KEYS[2]);
        let rate = if hits + misses > 0 {
            format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
        } else {
            "-".to_string()
        };
        println!(
            "{:<14} {:>9} {:>10} {:>9} {:>10} {:>9}",
            label,
            hits,
            get(KEYS[1]),
            misses,
            get(KEYS[3]),
            rate
        );
    };
    for w in &merge.workers {
        if KEYS.iter().any(|k| w.counters.contains_key(*k)) {
            any = true;
            row(&w.label, &w.counters);
        }
    }
    if !any {
        println!("(no memo counters recorded in {})", dir.display());
        return Ok(());
    }
    row("TOTAL", &merge.counter_totals());
    Ok(())
}
