//! Property test: [`TraceMerge`] is deterministic and ordering-stable
//! regardless of the order worker files arrive in. A drive directory is
//! listed by the filesystem in arbitrary order, and workers flush at
//! arbitrary times, so the merged timeline must be a pure function of
//! the file *contents*.

use std::collections::BTreeMap;

use proptest::prelude::*;
use provtrace::{EventKind, TraceEvent, TraceFile, TraceMerge, TRACE_VERSION};

/// Build a synthetic, valid worker trace from generated raw material.
fn worker_file(label_idx: usize, pid: u32, anchor: u64, event_ts: &[u64]) -> TraceFile {
    let events = event_ts
        .iter()
        .enumerate()
        .map(|(seq, &ts)| TraceEvent {
            seq: seq as u64,
            ts_ns: u128::from(ts),
            kind: match seq % 3 {
                0 => EventKind::SpanEnter,
                1 => EventKind::SpanExit,
                _ => EventKind::Event,
            },
            name: format!("e{}", seq % 4),
            span: (seq % 3 != 2).then_some(seq as u64 / 2 + 1),
            parent: None,
            fields: vec![],
        })
        .collect();
    let mut counters = BTreeMap::new();
    counters.insert("memo.hits".to_string(), anchor % 97);
    TraceFile {
        label: format!("worker-{label_idx}"),
        pid,
        epoch_unix_ns: u128::from(anchor),
        version: TRACE_VERSION,
        events,
        counters,
    }
}

/// Deterministic permutation of `files` driven by generated sort keys.
fn permute(files: &[TraceFile], keys: &[u64]) -> Vec<TraceFile> {
    let mut indexed: Vec<(u64, usize)> = files
        .iter()
        .enumerate()
        .map(|(i, _)| (keys.get(i).copied().unwrap_or(0), i))
        .collect();
    indexed.sort();
    indexed.into_iter().map(|(_, i)| files[i].clone()).collect()
}

proptest! {
    #[test]
    fn merge_is_independent_of_arrival_order(
        workers in proptest::collection::vec(
            (0u32..10_000, 0u64..1_000, proptest::collection::vec(0u64..2_000, 0..20)),
            1..6,
        ),
        keys_a in proptest::collection::vec(0u64..u64::MAX, 0..6),
        keys_b in proptest::collection::vec(0u64..u64::MAX, 0..6),
    ) {
        let files: Vec<TraceFile> = workers
            .iter()
            .enumerate()
            .map(|(i, (pid, anchor, ts))| worker_file(i, *pid, *anchor, ts))
            .collect();
        let merged_a = TraceMerge::from_files(permute(&files, &keys_a));
        let merged_b = TraceMerge::from_files(permute(&files, &keys_b));

        // Same timeline, same worker ordering, same counter totals —
        // byte-for-byte, whatever order the files showed up in.
        prop_assert_eq!(&merged_a.timeline, &merged_b.timeline);
        prop_assert_eq!(&merged_a.workers, &merged_b.workers);
        prop_assert_eq!(merged_a.counter_totals(), merged_b.counter_totals());

        // The timeline is totally ordered by the documented key.
        for pair in merged_a.timeline.windows(2) {
            let key = |e: &provtrace::MergedEvent| {
                (e.unix_ts_ns, e.worker.clone(), e.pid, e.event.seq)
            };
            prop_assert!(key(&pair[0]) <= key(&pair[1]));
        }

        // No event lost or invented.
        let total: usize = files.iter().map(|f| f.events.len()).sum();
        prop_assert_eq!(merged_a.timeline.len(), total);
    }

    #[test]
    fn serialized_roundtrip_then_merge_is_stable(
        anchors in proptest::collection::vec(0u64..1_000, 1..4),
        keys in proptest::collection::vec(0u64..u64::MAX, 0..4),
    ) {
        // Files that went through actual bytes (serialize via a Tracer,
        // reparse) merge identically to their in-memory originals.
        let files: Vec<TraceFile> = anchors
            .iter()
            .enumerate()
            .map(|(i, &anchor)| {
                let t = provtrace::Tracer::new(&format!("w{i}"));
                let span = t.span_enter("cell", None, || vec![("idx", provtrace::Field::from(i))]);
                t.event("claim", span, Vec::new);
                t.span_exit("cell", span);
                t.counter_add("memo.hits", anchor);
                let mut parsed = TraceFile::parse(&t.to_bytes().unwrap()).unwrap();
                // Pin the wall anchor so ordering is reproducible.
                parsed.epoch_unix_ns = u128::from(anchor);
                parsed
            })
            .collect();
        let merged = TraceMerge::from_files(files.clone());
        let merged_permuted = TraceMerge::from_files(permute(&files, &keys));
        prop_assert_eq!(&merged.timeline, &merged_permuted.timeline);
        prop_assert_eq!(merged.timeline.len(), files.iter().map(|f| f.events.len()).sum::<usize>());
    }
}
