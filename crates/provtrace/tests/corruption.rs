//! Trace-file corruption fuzzing, mirroring the solve-cache `persist`
//! fuzz suite: zero-length files, header-only files, every strict
//! prefix, every single flipped byte and trailing garbage must all come
//! back as typed [`TraceError`]s — never a panic, never a silently
//! misread trace.

use provtrace::{
    Field, TraceError, TraceFile, Tracer, TRACE_END_MAGIC, TRACE_MAGIC, TRACE_VERSION,
};

/// A representative trace: spans with parents and exit fields, events,
/// counters, escaped strings.
fn sample_trace() -> Vec<u8> {
    let t = Tracer::new("worker-0");
    let row = t.span_enter("row", None, || vec![("syscall", Field::from("open"))]);
    let cell = t.span_enter("cell", row, || {
        vec![
            ("syscall", Field::from("open")),
            ("tool", Field::from("SPADEv2")),
        ]
    });
    t.event("memo.hit", cell, || vec![("disk", Field::from(true))]);
    t.event("claim", None, || {
        vec![
            ("cell", Field::from("open.t1")),
            ("epoch", Field::from(2u64)),
        ]
    });
    t.counter_add("memo.hits", 41);
    t.counter_add("memo.misses", 7);
    t.span_exit_with("cell", cell, || {
        vec![
            ("steps", Field::from(123_456u64)),
            ("optimal", Field::from(true)),
        ]
    });
    t.span_exit("row", row);
    t.to_bytes().unwrap()
}

#[test]
fn sample_trace_parses_clean() {
    let bytes = sample_trace();
    let parsed = TraceFile::parse(&bytes).unwrap();
    assert_eq!(parsed.events.len(), 6);
    assert_eq!(parsed.counters.get("memo.hits"), Some(&41));
}

#[test]
fn zero_length_is_truncated() {
    assert_eq!(TraceFile::parse(b""), Err(TraceError::Truncated { at: 0 }));
}

#[test]
fn header_only_is_truncated() {
    let bytes = sample_trace();
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let header_only = &bytes[..header_end];
    assert!(matches!(
        TraceFile::parse(header_only),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn rejects_every_strict_prefix() {
    let bytes = sample_trace();
    for end in 0..bytes.len() {
        let prefix = &bytes[..end];
        let err = TraceFile::parse(prefix).expect_err(&format!(
            "prefix of {end}/{} bytes must not parse",
            bytes.len()
        ));
        // Typed, never a panic; prefixes are overwhelmingly Truncated,
        // but a cut inside the header line is BadMagic and a cut that
        // leaves a parseable-but-short structure is Corrupt. All typed.
        match err {
            TraceError::Truncated { .. } | TraceError::BadMagic | TraceError::Corrupt { .. } => {}
            other => panic!("prefix {end}: unexpected error class {other:?}"),
        }
    }
}

#[test]
fn rejects_every_single_byte_flip() {
    let bytes = sample_trace();
    let pristine = TraceFile::parse(&bytes).unwrap();
    for i in 0..bytes.len() {
        let mut tampered = bytes.clone();
        tampered[i] ^= 0x40;
        // A flip must never panic. It either fails typed, or — when it
        // lands in a free-text value (a label, a field string, a digit
        // inside a counter) — parses to a *different* trace than the
        // pristine one. It must never silently parse back identical.
        match TraceFile::parse(&tampered) {
            Err(
                TraceError::BadMagic
                | TraceError::UnsupportedVersion { .. }
                | TraceError::Truncated { .. }
                | TraceError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("flip at {i}: unexpected error class {other:?}"),
            Ok(parsed) => assert_ne!(
                parsed, pristine,
                "flip at byte {i} parsed back identical to the pristine trace"
            ),
        }
    }
}

#[test]
fn rejects_trailing_garbage() {
    let bytes = sample_trace();
    let stray_footer = format!("{{\"magic\":\"{TRACE_END_MAGIC}\"}}\n");
    for garbage in [&b"x"[..], b"{}\n", b"\n", stray_footer.as_bytes()] {
        let mut extended = bytes.clone();
        extended.extend_from_slice(garbage);
        let err = TraceFile::parse(&extended).expect_err("trailing bytes must not parse");
        assert!(
            matches!(
                err,
                TraceError::Truncated { .. } | TraceError::Corrupt { .. }
            ),
            "unexpected error class for trailing {garbage:?}: {err:?}"
        );
    }
}

#[test]
fn rejects_garbage_and_foreign_version() {
    assert_eq!(
        TraceFile::parse(b"not json at all\n"),
        Err(TraceError::BadMagic)
    );
    assert_eq!(
        TraceFile::parse(b"{\"magic\":\"SOMETHING\",\"version\":1}\n"),
        Err(TraceError::BadMagic)
    );
    let future = format!(
        "{{\"magic\":\"{TRACE_MAGIC}\",\"version\":{},\"label\":\"w\",\"pid\":1,\"epoch_unix_ns\":0}}\n",
        TRACE_VERSION + 1
    );
    assert_eq!(
        TraceFile::parse(future.as_bytes()),
        Err(TraceError::UnsupportedVersion {
            found: TRACE_VERSION + 1,
            supported: TRACE_VERSION,
        })
    );
}

#[test]
fn rejects_event_count_mismatch_and_seq_gaps() {
    let bytes = sample_trace();
    let text = std::str::from_utf8(&bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // Drop one event line but keep the footer: the declared count no
    // longer matches.
    let mut dropped: Vec<&str> = lines.clone();
    dropped.remove(2);
    let dropped = dropped.join("\n") + "\n";
    assert!(matches!(
        TraceFile::parse(dropped.as_bytes()),
        Err(TraceError::Corrupt { .. })
    ));

    // Duplicate an event line (count fixed up by dropping another):
    // the seq chain breaks.
    let mut swapped: Vec<&str> = lines.clone();
    swapped.swap(1, 2);
    let swapped = swapped.join("\n") + "\n";
    assert!(matches!(
        TraceFile::parse(swapped.as_bytes()),
        Err(TraceError::Corrupt { .. })
    ));
}

#[test]
fn errors_render_actionable_messages() {
    let msg = TraceError::Truncated { at: 17 }.to_string();
    assert!(msg.contains("17"), "{msg}");
    let msg = TraceError::UnsupportedVersion {
        found: 9,
        supported: TRACE_VERSION,
    }
    .to_string();
    assert!(
        msg.contains('9') && msg.contains(&TRACE_VERSION.to_string()),
        "{msg}"
    );
}
