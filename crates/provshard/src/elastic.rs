//! Crash-tolerant elastic execution of the Table 2 matrix.
//!
//! A shared run directory is the whole coordination substrate — no
//! sockets, no shared memory, no coordinator state that a crash can
//! corrupt. The plan step writes one claimable **cell task file per
//! matrix cell** (finer than the round-robin row shards of the classic
//! path, so a long-tail row no longer serializes behind one worker);
//! workers claim tasks by atomic `rename` into `claimed/`, refresh a
//! heartbeat file while solving, and publish results with
//! write-temp-then-`rename` so a torn artifact can never be observed at
//! the final path. A supervisor loop watches heartbeats, re-dispatches
//! cells whose worker died or stalled under a **bumped claim epoch**
//! with bounded retries and backoff, and records cells that exhaust
//! their budget as typed [`CellFailure`]s instead of poisoning the run.
//!
//! ## The claim protocol
//!
//! ```text
//! tasks/creat.t0.e1.json      --rename-->  claimed/creat.t0.e1.json
//!                                          heartbeats/creat.t0.e1.json  (refreshed)
//!                                          done/creat.t0.e1.json        (atomic publish)
//! ```
//!
//! * **Claim** is `rename(tasks/F, claimed/F)` — atomic on POSIX, so a
//!   claim race between any number of workers has exactly one winner;
//!   the losers see `NotFound` and move on.
//! * **Heartbeat** files carry pid + worker index; only their *mtime*
//!   matters to the supervisor. A heartbeat older than `stale_after`
//!   declares the claim dead.
//! * **Epoch** starts at 1 and is part of every file name. When the
//!   supervisor re-dispatches a cell it writes a fresh task file at
//!   epoch *e+1*; a zombie worker finishing the old claim publishes to
//!   the epoch-*e* done path, which the supervisor ignores (latest
//!   epoch wins, nothing is ever clobbered).
//! * **Publish** is write-to-temp-then-`rename` ([`atomic_write`]), so
//!   the done directory only ever holds complete documents — unless a
//!   fault-injection deliberately tears one, which the harvest then
//!   treats as a failed attempt.
//!
//! Because each cell reuses the exact single-process measurement path
//! ([`run_matrix_cell_traced`]), the merged report is
//! **byte-identical** to the single-process run whenever every cell
//! eventually completes — even if workers were lost and cells
//! re-dispatched mid-flight.
//!
//! ## The shared solve cache
//!
//! With [`ElasticOptions::solve_cache`] set to a directory, workers
//! warm their solve memos from `DIR/solve.cache` once and publish the
//! entries they solved to private `DIR/delta.worker-*` files after
//! every cell (cumulative, durably written — one writer per file, so
//! no contention and nothing to lock). After the run the driver merges
//! the base cache with every delta and atomically republishes
//! `DIR/solve.cache`, so the next drive — or a bare `single` run, or a
//! worker on another host sharing the directory — starts warm. The
//! cache only short-circuits pure dense searches keyed by content
//! hashes, so reports are byte-identical warm or cold; corrupt cache
//! or delta files are skipped with a note, never fatal.
//!
//! ## Fault injection
//!
//! [`InjectSpec`] drives deterministic failures for tests and CI:
//! `kill-worker=N` (worker N aborts right after its first claim),
//! `torn-partial[=N]` (worker N tears its first publish and crashes),
//! `stall=N` (worker N stops heartbeating, oversleeps its claim and
//! publishes under a superseded epoch), `kill-cell=SYSCALL/TOOL` (any
//! worker claiming that cell crashes — drives retry exhaustion).

use std::collections::{BTreeMap, BTreeSet};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use provmark_core::pipeline::{
    merge_matrix_cells, run_matrix_cell_traced, CellFailure, CellOutcome,
};
use provmark_core::report::render_matrix_report;
use provmark_core::{PipelineError, WorkerFailure};
use serde_json::{Map, Value};

use crate::{
    artifact, atomic_write, cell_from_json, cell_to_json, check_header, extract_config,
    insert_config, RunConfig,
};

/// Version of the cell-task JSON layout.
pub const CELL_TASK_VERSION: u32 = 1;

/// Version of the cell-result JSON layout. Version 2 added the
/// `memo` counter block (solve-memo hits/misses per cell).
pub const CELL_RESULT_VERSION: u32 = 2;

/// File name of the shared solve cache inside a `--solve-cache`
/// directory. Workers warm from it; the supervisor republishes it
/// after merging the per-worker delta files (`delta.*`).
pub const SOLVE_CACHE_FILE: &str = "solve.cache";

/// Solve-memo traffic counters, as published per cell and as
/// aggregated over a whole elastic run.
///
/// `hits` counts every memoized answer served (of which `disk_hits`
/// came from entries loaded out of a persistent cache file rather
/// than solved in this process); `misses` counts dense searches
/// actually run; `evictions` counts entries dropped by the memo's
/// capacity cap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Memoized answers served.
    pub hits: u64,
    /// Subset of `hits` answered by entries loaded from a cache file.
    pub disk_hits: u64,
    /// Dense searches that had to run.
    pub misses: u64,
    /// Entries dropped by the capacity cap.
    pub evictions: u64,
}

impl MemoCounters {
    /// Snapshot a memo's counters.
    pub fn of(memo: &aspsolver::SolveMemo) -> MemoCounters {
        MemoCounters {
            hits: memo.hits(),
            disk_hits: memo.disk_hits(),
            misses: memo.misses(),
            evictions: memo.evictions(),
        }
    }

    /// Counter-wise difference since an earlier snapshot of the same
    /// (monotone) memo.
    pub fn since(&self, earlier: &MemoCounters) -> MemoCounters {
        MemoCounters {
            hits: self.hits - earlier.hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Counter-wise accumulate.
    pub fn merge(&mut self, other: &MemoCounters) {
        self.hits += other.hits;
        self.disk_hits += other.disk_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    fn to_json(self) -> Value {
        let mut doc = Map::new();
        doc.insert("hits".into(), crate::exact_num(self.hits));
        doc.insert("disk_hits".into(), crate::exact_num(self.disk_hits));
        doc.insert("misses".into(), crate::exact_num(self.misses));
        doc.insert("evictions".into(), crate::exact_num(self.evictions));
        Value::Object(doc)
    }

    fn from_json(v: &Value) -> Result<MemoCounters, PipelineError> {
        if v.as_object().is_none() {
            return Err(artifact("cell result is missing its `memo` counters"));
        }
        Ok(MemoCounters {
            hits: crate::get_usize(v, "hits")? as u64,
            disk_hits: crate::get_usize(v, "disk_hits")? as u64,
            misses: crate::get_usize(v, "misses")? as u64,
            evictions: crate::get_usize(v, "evictions")? as u64,
        })
    }
}

/// One claimable unit of work: a single `(syscall, tool)` matrix cell
/// at a claim epoch, carrying the complete run configuration so the
/// task file alone fully determines the work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTask {
    /// Table 2 row (benchmark syscall name).
    pub syscall: String,
    /// Tool column index (0 = SPADE, 1 = OPUS, 2 = CamFlow).
    pub tool: usize,
    /// Claim epoch, starting at 1; bumped on every re-dispatch.
    pub epoch: u32,
    /// The run configuration shared by every cell of the plan.
    pub config: RunConfig,
}

impl CellTask {
    /// Stable cell identity (`"{syscall}.t{tool}"`), shared by every
    /// epoch of the cell.
    pub fn id(&self) -> String {
        format!("{}.t{}", self.syscall, self.tool)
    }

    /// File name of this task/claim/heartbeat/result at this epoch.
    pub fn file_name(&self) -> String {
        format!("{}.e{}.json", self.id(), self.epoch)
    }

    /// Render as the versioned cell-task JSON document.
    pub fn to_json_string(&self) -> String {
        let mut doc = Map::new();
        doc.insert("format".into(), Value::String("provmark-cell-task".into()));
        doc.insert("version".into(), crate::exact_num(CELL_TASK_VERSION.into()));
        doc.insert(
            "snapshot_format_version".into(),
            crate::exact_num(provgraph::snapshot::SNAPSHOT_VERSION.into()),
        );
        doc.insert("syscall".into(), Value::String(self.syscall.clone()));
        doc.insert("tool".into(), crate::exact_num(self.tool as u64));
        doc.insert("epoch".into(), crate::exact_num(self.epoch.into()));
        insert_config(&mut doc, &self.config);
        // provlint: allow(panic-in-lib) -- serialization only fails on non-finite floats; every number here passed exact_num
        serde_json::to_string_pretty(&Value::Object(doc)).expect("cell task serializes")
    }

    /// Parse and validate a cell-task document.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ShardArtifact`] / [`PipelineError::Snapshot`] on
    /// the same header conditions as the shard artifacts.
    pub fn from_json_str(text: &str) -> Result<CellTask, PipelineError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| artifact(format!("cell task is not valid JSON: {e}")))?;
        check_header(&doc, "provmark-cell-task", CELL_TASK_VERSION)?;
        Ok(CellTask {
            syscall: doc["syscall"]
                .as_str()
                .ok_or_else(|| artifact("cell task is missing `syscall`"))?
                .to_owned(),
            tool: crate::get_usize(&doc, "tool")?,
            epoch: u32::try_from(crate::get_usize(&doc, "epoch")?)
                .map_err(|_| artifact("epoch outside u32 range"))?,
            config: extract_config(&doc)?,
        })
    }
}

/// The published outcome of one cell claim: the task identity plus the
/// measured [`CellOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Table 2 row the cell belongs to.
    pub syscall: String,
    /// Tool column index.
    pub tool: usize,
    /// Claim epoch this result was measured under.
    pub epoch: u32,
    /// The run configuration the cell was measured under — the
    /// supervisor refuses results measured under a different
    /// configuration than planned.
    pub config: RunConfig,
    /// The measured outcome.
    pub cell: CellOutcome,
    /// Solve-memo traffic while measuring this cell (zeros when the
    /// memo is disabled). The supervisor aggregates these into the
    /// drive's end-of-run summary.
    pub memo: MemoCounters,
}

impl CellResult {
    /// Render as the versioned cell-result JSON document.
    pub fn to_json_string(&self) -> String {
        let mut doc = Map::new();
        doc.insert(
            "format".into(),
            Value::String("provmark-cell-result".into()),
        );
        doc.insert(
            "version".into(),
            crate::exact_num(CELL_RESULT_VERSION.into()),
        );
        doc.insert(
            "snapshot_format_version".into(),
            crate::exact_num(provgraph::snapshot::SNAPSHOT_VERSION.into()),
        );
        doc.insert("syscall".into(), Value::String(self.syscall.clone()));
        doc.insert("tool".into(), crate::exact_num(self.tool as u64));
        doc.insert("epoch".into(), crate::exact_num(self.epoch.into()));
        insert_config(&mut doc, &self.config);
        doc.insert("cell".into(), cell_to_json(&self.cell));
        doc.insert("memo".into(), self.memo.to_json());
        // provlint: allow(panic-in-lib) -- serialization only fails on non-finite floats; every number here passed exact_num
        serde_json::to_string_pretty(&Value::Object(doc)).expect("cell result serializes")
    }

    /// Parse and validate a cell-result document.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ShardArtifact`] / [`PipelineError::Snapshot`] on
    /// the same header conditions as the shard artifacts.
    pub fn from_json_str(text: &str) -> Result<CellResult, PipelineError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| artifact(format!("cell result is not valid JSON: {e}")))?;
        check_header(&doc, "provmark-cell-result", CELL_RESULT_VERSION)?;
        Ok(CellResult {
            syscall: doc["syscall"]
                .as_str()
                .ok_or_else(|| artifact("cell result is missing `syscall`"))?
                .to_owned(),
            tool: crate::get_usize(&doc, "tool")?,
            epoch: u32::try_from(crate::get_usize(&doc, "epoch")?)
                .map_err(|_| artifact("epoch outside u32 range"))?,
            config: extract_config(&doc)?,
            cell: cell_from_json(&doc["cell"])?,
            memo: MemoCounters::from_json(&doc["memo"])?,
        })
    }
}

/// Plan the full matrix as one [`CellTask`] per `(row, tool)` cell at
/// epoch 1, in canonical order.
pub fn plan_cells(config: &RunConfig) -> Vec<CellTask> {
    let tools = provmark_core::tool::ToolKind::all().len();
    provmark_core::suite::table2()
        .iter()
        .flat_map(|exp| {
            (0..tools).map(move |tool| CellTask {
                syscall: exp.syscall.to_owned(),
                tool,
                epoch: 1,
                config: config.clone(),
            })
        })
        .collect()
}

/// The shared run directory: four subdirectories implementing the
/// claim protocol (`tasks/`, `claimed/`, `heartbeats/`, `done/`) plus
/// a `stop` sentinel file.
///
/// Cloneable and freely shareable — it holds only the root path; all
/// state lives on the filesystem.
#[derive(Debug, Clone)]
pub struct TaskStore {
    root: PathBuf,
}

impl TaskStore {
    fn tasks(&self) -> PathBuf {
        self.root.join("tasks")
    }
    fn claimed(&self) -> PathBuf {
        self.root.join("claimed")
    }
    fn heartbeats(&self) -> PathBuf {
        self.root.join("heartbeats")
    }
    fn done(&self) -> PathBuf {
        self.root.join("done")
    }
    fn stop_file(&self) -> PathBuf {
        self.root.join("stop")
    }

    /// Initialize a fresh run directory and seed it with `tasks`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ShardArtifact`] when the directory already
    /// holds a run (stale tasks or results would silently mix into the
    /// new run); [`PipelineError::Store`] on I/O failure.
    pub fn init(root: &Path, tasks: &[CellTask]) -> Result<TaskStore, PipelineError> {
        let store = TaskStore {
            root: root.to_owned(),
        };
        for dir in [
            store.tasks(),
            store.claimed(),
            store.heartbeats(),
            store.done(),
        ] {
            std::fs::create_dir_all(&dir)?;
        }
        for dir in [store.tasks(), store.done()] {
            if std::fs::read_dir(&dir)?.next().is_some() {
                return Err(artifact(format!(
                    "work dir `{}` already contains a run ({} is not empty); \
                     pass a fresh --work-dir",
                    root.display(),
                    dir.display()
                )));
            }
        }
        std::fs::remove_file(store.stop_file()).ok();
        for task in tasks {
            atomic_write(
                &store.tasks().join(task.file_name()),
                &task.to_json_string(),
            )?;
        }
        Ok(store)
    }

    /// Open an existing run directory (the worker side of
    /// [`TaskStore::init`]).
    ///
    /// # Errors
    ///
    /// [`PipelineError::ShardArtifact`] when the directory does not
    /// hold an elastic run.
    pub fn open(root: &Path) -> Result<TaskStore, PipelineError> {
        let store = TaskStore {
            root: root.to_owned(),
        };
        if !store.tasks().is_dir() || !store.done().is_dir() {
            return Err(artifact(format!(
                "`{}` is not an elastic run directory (no tasks/done subdirectories)",
                root.display()
            )));
        }
        Ok(store)
    }

    /// Try to claim the task file `file_name` by atomically renaming it
    /// into `claimed/`. Exactly one concurrent claimant wins; everyone
    /// else observes `Ok(None)`.
    ///
    /// On success the claimed file's mtime is refreshed to claim time
    /// (it otherwise keeps its plan-time stamp, which would look
    /// instantly stale) and the first heartbeat is written.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure,
    /// [`PipelineError::ShardArtifact`] on a malformed task file.
    pub fn try_claim(
        &self,
        file_name: &str,
        worker: usize,
    ) -> Result<Option<CellTask>, PipelineError> {
        let claimed = self.claimed().join(file_name);
        match std::fs::rename(self.tasks().join(file_name), &claimed) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let text = std::fs::read_to_string(&claimed)?;
        // Re-write the claimed file with its own content: `rename`
        // preserves the plan-time mtime, and the supervisor uses the
        // claimed file's mtime as the heartbeat fallback.
        // provlint: allow(raw-write) -- mtime-touch of a file this worker exclusively owns; a torn body is re-read from `text`, never from disk
        std::fs::write(&claimed, &text)?;
        let task = CellTask::from_json_str(&text)?;
        self.write_heartbeat(&task, worker)?;
        Ok(Some(task))
    }

    /// Claim the first available task (by sorted file name, for
    /// deterministic claim order under no contention).
    ///
    /// # Errors
    ///
    /// As [`TaskStore::try_claim`].
    pub fn claim_next(&self, worker: usize) -> Result<Option<CellTask>, PipelineError> {
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(self.tasks())? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if !name.starts_with('.') {
                names.push(name);
            }
        }
        names.sort();
        for name in names {
            if let Some(task) = self.try_claim(&name, worker)? {
                return Ok(Some(task));
            }
        }
        Ok(None)
    }

    /// Refresh the heartbeat for a claim. The supervisor only reads the
    /// file's mtime; the body (pid + worker index) is for operators.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure.
    pub fn write_heartbeat(&self, task: &CellTask, worker: usize) -> Result<(), PipelineError> {
        let mut doc = Map::new();
        doc.insert("format".into(), Value::String("provmark-heartbeat".into()));
        doc.insert("pid".into(), crate::exact_num(std::process::id().into()));
        doc.insert("worker".into(), crate::exact_num(worker as u64));
        doc.insert("epoch".into(), crate::exact_num(task.epoch.into()));
        // provlint: allow(panic-in-lib) -- serialization only fails on non-finite floats; every number here passed exact_num
        let text = serde_json::to_string_pretty(&Value::Object(doc)).expect("heartbeat serializes");
        atomic_write(&self.heartbeats().join(task.file_name()), &text)?;
        Ok(())
    }

    /// Age of the freshest liveness signal for a claim: the heartbeat
    /// file's mtime, falling back to the claimed file's mtime (bumped
    /// at claim time). `None` when neither file exists.
    pub fn heartbeat_age(&self, id: &str, epoch: u32) -> Option<Duration> {
        let name = format!("{id}.e{epoch}.json");
        [self.heartbeats().join(&name), self.claimed().join(&name)]
            .iter()
            .filter_map(|p| std::fs::metadata(p).and_then(|m| m.modified()).ok())
            .filter_map(|mtime| mtime.elapsed().ok())
            .min()
    }

    /// Atomically publish a cell result to `done/` — the only way an
    /// uninjected worker writes a result, so readers never observe a
    /// torn document at the final path.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure.
    pub fn publish(&self, result: &CellResult) -> Result<(), PipelineError> {
        let name = format!("{}.t{}.e{}.json", result.syscall, result.tool, result.epoch);
        atomic_write(&self.done().join(name), &result.to_json_string())?;
        Ok(())
    }

    /// **Fault injection only**: write a torn (truncated, non-atomic)
    /// result directly to the final done path, simulating a worker
    /// killed mid-`write` on a filesystem without atomic rename.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure.
    pub fn publish_torn(&self, result: &CellResult) -> Result<(), PipelineError> {
        let name = format!("{}.t{}.e{}.json", result.syscall, result.tool, result.epoch);
        let full = result.to_json_string();
        // provlint: allow(raw-write) -- deliberately torn: this fault injector simulates a worker killed mid-write
        std::fs::write(self.done().join(name), &full[..full.len() / 2])?;
        Ok(())
    }

    /// List `(cell id, epoch)` of every published result, skipping
    /// temp/hidden files.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure.
    pub fn done_entries(&self) -> Result<Vec<(String, u32)>, PipelineError> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(self.done())? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if name.starts_with('.') {
                continue;
            }
            if let Some((id, epoch)) = parse_epoch_name(&name) {
                entries.push((id, epoch));
            }
        }
        entries.sort();
        Ok(entries)
    }

    /// Load one published result.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] when unreadable,
    /// [`PipelineError::ShardArtifact`] when torn or malformed.
    pub fn load_result(&self, id: &str, epoch: u32) -> Result<CellResult, PipelineError> {
        let path = self.done().join(format!("{id}.e{epoch}.json"));
        let text = std::fs::read_to_string(&path)?;
        CellResult::from_json_str(&text).map_err(|e| match e {
            PipelineError::ShardArtifact { detail } => {
                artifact(format!("result `{}`: {detail}", path.display()))
            }
            other => other,
        })
    }

    /// `true` while the task file for this claim is still unclaimed.
    pub fn task_pending(&self, task: &CellTask) -> bool {
        self.tasks().join(task.file_name()).exists()
    }

    /// `true` once a result for this claim epoch has been published.
    pub fn done_exists(&self, id: &str, epoch: u32) -> bool {
        self.done().join(format!("{id}.e{epoch}.json")).exists()
    }

    /// Re-dispatch a cell: write its task file (already carrying the
    /// bumped epoch) back into `tasks/` for any worker to claim.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure.
    pub fn requeue(&self, task: &CellTask) -> Result<(), PipelineError> {
        atomic_write(&self.tasks().join(task.file_name()), &task.to_json_string())?;
        Ok(())
    }

    /// Raise the stop sentinel: workers exit cleanly at their next poll.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Store`] on I/O failure.
    pub fn request_stop(&self) -> Result<(), PipelineError> {
        atomic_write(&self.stop_file(), "stop\n")?;
        Ok(())
    }

    /// `true` once the supervisor has requested shutdown.
    pub fn stop_requested(&self) -> bool {
        self.stop_file().exists()
    }
}

/// Parse `"{id}.e{epoch}.json"` into `(id, epoch)`.
fn parse_epoch_name(name: &str) -> Option<(String, u32)> {
    let stem = name.strip_suffix(".json")?;
    let (id, epoch) = stem.rsplit_once(".e")?;
    Some((id.to_owned(), epoch.parse().ok()?))
}

/// Deterministic fault-injection directives for tests and CI
/// (`--inject kill-worker=1,torn-partial,stall=2,kill-cell=creat/0`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectSpec {
    /// Worker index that aborts right after its first claim (dead
    /// worker with a fresh heartbeat — the supervisor must detect the
    /// claim going stale).
    pub kill_worker: Option<usize>,
    /// Worker index that writes a torn result to the final done path on
    /// its first publish and then crashes.
    pub torn_partial: Option<usize>,
    /// Worker index that stops heartbeating on its first claim,
    /// oversleeps past staleness and publishes under the superseded
    /// epoch (exercises stale-epoch rejection).
    pub stall_worker: Option<usize>,
    /// `(syscall, tool)` cell whose every claimant crashes — drives
    /// retry exhaustion.
    pub kill_cell: Option<(String, usize)>,
}

impl InjectSpec {
    /// Parse a comma-separated directive list.
    ///
    /// # Errors
    ///
    /// A usage message naming the bad directive.
    pub fn parse(spec: &str) -> Result<InjectSpec, String> {
        let mut inject = InjectSpec::default();
        for directive in spec.split(',').filter(|d| !d.is_empty()) {
            let (key, value) = match directive.split_once('=') {
                Some((k, v)) => (k, Some(v)),
                None => (directive, None),
            };
            let index = |value: Option<&str>, default: Option<usize>| -> Result<usize, String> {
                match value {
                    Some(v) => v
                        .parse()
                        .map_err(|_| format!("`{directive}`: worker index must be an integer")),
                    None => {
                        default.ok_or_else(|| format!("`{directive}` needs =N (a worker index)"))
                    }
                }
            };
            match key {
                "kill-worker" => inject.kill_worker = Some(index(value, None)?),
                "torn-partial" => inject.torn_partial = Some(index(value, Some(0))?),
                "stall" => inject.stall_worker = Some(index(value, None)?),
                "kill-cell" => {
                    let value =
                        value.ok_or_else(|| "`kill-cell` needs =SYSCALL/TOOL".to_owned())?;
                    let (syscall, tool) = value
                        .split_once('/')
                        .ok_or_else(|| format!("`{directive}`: expected SYSCALL/TOOL"))?;
                    let tool = tool
                        .parse()
                        .map_err(|_| format!("`{directive}`: tool must be an integer"))?;
                    inject.kill_cell = Some((syscall.to_owned(), tool));
                }
                other => {
                    return Err(format!(
                        "unknown --inject directive `{other}` (expected kill-worker=N, \
                         torn-partial[=N], stall=N or kill-cell=SYSCALL/TOOL)"
                    ))
                }
            }
        }
        Ok(inject)
    }

    /// Render back into the `--inject` argument form (for forwarding to
    /// worker processes).
    pub fn to_arg(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_worker {
            parts.push(format!("kill-worker={n}"));
        }
        if let Some(n) = self.torn_partial {
            parts.push(format!("torn-partial={n}"));
        }
        if let Some(n) = self.stall_worker {
            parts.push(format!("stall={n}"));
        }
        if let Some((syscall, tool)) = &self.kill_cell {
            parts.push(format!("kill-cell={syscall}/{tool}"));
        }
        parts.join(",")
    }

    /// `true` when no directive is set.
    pub fn is_empty(&self) -> bool {
        *self == InjectSpec::default()
    }
}

/// Tuning knobs of the elastic driver.
#[derive(Debug, Clone)]
pub struct ElasticOptions {
    /// Worker executable override (`None` = the current executable).
    /// Tests point this at the `provmark-shard` binary.
    pub worker_exe: Option<PathBuf>,
    /// A claim whose heartbeat is older than this is declared dead and
    /// re-dispatched.
    pub stale_after: Duration,
    /// How often workers refresh their heartbeat while solving (clamped
    /// to at most `stale_after / 4`).
    pub heartbeat_interval: Duration,
    /// Worker / supervisor poll interval.
    pub poll_interval: Duration,
    /// How many times a cell is re-dispatched after its first attempt
    /// before it is recorded as a typed per-cell failure.
    pub max_retries: u32,
    /// Delay before a failed cell's re-dispatch becomes claimable.
    pub backoff: Duration,
    /// How many replacement workers the supervisor may spawn when the
    /// whole pool has died with cells still open.
    pub max_respawns: usize,
    /// Deterministic fault injection (tests / CI only).
    pub inject: InjectSpec,
    /// Shared solve-cache **directory**. When set, every worker warms
    /// its memo once from `DIR/solve.cache` and publishes its freshly
    /// solved entries to a private `DIR/delta.worker-*` file after each
    /// cell (no write contention — one writer per file); after the run
    /// the driver merges base + deltas and republishes
    /// `DIR/solve.cache`, so the next drive (or any other process)
    /// starts warm. Reports are byte-identical with or without it.
    pub solve_cache: Option<PathBuf>,
    /// Trace **directory** for structured run telemetry (`provtrace`).
    /// When set, the supervisor writes `trace.drive.<pid>.jsonl` (plan /
    /// execute / merge phases, worker spawns and exits, stale
    /// detections, re-dispatches, harvest accept/reject events) and
    /// every worker writes `trace.worker-<index>.<pid>.jsonl` (claims,
    /// heartbeats, per-cell solve spans, publishes), flushed durably
    /// after every publish so a killed worker still leaves a readable
    /// partial trace. Fold them with `provtrace::TraceMerge` or the
    /// `provmark-trace` binary. Tracing is observably outcome-neutral:
    /// reports are byte-identical with it on or off, and when unset
    /// every instrumentation site is a no-op branch.
    pub trace: Option<PathBuf>,
}

impl Default for ElasticOptions {
    fn default() -> Self {
        ElasticOptions {
            worker_exe: None,
            stale_after: Duration::from_secs(5),
            heartbeat_interval: Duration::from_millis(250),
            poll_interval: Duration::from_millis(25),
            max_retries: 2,
            backoff: Duration::from_millis(100),
            max_respawns: 8,
            inject: InjectSpec::default(),
            solve_cache: None,
            trace: None,
        }
    }
}

impl ElasticOptions {
    /// Timings tuned for quick / smoke runs, where a matrix completes in
    /// well under a second and the production 5 s staleness threshold
    /// dominates wall-clock whenever a worker dies: any killed cell sits
    /// unclaimable for seconds on a run that otherwise takes
    /// milliseconds (the `sharded_faulted_quick` bench row measured
    /// 0.83× — *slower* than single-process — under the defaults).
    /// A 300 ms staleness threshold plus a 50 ms retry backoff keeps
    /// recovery proportionate; the heartbeat interval is left at its
    /// default and clamped to `stale_after / 4` = 75 ms by the driver.
    /// False stale declarations are benign (the claim protocol tolerates
    /// double execution; first `finish` rename wins), so the shorter
    /// threshold trades only redundant work, not correctness.
    pub fn quick() -> Self {
        ElasticOptions {
            stale_after: Duration::from_millis(300),
            backoff: Duration::from_millis(50),
            ..ElasticOptions::default()
        }
    }
}

/// Everything a worker needs besides the store.
#[derive(Debug, Clone)]
pub struct WorkerContext {
    /// This worker's index (respawned workers get fresh indices past
    /// the initial pool size, so index-keyed injections fire at most
    /// once).
    pub index: usize,
    /// Heartbeat refresh interval while solving.
    pub heartbeat_interval: Duration,
    /// Sleep between idle polls of the task directory.
    pub poll_interval: Duration,
    /// How long a stall-injected worker oversleeps its first claim.
    pub stall: Duration,
    /// Fault injection directives.
    pub inject: InjectSpec,
    /// Shared solve-cache directory (see
    /// [`ElasticOptions::solve_cache`]); the worker reads
    /// `solve.cache` and writes only its own `delta.worker-*` file.
    pub solve_cache: Option<PathBuf>,
    /// Trace directory (see [`ElasticOptions::trace`]); the worker
    /// writes only its own `trace.worker-<index>.<pid>.jsonl` file.
    pub trace: Option<PathBuf>,
}

/// How a worker loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerEnd {
    /// The stop sentinel was raised; the worker drained cleanly.
    Stopped,
    /// A fault injection asked this worker to crash; the process
    /// wrapper aborts, the in-process pool records the reason.
    Crashed(&'static str),
}

/// The claim-solve-publish loop run by every worker.
///
/// Claims tasks until the stop sentinel appears, refreshing a heartbeat
/// in a background thread while each cell solves, and publishing every
/// result atomically. Fault injections deterministically divert the
/// loop (see [`InjectSpec`]).
///
/// # Errors
///
/// [`PipelineError`] on I/O failures or malformed task files — the
/// worker dies, its claim goes stale, and the supervisor re-dispatches.
pub fn worker_loop(store: &TaskStore, ctx: &WorkerContext) -> Result<WorkerEnd, PipelineError> {
    let tracer = make_tracer(&ctx.trace, &format!("worker-{}", ctx.index));
    tracer.event("worker.start", None, || {
        vec![
            ("worker", provtrace::Field::from(ctx.index)),
            ("pid", provtrace::Field::from(std::process::id())),
        ]
    });
    // One memo for the worker's whole lifetime: entries earned on one
    // cell answer replays on every later cell (content-hash keys are
    // session- and process-independent). Warmed lazily from the shared
    // cache file on the first memo-enabled claim; a missing file is a
    // cold start, a corrupt one is reported and ignored. The tracer
    // rides on the memo so solver-level spans and memo counters land in
    // this worker's trace file.
    let memo = aspsolver::SolveMemo::new().with_tracer(tracer.clone());
    let mut warmed = false;
    let delta_path = ctx.solve_cache.as_ref().map(|dir| {
        dir.join(format!(
            "delta.worker-{}.{}.cache",
            ctx.index,
            std::process::id()
        ))
    });
    let mut first_claim = true;
    // A crash injection exits mid-claim: record the worker's last words
    // and flush so the partial trace (claim span never closed) is on
    // disk before the process wrapper aborts.
    let crash = |reason: &'static str, parent: Option<provtrace::SpanId>| {
        tracer.event("worker.exit", parent, || {
            vec![("status", provtrace::Field::from(reason))]
        });
        flush_tracer(&tracer, &ctx.trace);
        Ok(WorkerEnd::Crashed(reason))
    };
    loop {
        if store.stop_requested() {
            tracer.event("worker.exit", None, || {
                vec![("status", provtrace::Field::from("stopped"))]
            });
            flush_tracer(&tracer, &ctx.trace);
            return Ok(WorkerEnd::Stopped);
        }
        let Some(task) = store.claim_next(ctx.index)? else {
            std::thread::sleep(ctx.poll_interval);
            continue;
        };
        let claim_span = tracer.span_enter("claim", None, || {
            vec![
                ("cell", provtrace::Field::from(task.id())),
                ("epoch", provtrace::Field::from(task.epoch)),
            ]
        });
        let injected_first = first_claim;
        first_claim = false;
        if injected_first && ctx.inject.kill_worker == Some(ctx.index) {
            // Die with a fresh claim + heartbeat on the books: the
            // supervisor must notice the heartbeat going stale.
            return crash("injected kill-worker", claim_span);
        }
        if let Some((syscall, tool)) = &ctx.inject.kill_cell {
            if task.syscall == *syscall && task.tool == *tool {
                return crash("injected kill-cell", claim_span);
            }
        }
        let stalling = injected_first && ctx.inject.stall_worker == Some(ctx.index);
        if stalling {
            // No heartbeat refresh, oversleep past staleness, then fall
            // through and publish under the (by now superseded) epoch.
            std::thread::sleep(ctx.stall);
        }
        let memo_ref = if task.config.opts.use_solve_memo {
            if !warmed {
                warmed = true;
                if let Some(dir) = &ctx.solve_cache {
                    let path = dir.join(SOLVE_CACHE_FILE);
                    if let Err(e) = aspsolver::load_cache_file(&memo, &path) {
                        eprintln!(
                            "worker {}: solve cache {} ignored (cold start): {e}",
                            ctx.index,
                            path.display()
                        );
                    }
                }
            }
            Some(&memo)
        } else {
            None
        };
        let counters_before = MemoCounters::of(&memo);
        let heartbeat_done = AtomicBool::new(false);
        let cell = std::thread::scope(|scope| {
            if !stalling {
                scope.spawn(|| {
                    while !heartbeat_done.load(Ordering::Relaxed) {
                        store.write_heartbeat(&task, ctx.index).ok();
                        tracer.event("heartbeat", claim_span, || {
                            vec![
                                ("cell", provtrace::Field::from(task.id())),
                                ("epoch", provtrace::Field::from(task.epoch)),
                            ]
                        });
                        std::thread::sleep(ctx.heartbeat_interval);
                    }
                });
            }
            let cell = run_matrix_cell_traced(
                &task.syscall,
                task.tool,
                &task.config.opts,
                task.config.opus_db_iterations,
                memo_ref,
                &tracer,
                claim_span,
            );
            heartbeat_done.store(true, Ordering::Relaxed);
            cell
        })?;
        let result = CellResult {
            syscall: task.syscall.clone(),
            tool: task.tool,
            epoch: task.epoch,
            config: task.config.clone(),
            cell,
            memo: MemoCounters::of(&memo).since(&counters_before),
        };
        if injected_first && ctx.inject.torn_partial == Some(ctx.index) {
            store.publish_torn(&result)?;
            return crash("injected torn-partial", claim_span);
        }
        store.publish(&result)?;
        tracer.event("publish", claim_span, || {
            vec![
                ("cell", provtrace::Field::from(task.id())),
                ("epoch", provtrace::Field::from(task.epoch)),
            ]
        });
        // Persist everything this worker has solved so far (cumulative,
        // so a crash loses at most the last cell's entries). Private
        // per-worker file — no contention with other writers; best
        // effort — the cache is an accelerator, not a correctness
        // dependency.
        if let (Some(path), true) = (&delta_path, task.config.opts.use_solve_memo) {
            let bytes = aspsolver::delta_bytes(&memo);
            tracer.event("cache.delta", claim_span, || {
                vec![("bytes", provtrace::Field::from(bytes.len()))]
            });
            if let Err(e) = aspsolver::write_bytes_durable(path, &bytes) {
                eprintln!(
                    "worker {}: could not persist solve-cache delta {}: {e}",
                    ctx.index,
                    path.display()
                );
            }
        }
        tracer.span_exit("claim", claim_span);
        // Cumulative durable flush after every publish: a worker killed
        // later still leaves a readable trace of everything up to here.
        flush_tracer(&tracer, &ctx.trace);
    }
}

/// Create a tracer labelled `label` when a trace directory is
/// configured, the inert disabled tracer otherwise.
fn make_tracer(dir: &Option<PathBuf>, label: &str) -> provtrace::Tracer {
    match dir {
        Some(_) => provtrace::Tracer::new(label),
        None => provtrace::Tracer::disabled(),
    }
}

/// Durably flush `tracer` into `dir`. Best effort: telemetry must
/// never fail a run, so errors are reported and swallowed.
fn flush_tracer(tracer: &provtrace::Tracer, dir: &Option<PathBuf>) {
    if let Some(dir) = dir {
        if let Err(e) = tracer.write_to_dir(dir) {
            eprintln!("trace flush to {} failed (ignored): {e}", dir.display());
        }
    }
}

/// How one worker of the pool exited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerExit {
    /// The worker's index.
    pub worker: usize,
    /// `true` when the worker drained cleanly.
    pub success: bool,
    /// Rendered exit status (process exit code / signal, or the
    /// crash/abandonment reason for thread workers).
    pub status: String,
    /// Captured stderr path, for process workers.
    pub stderr: Option<PathBuf>,
}

impl WorkerExit {
    fn failure(&self) -> WorkerFailure {
        WorkerFailure {
            worker: self.worker,
            status: self.status.clone(),
            stderr: self.stderr.clone(),
        }
    }
}

/// A pool of workers the supervisor can spawn into and reap from —
/// process-backed for the real driver, thread-backed for in-process
/// benchmarking and fast tests.
trait Pool {
    fn spawn(&mut self, index: usize) -> Result<(), PipelineError>;
    /// Collect every worker that has exited since the last call.
    fn reap(&mut self) -> Vec<WorkerExit>;
    fn live(&self) -> usize;
    /// Wait for the remaining workers after the stop sentinel is up.
    fn shutdown(&mut self) -> Vec<WorkerExit>;
}

/// Worker pool backed by `provmark-shard work` subprocesses, each with
/// its stderr captured to `worker-{index}.stderr` in the run directory.
struct ProcessPool {
    exe: PathBuf,
    root: PathBuf,
    heartbeat: Duration,
    poll: Duration,
    stall: Duration,
    inject: InjectSpec,
    solve_cache: Option<PathBuf>,
    trace: Option<PathBuf>,
    children: Vec<(usize, std::process::Child, PathBuf)>,
}

impl ProcessPool {
    fn exit(worker: usize, status: std::process::ExitStatus, stderr: PathBuf) -> WorkerExit {
        WorkerExit {
            worker,
            success: status.success(),
            status: status.to_string(),
            stderr: Some(stderr),
        }
    }
}

impl Pool for ProcessPool {
    fn spawn(&mut self, index: usize) -> Result<(), PipelineError> {
        let stderr_path = self.root.join(format!("worker-{index}.stderr"));
        // provlint: allow(raw-write) -- live stderr stream handed to the child process, not a parsed artifact
        let stderr = std::fs::File::create(&stderr_path)?;
        let mut command = std::process::Command::new(&self.exe);
        command
            .arg("work")
            .arg(&self.root)
            .arg("--worker-index")
            .arg(index.to_string())
            .arg("--heartbeat-ms")
            .arg(self.heartbeat.as_millis().to_string())
            .arg("--poll-ms")
            .arg(self.poll.as_millis().to_string())
            .arg("--stall-ms")
            .arg(self.stall.as_millis().to_string())
            .stdout(std::process::Stdio::null())
            .stderr(stderr);
        if !self.inject.is_empty() {
            command.arg("--inject").arg(self.inject.to_arg());
        }
        if let Some(dir) = &self.solve_cache {
            command.arg("--solve-cache").arg(dir);
        }
        if let Some(dir) = &self.trace {
            command.arg("--trace").arg(dir);
        }
        let child = command.spawn()?;
        self.children.push((index, child, stderr_path));
        Ok(())
    }

    fn reap(&mut self) -> Vec<WorkerExit> {
        let mut exits = Vec::new();
        self.children
            .retain_mut(|(index, child, stderr)| match child.try_wait() {
                Ok(Some(status)) => {
                    exits.push(Self::exit(*index, status, stderr.clone()));
                    false
                }
                Ok(None) => true,
                Err(e) => {
                    exits.push(WorkerExit {
                        worker: *index,
                        success: false,
                        status: format!("wait failed: {e}"),
                        stderr: Some(stderr.clone()),
                    });
                    false
                }
            });
        exits
    }

    fn live(&self) -> usize {
        self.children.len()
    }

    fn shutdown(&mut self) -> Vec<WorkerExit> {
        // The stop sentinel is up; give workers (which may be finishing
        // a superseded claim) a generous grace period, then kill.
        // provlint: allow(direct-clock) -- liveness/backoff scheduling only; report bytes are time-free
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut exits = Vec::new();
        while !self.children.is_empty() {
            exits.extend(self.reap());
            if self.children.is_empty() {
                break;
            }
            // provlint: allow(direct-clock) -- liveness/backoff scheduling only; report bytes are time-free
            if Instant::now() >= deadline {
                for (index, child, stderr) in self.children.drain(..) {
                    let mut child = child;
                    child.kill().ok();
                    let status = child.wait();
                    exits.push(WorkerExit {
                        worker: index,
                        success: false,
                        status: status.map_or_else(
                            |e| format!("kill failed: {e}"),
                            |s| format!("killed at shutdown ({s})"),
                        ),
                        stderr: Some(stderr),
                    });
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        exits
    }
}

/// Worker pool backed by in-process threads (no subprocess spawning) —
/// used by benches and fast tests. Threads cannot be killed, so
/// injected crashes end the thread and are reported as failures.
struct ThreadPool {
    store: TaskStore,
    heartbeat: Duration,
    poll: Duration,
    stall: Duration,
    inject: InjectSpec,
    solve_cache: Option<PathBuf>,
    trace: Option<PathBuf>,
    threads: Vec<(
        usize,
        std::thread::JoinHandle<Result<WorkerEnd, PipelineError>>,
    )>,
}

impl ThreadPool {
    fn exit(
        worker: usize,
        handle: std::thread::JoinHandle<Result<WorkerEnd, PipelineError>>,
    ) -> WorkerExit {
        let (success, status) = match handle.join() {
            Ok(Ok(WorkerEnd::Stopped)) => (true, "stopped".to_owned()),
            Ok(Ok(WorkerEnd::Crashed(reason))) => (false, reason.to_owned()),
            Ok(Err(e)) => (false, e.to_string()),
            Err(_) => (false, "panicked".to_owned()),
        };
        WorkerExit {
            worker,
            success,
            status,
            stderr: None,
        }
    }
}

impl Pool for ThreadPool {
    fn spawn(&mut self, index: usize) -> Result<(), PipelineError> {
        let store = self.store.clone();
        let ctx = WorkerContext {
            index,
            heartbeat_interval: self.heartbeat,
            poll_interval: self.poll,
            stall: self.stall,
            inject: self.inject.clone(),
            solve_cache: self.solve_cache.clone(),
            trace: self.trace.clone(),
        };
        let handle = std::thread::spawn(move || worker_loop(&store, &ctx));
        self.threads.push((index, handle));
        Ok(())
    }

    fn reap(&mut self) -> Vec<WorkerExit> {
        let mut exits = Vec::new();
        let mut remaining = Vec::new();
        for (index, handle) in self.threads.drain(..) {
            if handle.is_finished() {
                exits.push(Self::exit(index, handle));
            } else {
                remaining.push((index, handle));
            }
        }
        self.threads = remaining;
        exits
    }

    fn live(&self) -> usize {
        self.threads.len()
    }

    fn shutdown(&mut self) -> Vec<WorkerExit> {
        self.threads
            .drain(..)
            .map(|(index, handle)| Self::exit(index, handle))
            .collect()
    }
}

/// Result of an elastic drive: the rendered report plus everything the
/// run observed along the way.
#[derive(Debug)]
pub struct ElasticOutcome {
    /// The merged matrix report (byte-identical to the single-process
    /// report when `failures` is empty).
    pub report: String,
    /// Cells that exhausted their retry budget, in canonical order —
    /// rendered as `lost` in the report.
    pub failures: Vec<CellFailure>,
    /// Every worker exit the supervisor observed.
    pub worker_exits: Vec<WorkerExit>,
    /// Total workers spawned (initial pool + respawns).
    pub workers_spawned: usize,
    /// How many cell re-dispatches the supervisor issued.
    pub requeues: usize,
    /// Solve-memo traffic summed over every accepted cell result.
    pub memo: MemoCounters,
    /// Publishes the supervisor rejected because their claim epoch was
    /// superseded (a zombie worker finishing a re-dispatched cell).
    /// Each distinct `(cell, epoch)` done artifact is counted once —
    /// this is the cluster's wasted completed work, previously dropped
    /// silently.
    pub stale_publishes: usize,
    /// Solve-memo traffic carried by those rejected publishes — kept
    /// separate from [`memo`](Self::memo) so the accepted-cell totals
    /// stay meaningful while the zombie work remains visible.
    pub zombie_memo: MemoCounters,
    /// Outcome of the post-run solve-cache merge (`None` when no
    /// [`ElasticOptions::solve_cache`] directory was configured).
    pub cache_merge: Option<SolveCacheMerge>,
}

/// What the post-run solve-cache merge accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveCacheMerge {
    /// Entries in the republished `solve.cache`.
    pub entries: usize,
    /// Per-worker delta files folded in (and then removed).
    pub delta_files: usize,
    /// Files skipped as corrupt or unreadable — each a
    /// `"{path}: {error}"` note. Skips degrade coverage, never
    /// correctness.
    pub skipped: Vec<String>,
}

/// Merge `DIR/solve.cache` with every `DIR/delta.*` file and
/// atomically, durably republish `DIR/solve.cache`; merged delta files
/// are removed. Corrupt or unreadable inputs are recorded in
/// [`SolveCacheMerge::skipped`] and otherwise ignored — the merge
/// keeps whatever decodes.
///
/// # Errors
///
/// [`PipelineError::Store`] when the directory cannot be read or
/// created; [`PipelineError::ShardArtifact`] when the merged cache
/// cannot be written back (input corruption is never an error).
pub fn merge_solve_cache_dir(dir: &Path) -> Result<SolveCacheMerge, PipelineError> {
    std::fs::create_dir_all(dir)?;
    let memo = aspsolver::SolveMemo::new();
    let mut merge = SolveCacheMerge::default();
    let base = dir.join(SOLVE_CACHE_FILE);
    if let Err(e) = aspsolver::load_cache_file(&memo, &base) {
        merge.skipped.push(format!("{}: {e}", base.display()));
    }
    let mut deltas: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_file() && name.starts_with("delta.") {
            deltas.push(path);
        }
    }
    deltas.sort();
    let mut merged_deltas = Vec::new();
    for path in deltas {
        match aspsolver::load_cache_file(&memo, &path) {
            Ok(_) => {
                merge.delta_files += 1;
                merged_deltas.push(path);
            }
            Err(e) => merge.skipped.push(format!("{}: {e}", path.display())),
        }
    }
    merge.entries = memo.len();
    aspsolver::write_cache_file(&memo, &base)
        .map_err(|e| artifact(format!("cannot republish merged solve cache: {e}")))?;
    // Only after the merged cache is durably on disk do the folded-in
    // deltas become redundant; corrupt ones are kept for inspection.
    for path in merged_deltas {
        std::fs::remove_file(path).ok();
    }
    Ok(merge)
}

/// Per-cell supervisor state.
enum SlotState {
    Open,
    Done(CellOutcome),
    Failed(CellFailure),
}

struct Slot {
    task: CellTask,
    state: SlotState,
}

/// The supervisor loop: harvest published results, watch heartbeats,
/// re-dispatch dead claims under bumped epochs with bounded retries
/// and backoff, respawn the pool if it collapses, and merge.
fn supervise(
    store: &TaskStore,
    pool: &mut dyn Pool,
    worker_count: usize,
    tasks: Vec<CellTask>,
    config: &RunConfig,
    opts: &ElasticOptions,
    tracer: &provtrace::Tracer,
) -> Result<ElasticOutcome, PipelineError> {
    let mut slots: BTreeMap<String, Slot> = tasks
        .into_iter()
        .map(|task| {
            (
                task.id(),
                Slot {
                    task,
                    state: SlotState::Open,
                },
            )
        })
        .collect();
    let exec_span = tracer.span_enter("phase.execute", None, || {
        vec![
            ("cells", provtrace::Field::from(slots.len())),
            ("workers", provtrace::Field::from(worker_count)),
        ]
    });
    let mut pending: BTreeMap<String, Instant> = BTreeMap::new();
    let mut exits: Vec<WorkerExit> = Vec::new();
    let mut workers_spawned = 0;
    let mut respawns = 0;
    let mut requeues = 0;
    let mut memo_totals = MemoCounters::default();
    let mut stale_publishes = 0usize;
    let mut zombie_memo = MemoCounters::default();
    // Every `(cell, epoch)` done artifact already handled. `done_entries`
    // re-lists the whole directory each poll, so without this set an
    // already-accepted (or already-rejected) publish would be re-counted
    // on every later iteration.
    let mut harvested: BTreeSet<(String, u32)> = BTreeSet::new();
    for index in 0..worker_count {
        pool.spawn(index)?;
        workers_spawned += 1;
        tracer.event("worker.spawn", exec_span, || {
            vec![("worker", provtrace::Field::from(index))]
        });
    }

    // Bump a cell's epoch for re-dispatch, or fail it for good once the
    // retry budget is gone.
    let fail_attempt = |slots: &mut BTreeMap<String, Slot>,
                        pending: &mut BTreeMap<String, Instant>,
                        requeues: &mut usize,
                        id: &str,
                        detail: String,
                        backoff: Duration,
                        max_retries: u32| {
        // provlint: allow(panic-in-lib) -- every dispatched id was seeded into `slots` at plan time
        let slot = slots.get_mut(id).expect("known cell");
        if slot.task.epoch > max_retries {
            slot.state = SlotState::Failed(CellFailure {
                syscall: slot.task.syscall.clone(),
                tool: slot.task.tool,
                attempts: slot.task.epoch,
                detail,
            });
        } else {
            slot.task.epoch += 1;
            // provlint: allow(direct-clock) -- liveness/backoff scheduling only; report bytes are time-free
            pending.insert(id.to_owned(), Instant::now() + backoff);
            *requeues += 1;
        }
    };

    loop {
        let reaped = pool.reap();
        for exit in &reaped {
            tracer.event("worker.reap", exec_span, || {
                vec![
                    ("worker", provtrace::Field::from(exit.worker)),
                    ("success", provtrace::Field::from(exit.success)),
                    ("status", provtrace::Field::from(exit.status.clone())),
                ]
            });
        }
        exits.extend(reaped);

        // Harvest published results. Only the current epoch counts:
        // superseded publishes (a stalled worker finishing a claim the
        // supervisor already re-dispatched) are rejected — and counted,
        // because a rejected publish is completed work the cluster
        // wasted, which a silent drop would hide from the operator.
        let mut completed: Vec<(String, CellOutcome)> = Vec::new();
        let mut failed: Vec<(String, String)> = Vec::new();
        for (id, epoch) in store.done_entries()? {
            let Some(slot) = slots.get(&id) else { continue };
            if harvested.contains(&(id.clone(), epoch)) {
                continue;
            }
            if !matches!(slot.state, SlotState::Open) || epoch != slot.task.epoch {
                harvested.insert((id.clone(), epoch));
                stale_publishes += 1;
                if let Ok(result) = store.load_result(&id, epoch) {
                    zombie_memo.merge(&result.memo);
                }
                tracer.event("harvest.reject_stale", exec_span, || {
                    vec![
                        ("cell", provtrace::Field::from(id.clone())),
                        ("epoch", provtrace::Field::from(epoch)),
                    ]
                });
                continue;
            }
            harvested.insert((id.clone(), epoch));
            match store.load_result(&id, epoch) {
                Ok(result)
                    if result.syscall == slot.task.syscall
                        && result.tool == slot.task.tool
                        && result.config == *config =>
                {
                    memo_totals.merge(&result.memo);
                    tracer.event("harvest.accept", exec_span, || {
                        vec![
                            ("cell", provtrace::Field::from(id.clone())),
                            ("epoch", provtrace::Field::from(epoch)),
                        ]
                    });
                    completed.push((id, result.cell));
                }
                Ok(_) => failed.push((
                    id,
                    "published result does not match its task (identity or run \
                     configuration differ)"
                        .to_owned(),
                )),
                Err(e) => failed.push((id, format!("torn or malformed result artifact: {e}"))),
            }
        }
        for (id, cell) in completed {
            // provlint: allow(panic-in-lib) -- every dispatched id was seeded into `slots` at plan time
            slots.get_mut(&id).expect("known cell").state = SlotState::Done(cell);
            pending.remove(&id);
        }
        for (id, detail) in failed {
            fail_attempt(
                &mut slots,
                &mut pending,
                &mut requeues,
                &id,
                detail,
                opts.backoff,
                opts.max_retries,
            );
        }

        // Staleness: an open, claimed, unpublished cell whose heartbeat
        // is too old has lost its worker.
        let mut stale: Vec<(String, String)> = Vec::new();
        for (id, slot) in &slots {
            if !matches!(slot.state, SlotState::Open)
                || pending.contains_key(id)
                || store.task_pending(&slot.task)
                || store.done_exists(id, slot.task.epoch)
            {
                continue;
            }
            match store.heartbeat_age(id, slot.task.epoch) {
                Some(age) if age > opts.stale_after => stale.push((
                    id.clone(),
                    format!(
                        "heartbeat went stale at epoch {} ({}ms without a beat)",
                        slot.task.epoch,
                        age.as_millis()
                    ),
                )),
                Some(_) => {}
                None => stale.push((
                    id.clone(),
                    format!(
                        "claim at epoch {} vanished without a heartbeat",
                        slot.task.epoch
                    ),
                )),
            }
        }
        for (id, detail) in stale {
            tracer.event("stale.detect", exec_span, || {
                vec![
                    ("cell", provtrace::Field::from(id.clone())),
                    ("detail", provtrace::Field::from(detail.clone())),
                ]
            });
            fail_attempt(
                &mut slots,
                &mut pending,
                &mut requeues,
                &id,
                detail,
                opts.backoff,
                opts.max_retries,
            );
        }

        // Re-dispatch cells whose backoff has elapsed.
        // provlint: allow(direct-clock) -- liveness/backoff scheduling only; report bytes are time-free
        let now = Instant::now();
        let due: Vec<String> = pending
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(id, _)| id.clone())
            .collect();
        for id in due {
            pending.remove(&id);
            tracer.event("redispatch", exec_span, || {
                vec![
                    ("cell", provtrace::Field::from(id.clone())),
                    ("epoch", provtrace::Field::from(slots[&id].task.epoch)),
                ]
            });
            store.requeue(&slots[&id].task)?;
        }

        let open = slots
            .values()
            .filter(|s| matches!(s.state, SlotState::Open))
            .count();
        if open == 0 {
            break;
        }

        // The pool collapsed with work left: respawn (bounded), giving
        // replacements fresh indices so index-keyed injections cannot
        // retrigger.
        if pool.live() == 0 {
            if respawns >= opts.max_respawns {
                return Err(PipelineError::WorkerPool {
                    failures: exits
                        .iter()
                        .filter(|e| !e.success)
                        .map(WorkerExit::failure)
                        .collect(),
                    detail: format!("{open} cell(s) still open after {respawns} respawn(s)"),
                });
            }
            respawns += 1;
            pool.spawn(workers_spawned)?;
            tracer.event("worker.spawn", exec_span, || {
                vec![
                    ("worker", provtrace::Field::from(workers_spawned)),
                    ("respawn", provtrace::Field::from(true)),
                ]
            });
            workers_spawned += 1;
        }

        std::thread::sleep(opts.poll_interval);
    }

    store.request_stop()?;
    let drained = pool.shutdown();
    for exit in &drained {
        tracer.event("worker.reap", exec_span, || {
            vec![
                ("worker", provtrace::Field::from(exit.worker)),
                ("success", provtrace::Field::from(exit.success)),
                ("status", provtrace::Field::from(exit.status.clone())),
            ]
        });
    }
    exits.extend(drained);

    // Zombies can publish between the last poll and their shutdown — a
    // stall-injected worker sleeps past the whole run and lands its
    // superseded claim only once the stop sentinel is already up. Sweep
    // the done directory one final time so those rejected publishes are
    // counted too: every slot is resolved here, so anything not yet
    // harvested is by definition a superseded publish.
    for (id, epoch) in store.done_entries()? {
        if !slots.contains_key(&id) || harvested.contains(&(id.clone(), epoch)) {
            continue;
        }
        harvested.insert((id.clone(), epoch));
        stale_publishes += 1;
        if let Ok(result) = store.load_result(&id, epoch) {
            zombie_memo.merge(&result.memo);
        }
        tracer.event("harvest.reject_stale", exec_span, || {
            vec![
                ("cell", provtrace::Field::from(id.clone())),
                ("epoch", provtrace::Field::from(epoch)),
            ]
        });
    }
    tracer.span_exit_with("phase.execute", exec_span, || {
        vec![
            ("requeues", provtrace::Field::from(requeues)),
            ("stale_publishes", provtrace::Field::from(stale_publishes)),
        ]
    });

    let merge_span = tracer.span_enter("phase.merge", None, Vec::new);
    let mut cells: Vec<(String, usize, CellOutcome)> = Vec::new();
    let mut failures: Vec<CellFailure> = Vec::new();
    for (_, slot) in slots {
        match slot.state {
            SlotState::Done(cell) => cells.push((slot.task.syscall, slot.task.tool, cell)),
            SlotState::Failed(failure) => {
                cells.push((
                    failure.syscall.clone(),
                    failure.tool,
                    failure.lost_outcome(),
                ));
                failures.push(failure);
            }
            SlotState::Open => unreachable!("loop exits only with no open cells"),
        }
    }
    let merged = merge_matrix_cells(cells)?;
    tracer.span_exit_with("phase.merge", merge_span, || {
        vec![("failures", provtrace::Field::from(failures.len()))]
    });
    Ok(ElasticOutcome {
        report: render_matrix_report(&merged),
        failures,
        worker_exits: exits,
        workers_spawned,
        requeues,
        memo: memo_totals,
        stale_publishes,
        zombie_memo,
        cache_merge: None,
    })
}

/// Clamp the heartbeat interval so a live worker can never look stale.
fn effective_heartbeat(opts: &ElasticOptions) -> Duration {
    opts.heartbeat_interval.min(opts.stale_after / 4)
}

/// How long a stall-injected worker oversleeps: comfortably past
/// staleness, so the supervisor is guaranteed to re-dispatch first.
fn stall_duration(opts: &ElasticOptions) -> Duration {
    opts.stale_after * 4
}

/// Drive an elastic matrix run with `worker_count` worker
/// **processes** (`provmark-shard work …`), supervising claims,
/// heartbeats and re-dispatch in this process.
///
/// `work_dir` becomes the shared run directory (tasks, claims,
/// heartbeats, results and per-worker stderr captures are kept for
/// inspection).
///
/// # Errors
///
/// [`PipelineError::Store`] on I/O failures,
/// [`PipelineError::ShardArtifact`] on a reused work dir,
/// [`PipelineError::WorkerPool`] when the pool collapses beyond the
/// respawn budget. Exhausted cells are **not** an error here — they are
/// reported in [`ElasticOutcome::failures`] so the caller decides.
pub fn drive_elastic(
    worker_count: usize,
    config: &RunConfig,
    work_dir: &Path,
    opts: &ElasticOptions,
) -> Result<ElasticOutcome, PipelineError> {
    std::fs::create_dir_all(work_dir)?;
    let tracer = make_tracer(&opts.trace, "drive");
    let plan_span = tracer.span_enter("phase.plan", None, Vec::new);
    let tasks = plan_cells(config);
    let store = TaskStore::init(work_dir, &tasks)?;
    tracer.span_exit_with("phase.plan", plan_span, || {
        vec![("cells", provtrace::Field::from(tasks.len()))]
    });
    let exe = match &opts.worker_exe {
        Some(exe) => exe.clone(),
        None => std::env::current_exe()?,
    };
    let mut pool = ProcessPool {
        exe,
        root: work_dir.to_owned(),
        heartbeat: effective_heartbeat(opts),
        poll: opts.poll_interval,
        stall: stall_duration(opts),
        inject: opts.inject.clone(),
        solve_cache: prepare_solve_cache_dir(opts)?,
        trace: prepare_trace_dir(opts)?,
        children: Vec::new(),
    };
    let mut outcome = supervise(
        &store,
        &mut pool,
        worker_count,
        tasks,
        config,
        opts,
        &tracer,
    )?;
    merge_after_drive(opts, &mut outcome, &tracer)?;
    flush_tracer(&tracer, &opts.trace);
    Ok(outcome)
}

/// Drive an elastic matrix run with `worker_count` worker **threads**
/// in this process — no subprocess spawning, same protocol and
/// supervisor. Used by benches and fast tests.
///
/// # Errors
///
/// As [`drive_elastic`].
pub fn drive_elastic_in_process(
    worker_count: usize,
    config: &RunConfig,
    work_dir: &Path,
    opts: &ElasticOptions,
) -> Result<ElasticOutcome, PipelineError> {
    std::fs::create_dir_all(work_dir)?;
    let tracer = make_tracer(&opts.trace, "drive");
    let plan_span = tracer.span_enter("phase.plan", None, Vec::new);
    let tasks = plan_cells(config);
    let store = TaskStore::init(work_dir, &tasks)?;
    tracer.span_exit_with("phase.plan", plan_span, || {
        vec![("cells", provtrace::Field::from(tasks.len()))]
    });
    let mut pool = ThreadPool {
        store: store.clone(),
        heartbeat: effective_heartbeat(opts),
        poll: opts.poll_interval,
        stall: stall_duration(opts),
        inject: opts.inject.clone(),
        solve_cache: prepare_solve_cache_dir(opts)?,
        trace: prepare_trace_dir(opts)?,
        threads: Vec::new(),
    };
    let mut outcome = supervise(
        &store,
        &mut pool,
        worker_count,
        tasks,
        config,
        opts,
        &tracer,
    )?;
    merge_after_drive(opts, &mut outcome, &tracer)?;
    flush_tracer(&tracer, &opts.trace);
    Ok(outcome)
}

/// Ensure the configured solve-cache directory exists before workers
/// try to warm from (or write deltas into) it.
fn prepare_solve_cache_dir(opts: &ElasticOptions) -> Result<Option<PathBuf>, PipelineError> {
    if let Some(dir) = &opts.solve_cache {
        std::fs::create_dir_all(dir)?;
    }
    Ok(opts.solve_cache.clone())
}

/// Ensure the configured trace directory exists before workers try to
/// flush into it.
fn prepare_trace_dir(opts: &ElasticOptions) -> Result<Option<PathBuf>, PipelineError> {
    if let Some(dir) = &opts.trace {
        std::fs::create_dir_all(dir)?;
    }
    Ok(opts.trace.clone())
}

/// Fold the per-worker delta files into the shared cache once the run
/// is over, recording what happened on the outcome.
fn merge_after_drive(
    opts: &ElasticOptions,
    outcome: &mut ElasticOutcome,
    tracer: &provtrace::Tracer,
) -> Result<(), PipelineError> {
    if let Some(dir) = &opts.solve_cache {
        let merge = merge_solve_cache_dir(dir)?;
        tracer.event("cache.merge", None, || {
            vec![
                ("entries", provtrace::Field::from(merge.entries)),
                ("delta_files", provtrace::Field::from(merge.delta_files)),
                ("skipped", provtrace::Field::from(merge.skipped.len())),
            ]
        });
        outcome.cache_merge = Some(merge);
    }
    Ok(())
}
