//! Sharded Table 2 matrix runner: the distribution layer over
//! `provmark_core`'s plan / execute / merge pipeline split.
//!
//! A matrix run is bounded by one process no matter how many cores or
//! machines are available; this crate makes it distributable with three
//! self-describing, versioned JSON artifacts and a worker binary:
//!
//! 1. **Plan** — [`plan`] splits the matrix into [`ShardManifest`]s:
//!    each names the rows one worker executes plus the complete run
//!    configuration (trials, seed, noise, filtering, simulated OPUS
//!    startup cost), so a manifest alone fully determines a worker's
//!    work — no shared state, no ambient configuration.
//! 2. **Execute** — the `provmark-shard` binary (or [`execute`]
//!    in-process) runs one manifest's cells through the ordinary
//!    pipeline and emits a [`PartialResults`] artifact of per-cell
//!    [`CellOutcome`]s. Cells are seeded and per-cell deterministic, so
//!    a shard's cells equal the same cells of a single-process run
//!    regardless of which host executed them.
//! 3. **Merge** — [`merge`] reassembles partials through
//!    `provmark_core`'s deterministic merge and renders the canonical
//!    matrix report, **byte-identical** to the single-process
//!    [`single_report`] (asserted by this crate's integration tests and
//!    the CI sharded smoke).
//!
//! [`drive_local`] is the local driver mode: it runs the crash-tolerant
//! [`elastic`] execution layer — per-cell claimable tasks, heartbeats,
//! epoch-bumped re-dispatch of dead claims, and typed per-cell failures
//! when retries run out — over N concurrent worker *processes* of the
//! current executable (`provmark-shard work …`). All artifact writes
//! are atomic ([`atomic_write`]), so no reader can observe a torn file.
//!
//! # Artifact versioning
//!
//! Both artifact kinds carry a `format` tag and a `version` number
//! ([`MANIFEST_VERSION`] / [`PARTIAL_VERSION`]), plus the
//! [`provgraph::snapshot::SNAPSHOT_VERSION`] of the session snapshot
//! format in effect, so heterogeneous runner fleets detect skew up
//! front: readers reject any other format/version with typed
//! [`PipelineError`]s instead of guessing (same rule as the snapshot
//! format itself — no in-place extensions, every layout change bumps
//! the version).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod elastic;

use std::path::Path;

use provmark_core::pipeline::{
    self, merge_matrix_summaries, plan_matrix_shards, run_matrix_cells, summarize_rows,
    CellOutcome, MatrixShard, SummaryRow,
};
use provmark_core::report::render_matrix_report;
use provmark_core::{BenchmarkOptions, PipelineError};
use serde_json::{Map, Value};

/// Version of the shard-manifest JSON layout.
///
/// v2: the run configuration gained the `use_solve_memo` switch (the
/// session-level solve memo; on by default).
pub const MANIFEST_VERSION: u32 = 2;

/// Version of the partial-results JSON layout.
///
/// v2: the run configuration gained the `use_solve_memo` switch.
pub const PARTIAL_VERSION: u32 = 2;

/// Simulated OPUS Neo4j startup iterations used by `--quick` runs (the
/// CI smoke configuration; same scale as the tier-1 matrix test).
pub const QUICK_OPUS_DB_ITERATIONS: u64 = 500;

/// The full configuration of a matrix run, shipped inside every
/// manifest so workers need nothing but the artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Pipeline options (trials, seed, noise, filtering).
    pub opts: BenchmarkOptions,
    /// Simulated OPUS Neo4j startup override (`None` = tool default).
    pub opus_db_iterations: Option<u64>,
}

impl RunConfig {
    /// The default (full-cost) configuration.
    pub fn full() -> Self {
        RunConfig {
            opts: BenchmarkOptions::default(),
            opus_db_iterations: None,
        }
    }

    /// The `--quick` configuration: default options with the simulated
    /// Neo4j startup scaled down ([`QUICK_OPUS_DB_ITERATIONS`]).
    pub fn quick() -> Self {
        RunConfig {
            opts: BenchmarkOptions::default(),
            opus_db_iterations: Some(QUICK_OPUS_DB_ITERATIONS),
        }
    }
}

/// A self-describing shard manifest: one worker's complete assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// The planned shard (index, count, row names).
    pub shard: MatrixShard,
    /// The run configuration every shard of the plan shares.
    pub config: RunConfig,
}

impl ShardManifest {
    /// Render as the versioned manifest JSON document.
    pub fn to_json_string(&self) -> String {
        let mut doc = Map::new();
        doc.insert(
            "format".into(),
            Value::String("provmark-shard-manifest".into()),
        );
        doc.insert("version".into(), exact_num(MANIFEST_VERSION.into()));
        doc.insert(
            "snapshot_format_version".into(),
            exact_num(provgraph::snapshot::SNAPSHOT_VERSION.into()),
        );
        doc.insert(
            "shard_index".into(),
            exact_num(self.shard.shard_index as u64),
        );
        doc.insert(
            "shard_count".into(),
            exact_num(self.shard.shard_count as u64),
        );
        doc.insert(
            "syscalls".into(),
            Value::Array(
                self.shard
                    .syscalls
                    .iter()
                    .map(|s| Value::String(s.clone()))
                    .collect(),
            ),
        );
        insert_config(&mut doc, &self.config);
        // provlint: allow(panic-in-lib) -- serialization only fails on non-finite floats; every number here passed exact_num
        serde_json::to_string_pretty(&Value::Object(doc)).expect("manifest serializes")
    }

    /// Parse and validate a manifest document.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ShardArtifact`] on malformed JSON, a wrong
    /// format tag, an unsupported manifest version or missing fields;
    /// [`PipelineError::Snapshot`] when the manifest was produced
    /// against a different session-snapshot format version (runner
    /// skew).
    pub fn from_json_str(text: &str) -> Result<ShardManifest, PipelineError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| artifact(format!("manifest is not valid JSON: {e}")))?;
        check_header(&doc, "provmark-shard-manifest", MANIFEST_VERSION)?;
        let shard = MatrixShard {
            shard_index: get_usize(&doc, "shard_index")?,
            shard_count: get_usize(&doc, "shard_count")?,
            syscalls: match &doc["syscalls"] {
                Value::Array(items) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| artifact("manifest field `syscalls` must hold strings"))
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err(artifact("manifest field `syscalls` must be an array")),
            },
        };
        if shard.shard_index >= shard.shard_count {
            return Err(PipelineError::InvalidShardIndex {
                index: shard.shard_index,
                count: shard.shard_count,
            });
        }
        Ok(ShardManifest {
            shard,
            config: extract_config(&doc)?,
        })
    }
}

/// Write the run configuration into an artifact document — shared by
/// manifests and partials, so the merge can verify that every partial
/// was produced under one configuration.
///
/// The seed is serialized as a **string**: the vendored JSON shim backs
/// numbers with `f64`, which would silently round seeds above 2^53.
pub(crate) fn insert_config(doc: &mut Map<String, Value>, config: &RunConfig) {
    let mut options = Map::new();
    options.insert("trials".into(), exact_num(config.opts.trials as u64));
    options.insert(
        "base_seed".into(),
        Value::String(config.opts.base_seed.to_string()),
    );
    options.insert("noise".into(), Value::Bool(config.opts.noise));
    options.insert(
        "filter_graphs".into(),
        Value::Bool(config.opts.filter_graphs),
    );
    options.insert(
        "use_solve_memo".into(),
        Value::Bool(config.opts.use_solve_memo),
    );
    doc.insert("options".into(), Value::Object(options));
    doc.insert(
        "opus_db_iterations".into(),
        config.opus_db_iterations.map_or(Value::Null, exact_num),
    );
}

/// Parse the run configuration back out of an artifact document.
pub(crate) fn extract_config(doc: &Value) -> Result<RunConfig, PipelineError> {
    let options = &doc["options"];
    let base_seed: u64 = options["base_seed"]
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| artifact("field `base_seed` must be a u64 encoded as a string"))?;
    let opts = BenchmarkOptions {
        trials: get_usize(options, "trials")?,
        base_seed,
        noise: get_bool(options, "noise")?,
        filter_graphs: get_bool(options, "filter_graphs")?,
        use_solve_memo: get_bool(options, "use_solve_memo")?,
        // Deliberately not serialized: the cache is observably invisible
        // (warm and cold runs are byte-identical), so it is runner-local
        // configuration — wired per invocation via `--solve-cache` — and
        // never part of a run's recorded identity.
        solve_cache: None,
        // Same rationale: tracing is observably outcome-neutral, wired
        // per invocation via `--trace`, never part of a run's identity.
        trace: None,
    };
    let opus_db_iterations = match &doc["opus_db_iterations"] {
        Value::Null => None,
        v => Some(
            v.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| {
                    artifact("field `opus_db_iterations` must be a non-negative integer or null")
                })? as u64,
        ),
    };
    Ok(RunConfig {
        opts,
        opus_db_iterations,
    })
}

/// The partial-results artifact one worker emits: the summarized rows
/// of its shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialResults {
    /// Index of the shard these rows came from.
    pub shard_index: usize,
    /// Shard count of the plan the shard belonged to.
    pub shard_count: usize,
    /// The run configuration the cells were measured under (copied from
    /// the manifest) — [`merge`] refuses partials whose configurations
    /// disagree, so shards of different plans cannot be silently mixed
    /// into a chimera report.
    pub config: RunConfig,
    /// Summarized matrix rows, in the shard's execution order.
    pub rows: Vec<SummaryRow>,
}

impl PartialResults {
    /// Render as the versioned partial-results JSON document.
    pub fn to_json_string(&self) -> String {
        let mut doc = Map::new();
        doc.insert(
            "format".into(),
            Value::String("provmark-shard-partial".into()),
        );
        doc.insert("version".into(), exact_num(PARTIAL_VERSION.into()));
        doc.insert(
            "snapshot_format_version".into(),
            exact_num(provgraph::snapshot::SNAPSHOT_VERSION.into()),
        );
        doc.insert("shard_index".into(), exact_num(self.shard_index as u64));
        doc.insert("shard_count".into(), exact_num(self.shard_count as u64));
        insert_config(&mut doc, &self.config);
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|(syscall, cells)| {
                let mut row = Map::new();
                row.insert("syscall".into(), Value::String(syscall.clone()));
                row.insert(
                    "cells".into(),
                    Value::Array(cells.iter().map(cell_to_json).collect()),
                );
                Value::Object(row)
            })
            .collect();
        doc.insert("rows".into(), Value::Array(rows));
        // provlint: allow(panic-in-lib) -- serialization only fails on non-finite floats; every number here passed exact_num
        serde_json::to_string_pretty(&Value::Object(doc)).expect("partial serializes")
    }

    /// Parse and validate a partial-results document.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ShardArtifact`] / [`PipelineError::Snapshot`] on
    /// the same header conditions as [`ShardManifest::from_json_str`].
    pub fn from_json_str(text: &str) -> Result<PartialResults, PipelineError> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| artifact(format!("partial results are not valid JSON: {e}")))?;
        check_header(&doc, "provmark-shard-partial", PARTIAL_VERSION)?;
        let rows = match &doc["rows"] {
            Value::Array(items) => items
                .iter()
                .map(|row| {
                    let syscall = row["syscall"]
                        .as_str()
                        .ok_or_else(|| artifact("row is missing `syscall`"))?
                        .to_owned();
                    let cells = match &row["cells"] {
                        Value::Array(cells) if cells.len() == 3 => {
                            let parsed: Vec<CellOutcome> =
                                cells.iter().map(cell_from_json).collect::<Result<_, _>>()?;
                            // provlint: allow(panic-in-lib) -- the match arm guarantees exactly 3 cells
                            <[CellOutcome; 3]>::try_from(parsed).expect("length checked")
                        }
                        _ => {
                            return Err(artifact(format!(
                                "row `{syscall}` must carry exactly 3 cells"
                            )))
                        }
                    };
                    Ok((syscall, cells))
                })
                .collect::<Result<_, PipelineError>>()?,
            _ => return Err(artifact("partial field `rows` must be an array")),
        };
        Ok(PartialResults {
            shard_index: get_usize(&doc, "shard_index")?,
            shard_count: get_usize(&doc, "shard_count")?,
            config: extract_config(&doc)?,
            rows,
        })
    }
}

pub(crate) fn cell_to_json(cell: &CellOutcome) -> Value {
    let mut c = Map::new();
    c.insert("status".into(), Value::String(cell.status.clone()));
    c.insert(
        "matching_cost".into(),
        cell.matching_cost.map_or(Value::Null, exact_num),
    );
    c.insert(
        "discarded_trials".into(),
        cell.discarded_trials
            .map_or(Value::Null, |v| exact_num(v as u64)),
    );
    c.insert(
        "result_size".into(),
        cell.result_size
            .map_or(Value::Null, |v| exact_num(v as u64)),
    );
    Value::Object(c)
}

pub(crate) fn cell_from_json(v: &Value) -> Result<CellOutcome, PipelineError> {
    let opt = |field: &str| -> Result<Option<u64>, PipelineError> {
        match &v[field] {
            Value::Null => Ok(None),
            x => x
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| Some(n as u64))
                .ok_or_else(|| {
                    artifact(format!(
                        "cell field `{field}` must be a non-negative integer or null"
                    ))
                }),
        }
    };
    Ok(CellOutcome {
        status: v["status"]
            .as_str()
            .ok_or_else(|| artifact("cell is missing `status`"))?
            .to_owned(),
        matching_cost: opt("matching_cost")?,
        discarded_trials: opt("discarded_trials")?.map(|x| x as usize),
        result_size: opt("result_size")?.map(|x| x as usize),
    })
}

/// Encode a non-negative integer as a JSON number, asserting it stays
/// inside the shim's exactly-representable `f64` range (<= 2^53).
/// Seeds — the one field that can exceed that range — are serialized
/// as strings instead (see [`insert_config`]).
pub(crate) fn exact_num(n: u64) -> Value {
    debug_assert!(n <= 1u64 << 53, "integer exceeds the exact f64 range");
    // provlint: allow(lossy-cast-in-serde) -- bound asserted above; the vendored JSON shim backs numbers with f64
    Value::Number(n as f64)
}

pub(crate) fn artifact(detail: impl Into<String>) -> PipelineError {
    PipelineError::ShardArtifact {
        detail: detail.into(),
    }
}

/// Read and parse one partial-results artifact from disk, naming the
/// offending **file path and shard position** in every artifact error.
///
/// A truncated or mid-write partial (a worker killed between `write`
/// and `fsync`, an interrupted copy) used to surface as a bare "not
/// valid JSON" message, leaving the operator to bisect which of N
/// artifacts was broken; this wrapper pins the failure to the file so
/// only that shard needs re-executing. Unreadable files are reported
/// the same way; typed non-artifact errors (e.g. snapshot-version skew)
/// pass through unchanged.
pub fn load_partial(path: &Path, index: usize) -> Result<PartialResults, PipelineError> {
    let annotate =
        |detail: String| artifact(format!("partial #{index} (`{}`): {detail}", path.display()));
    let text = std::fs::read_to_string(path)
        .map_err(|e| annotate(format!("cannot read the artifact: {e}")))?;
    PartialResults::from_json_str(&text).map_err(|e| match e {
        PipelineError::ShardArtifact { detail } => annotate(detail),
        other => other,
    })
}

/// Validate the `format` / `version` / `snapshot_format_version` header
/// shared by both artifact kinds.
pub(crate) fn check_header(doc: &Value, format: &str, version: u32) -> Result<(), PipelineError> {
    match doc["format"].as_str() {
        Some(found) if found == format => {}
        Some(found) => {
            return Err(artifact(format!(
                "expected a `{format}` document, found `{found}`"
            )))
        }
        None => {
            return Err(artifact(format!(
                "missing `format` tag (expected `{format}`)"
            )))
        }
    }
    let found = get_usize(doc, "version")?;
    if found != version as usize {
        return Err(artifact(format!(
            "{format} version {found} is not supported (this build reads version \
             {version}); re-plan with a matching build"
        )));
    }
    let snap_raw = get_usize(doc, "snapshot_format_version")?;
    let snap = u32::try_from(snap_raw).map_err(|_| {
        artifact(format!(
            "snapshot_format_version {snap_raw} outside u32 range"
        ))
    })?;
    if snap != provgraph::snapshot::SNAPSHOT_VERSION {
        return Err(PipelineError::Snapshot {
            source: provgraph::snapshot::SnapshotError::UnsupportedVersion {
                found: snap,
                supported: provgraph::snapshot::SNAPSHOT_VERSION,
            },
        });
    }
    Ok(())
}

pub(crate) fn get_usize(doc: &Value, field: &str) -> Result<usize, PipelineError> {
    doc[field]
        .as_f64()
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as usize)
        .ok_or_else(|| artifact(format!("field `{field}` must be a non-negative integer")))
}

pub(crate) fn get_bool(doc: &Value, field: &str) -> Result<bool, PipelineError> {
    doc[field]
        .as_bool()
        .ok_or_else(|| artifact(format!("field `{field}` must be a boolean")))
}

/// Plan a `shard_count`-way split of the matrix under `config`.
///
/// # Errors
///
/// [`PipelineError::InvalidShardCount`] on an unusable count.
pub fn plan(shard_count: usize, config: &RunConfig) -> Result<Vec<ShardManifest>, PipelineError> {
    Ok(plan_matrix_shards(shard_count)?
        .into_iter()
        .map(|shard| ShardManifest {
            shard,
            config: config.clone(),
        })
        .collect())
}

/// Execute one manifest in-process, producing its partial results.
///
/// # Errors
///
/// [`PipelineError::UnknownBenchmark`] when the manifest names a row
/// outside Table 2 (per-cell pipeline errors are reported inside the
/// cells, not raised).
pub fn execute(manifest: &ShardManifest) -> Result<PartialResults, PipelineError> {
    let rows = run_matrix_cells(
        &manifest.shard.syscalls,
        &manifest.config.opts,
        manifest.config.opus_db_iterations,
    )?;
    Ok(PartialResults {
        shard_index: manifest.shard.shard_index,
        shard_count: manifest.shard.shard_count,
        config: manifest.config.clone(),
        rows: summarize_rows(&rows),
    })
}

/// Deterministically merge partial results and render the canonical
/// matrix report.
///
/// # Errors
///
/// [`PipelineError::ShardMerge`] when the partials came from different
/// plans (disagreeing run configurations or shard counts) or do not
/// reassemble the full matrix (missing, duplicate or foreign rows) —
/// mixing shards of different runs would produce a chimera report that
/// matches no single-process run.
pub fn merge(parts: Vec<PartialResults>) -> Result<String, PipelineError> {
    if let Some((first, rest)) = parts.split_first() {
        for part in rest {
            if part.config != first.config {
                return Err(PipelineError::ShardMerge {
                    detail: format!(
                        "shard {} was measured under a different run configuration than \
                         shard {} (trials/seed/noise/filtering/OPUS cost differ) — \
                         execute every shard from one plan",
                        part.shard_index, first.shard_index
                    ),
                });
            }
            if part.shard_count != first.shard_count {
                return Err(PipelineError::ShardMerge {
                    detail: format!(
                        "partials come from different plans ({}-shard vs {}-shard)",
                        first.shard_count, part.shard_count
                    ),
                });
            }
        }
    }
    let merged = merge_matrix_summaries(parts.into_iter().map(|p| p.rows))?;
    Ok(render_matrix_report(&merged))
}

/// Run the matrix in-process (no sharding) and render the same report
/// the sharded path merges to — the byte-identity reference.
pub fn single_report(config: &RunConfig) -> String {
    let rows = pipeline::run_matrix(&config.opts, config.opus_db_iterations);
    let merged =
        // provlint: allow(panic-in-lib) -- a single complete run can never produce conflicting partials
        merge_matrix_summaries([summarize_rows(&rows)]).expect("a full single-process run merges");
    render_matrix_report(&merged)
}

/// Write `contents` to `path` atomically **and durably**: write to a
/// hidden temp file in the destination directory, `fsync` it, `rename`
/// over the final path, then `fsync` the directory so the rename itself
/// survives a crash.
///
/// Readers can therefore never observe a torn artifact at `path` — a
/// writer killed mid-write leaves only a `.{name}.tmp.*` file behind,
/// which every artifact scan skips — and once this returns `Ok` the
/// artifact is on stable storage, not just in the page cache (a power
/// loss after a claim or result was published cannot un-publish it).
/// Used for **all** provshard artifact writes (manifests, partials,
/// cell tasks/results, heartbeats, reports). Delegates to
/// [`aspsolver::write_bytes_durable`], the same primitive the solve
/// cache uses.
///
/// # Errors
///
/// Any I/O error from the write, the syncs or the rename.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    aspsolver::write_bytes_durable(path, contents.as_bytes())
}

/// Local driver mode: spawn `worker_count` elastic worker **processes**
/// of the current executable (`provmark-shard work …`) over a shared
/// run directory, supervise claims/heartbeats/re-dispatch, and merge
/// the per-cell results into the canonical report (see the [`elastic`]
/// module for the protocol).
///
/// `work_dir` receives the claim-protocol directories and per-worker
/// stderr captures (kept for inspection).
///
/// # Errors
///
/// [`PipelineError::InvalidShardCount`] on an unusable worker count
/// (same validation as the classic row-shard plan);
/// [`PipelineError::CellsExhausted`] when cells ran out of retries (the
/// merged report still exists, with those cells marked `lost`);
/// otherwise as [`elastic::drive_elastic`].
pub fn drive_local(
    worker_count: usize,
    config: &RunConfig,
    work_dir: &Path,
) -> Result<String, PipelineError> {
    plan_matrix_shards(worker_count)?;
    let outcome = elastic::drive_elastic(
        worker_count,
        config,
        work_dir,
        &elastic::ElasticOptions::default(),
    )?;
    if outcome.failures.is_empty() {
        Ok(outcome.report)
    } else {
        Err(PipelineError::CellsExhausted {
            failures: outcome.failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> ShardManifest {
        plan(3, &RunConfig::quick()).unwrap().swap_remove(1)
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let manifest = sample_manifest();
        let text = manifest.to_json_string();
        let back = ShardManifest::from_json_str(&text).unwrap();
        assert_eq!(back, manifest);
        assert!(text.contains("\"format\": \"provmark-shard-manifest\""));
        assert!(text.contains("\"snapshot_format_version\""));
    }

    #[test]
    fn partial_roundtrips_through_json() {
        let partial = PartialResults {
            shard_index: 2,
            shard_count: 3,
            config: RunConfig::quick(),
            rows: vec![(
                "creat".to_owned(),
                [
                    CellOutcome {
                        status: "ok".into(),
                        matching_cost: Some(4),
                        discarded_trials: Some(1),
                        result_size: Some(7),
                    },
                    CellOutcome {
                        status: "empty".into(),
                        matching_cost: Some(0),
                        discarded_trials: Some(0),
                        result_size: Some(0),
                    },
                    CellOutcome {
                        status: "error: benchmark `creat` background variant failed".into(),
                        matching_cost: None,
                        discarded_trials: None,
                        result_size: None,
                    },
                ],
            )],
        };
        let back = PartialResults::from_json_str(&partial.to_json_string()).unwrap();
        assert_eq!(back, partial);
    }

    #[test]
    fn wrong_format_tag_rejected() {
        let manifest = sample_manifest();
        let as_partial = PartialResults::from_json_str(&manifest.to_json_string());
        assert!(
            matches!(&as_partial, Err(PipelineError::ShardArtifact { detail })
                if detail.contains("provmark-shard-partial")),
            "{as_partial:?}"
        );
        let err = ShardManifest::from_json_str("{}").unwrap_err();
        assert!(matches!(err, PipelineError::ShardArtifact { .. }));
        let err = ShardManifest::from_json_str("not json").unwrap_err();
        assert!(matches!(err, PipelineError::ShardArtifact { .. }));
    }

    #[test]
    fn artifact_version_skew_rejected() {
        let text = sample_manifest()
            .to_json_string()
            .replace("\"version\": 2", "\"version\": 3");
        let err = ShardManifest::from_json_str(&text).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardArtifact { detail }
                if detail.contains("version 3") && detail.contains("re-plan")),
            "{err}"
        );
    }

    #[test]
    fn v1_artifacts_without_memo_field_rejected() {
        // A v1-era manifest (no `use_solve_memo`) must be refused by the
        // version header, not half-parsed into a default configuration.
        let text = sample_manifest()
            .to_json_string()
            .replace("\"version\": 2", "\"version\": 1");
        let err = ShardManifest::from_json_str(&text).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardArtifact { detail } if detail.contains("version 1")),
            "{err}"
        );
    }

    #[test]
    fn memo_switch_roundtrips_through_artifacts() {
        let mut config = RunConfig::quick();
        config.opts.use_solve_memo = false;
        let manifest = plan(2, &config).unwrap().swap_remove(0);
        let back = ShardManifest::from_json_str(&manifest.to_json_string()).unwrap();
        assert!(!back.config.opts.use_solve_memo);
        assert_eq!(back.config, config);
    }

    #[test]
    fn truncated_partial_reports_file_path_and_index() {
        let dir = std::env::temp_dir().join(format!("provshard-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let full = PartialResults {
            shard_index: 1,
            shard_count: 3,
            config: RunConfig::quick(),
            rows: Vec::new(),
        }
        .to_json_string();
        // A mid-write artifact: valid JSON prefix, cut off mid-document.
        let path = dir.join("part-1.json");
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_partial(&path, 1).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardArtifact { detail }
                if detail.contains("partial #1")
                    && detail.contains("part-1.json")
                    && detail.contains("JSON")),
            "truncated artifact must name the file and index: {err}"
        );
        // A missing artifact is annotated the same way.
        let err = load_partial(&dir.join("never-written.json"), 2).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardArtifact { detail }
                if detail.contains("partial #2") && detail.contains("never-written.json")),
            "{err}"
        );
        // An intact artifact still loads.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(load_partial(&path, 1).unwrap().shard_index, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_version_skew_rejected_with_typed_error() {
        let text = sample_manifest().to_json_string().replace(
            "\"snapshot_format_version\": 1",
            "\"snapshot_format_version\": 9",
        );
        let err = ShardManifest::from_json_str(&text).unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Snapshot {
                    source: provgraph::snapshot::SnapshotError::UnsupportedVersion { found: 9, .. }
                }
            ),
            "snapshot skew must surface as a typed snapshot error"
        );
    }

    #[test]
    fn manifest_with_bad_shard_index_rejected() {
        let text = sample_manifest()
            .to_json_string()
            .replace("\"shard_index\": 1", "\"shard_index\": 7");
        let err = ShardManifest::from_json_str(&text).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::InvalidShardIndex { index: 7, count: 3 }
        ));
    }

    #[test]
    fn plan_validates_count() {
        assert!(matches!(
            plan(0, &RunConfig::quick()),
            Err(PipelineError::InvalidShardCount { count: 0, .. })
        ));
    }

    #[test]
    fn merge_rejects_mixed_config_partials() {
        let mut other = RunConfig::quick();
        other.opts.base_seed = 7;
        let part = |shard_index: usize, config: &RunConfig| PartialResults {
            shard_index,
            shard_count: 2,
            config: config.clone(),
            rows: Vec::new(),
        };
        let err = merge(vec![part(0, &RunConfig::quick()), part(1, &other)]).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail }
                if detail.contains("different run configuration")),
            "{err}"
        );
        // Disagreeing plan sizes are rejected too.
        let mut b = part(1, &RunConfig::quick());
        b.shard_count = 3;
        let err = merge(vec![part(0, &RunConfig::quick()), b]).unwrap_err();
        assert!(
            matches!(&err, PipelineError::ShardMerge { detail }
                if detail.contains("different plans")),
            "{err}"
        );
    }

    #[test]
    fn large_seeds_roundtrip_exactly() {
        // The JSON shim backs numbers with f64; seeds ride as strings so
        // values above 2^53 survive the worker boundary bit-exactly.
        let seed = (1u64 << 53) + 1;
        let mut config = RunConfig::quick();
        config.opts.base_seed = seed;
        let manifest = plan(2, &config).unwrap().swap_remove(0);
        let back = ShardManifest::from_json_str(&manifest.to_json_string()).unwrap();
        assert_eq!(back.config.opts.base_seed, seed);
    }

    #[test]
    fn malformed_cell_numbers_rejected() {
        let clean = PartialResults {
            shard_index: 0,
            shard_count: 1,
            config: RunConfig::quick(),
            rows: vec![(
                "creat".to_owned(),
                [
                    CellOutcome {
                        status: "ok".into(),
                        matching_cost: Some(3),
                        discarded_trials: Some(0),
                        result_size: Some(3),
                    },
                    CellOutcome {
                        status: "ok".into(),
                        matching_cost: Some(0),
                        discarded_trials: Some(0),
                        result_size: Some(3),
                    },
                    CellOutcome {
                        status: "ok".into(),
                        matching_cost: Some(0),
                        discarded_trials: Some(0),
                        result_size: Some(3),
                    },
                ],
            )],
        }
        .to_json_string();
        for bad in ["-3", "1.5"] {
            let text = clean.replace("\"matching_cost\": 3", &format!("\"matching_cost\": {bad}"));
            assert_ne!(text, clean, "replacement must hit");
            let err = PartialResults::from_json_str(&text).unwrap_err();
            assert!(
                matches!(&err, PipelineError::ShardArtifact { detail }
                    if detail.contains("matching_cost")),
                "{bad}: {err:?}"
            );
        }
    }
}
