//! `provmark-shard` — the sharded Table 2 matrix runner.
//!
//! ```text
//! provmark-shard plan    --shards N [--shard-index i] --out-dir DIR [--quick] [--trials T] [--seed S]
//! provmark-shard execute MANIFEST --out PARTIAL
//! provmark-shard merge   PARTIAL... --out REPORT
//! provmark-shard single  [--quick] [--trials T] [--seed S] [--solve-cache DIR] [--trace DIR] --out REPORT
//! provmark-shard drive   --shards N --out REPORT [--work-dir DIR] [--solve-cache DIR] [--trace DIR] [fault options] [run options]
//! provmark-shard work    DIR --worker-index N [--heartbeat-ms H] [--poll-ms P] [--stall-ms S] [--inject SPEC] [--solve-cache DIR] [--trace DIR]
//! ```
//!
//! `plan` writes self-describing shard manifests (one per shard, or just
//! shard `i` with `--shard-index`); `execute` runs one manifest through
//! the pipeline and writes its partial-results artifact; `merge`
//! deterministically reassembles partials into the canonical matrix
//! report; `single` runs the whole matrix in one process and writes the
//! byte-identical reference report; `drive` runs the crash-tolerant
//! elastic layer — per-cell claimable tasks, heartbeats, epoch-bumped
//! re-dispatch — over N concurrent `work` worker *processes* of this
//! executable; `work` is that worker loop (claim → solve → publish,
//! driven entirely by the shared run directory).
//!
//! `--solve-cache DIR` points `single`, `drive` and `work` at a shared
//! persistent solve-cache directory: runs warm their solve memos from
//! `DIR/solve.cache` and publish what they solved back (elastic workers
//! via private per-worker delta files the driver merges), so repeated
//! runs — across processes, shards and restarts — replay prior dense
//! searches. Reports are byte-identical with or without it; a missing
//! cache is a cold start and a corrupt one is skipped with a note.
//!
//! `--trace DIR` points `single`, `drive` and `work` at a trace
//! directory for structured `provtrace` telemetry: every participating
//! process writes its own versioned `trace.<label>.<pid>.jsonl`
//! (spans for cells, rows and solves; claim / heartbeat / publish /
//! re-dispatch events; memo counters), durably flushed so crashes
//! leave readable partial traces. Inspect with `provmark-trace`.
//! Tracing is observably outcome-neutral: reports are byte-identical
//! with it on or off.
//!
//! `--inject` deterministically injects faults for tests and CI:
//! `kill-worker=N`, `torn-partial[=N]`, `stall=N`,
//! `kill-cell=SYSCALL/TOOL`.
//!
//! All argument and artifact validation surfaces typed pipeline errors
//! with actionable messages (exit code 2 for usage errors, 1 for
//! pipeline failures). All artifact writes are atomic
//! (write-temp-then-rename), so a killed invocation never leaves a torn
//! file at a final path.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use provmark_core::pipeline::plan_matrix_shard;
use provmark_core::PipelineError;
use provshard::elastic::{
    drive_elastic, worker_loop, ElasticOptions, InjectSpec, TaskStore, WorkerContext, WorkerEnd,
    SOLVE_CACHE_FILE,
};
use provshard::{
    atomic_write, execute, load_partial, merge, plan, single_report, RunConfig, ShardManifest,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: provmark-shard <command> [options]\n\
         \n\
         commands:\n\
         \x20 plan    --shards N [--shard-index i] --out-dir DIR [run options]\n\
         \x20 execute MANIFEST --out PARTIAL\n\
         \x20 merge   PARTIAL... --out REPORT\n\
         \x20 single  --out REPORT [run options]\n\
         \x20 drive   --shards N --out REPORT [--work-dir DIR] [fault options] [run options]\n\
         \x20 work    DIR --worker-index N [--heartbeat-ms H] [--poll-ms P] [--stall-ms S] [--inject SPEC]\n\
         \n\
         run options:   --quick (scaled-down simulated OPUS startup),\n\
         \x20            --trials T (default 2), --seed S (default 1),\n\
         \x20            --no-memo (disable the session-level solve memo),\n\
         \x20            --solve-cache DIR (persistent solve cache shared across\n\
         \x20            runs and workers; single, drive and work only),\n\
         \x20            --trace DIR (write provtrace telemetry files into DIR;\n\
         \x20            single, drive and work only)\n\
         fault options: --stale-after-ms MS (default 5000; 300 with --quick),\n\
         \x20            --max-retries R (default 2),\n\
         \x20            --backoff-ms MS (default 100; 50 with --quick),\n\
         \x20            --inject kill-worker=N,torn-partial[=N],stall=N,kill-cell=SYSCALL/TOOL"
    );
    ExitCode::from(2)
}

/// Shared CLI state collected from the argument list.
#[derive(Default)]
struct Args {
    shards: Option<usize>,
    shard_index: Option<usize>,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    work_dir: Option<PathBuf>,
    solve_cache: Option<PathBuf>,
    trace: Option<PathBuf>,
    quick: bool,
    no_memo: bool,
    trials: Option<usize>,
    seed: Option<u64>,
    inject: InjectSpec,
    stale_after_ms: Option<u64>,
    max_retries: Option<u32>,
    backoff_ms: Option<u64>,
    worker_index: Option<usize>,
    heartbeat_ms: Option<u64>,
    poll_ms: Option<u64>,
    stall_ms: Option<u64>,
    positional: Vec<PathBuf>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    fn number<T: std::str::FromStr>(flag: &str, text: String, what: &str) -> Result<T, String> {
        text.parse().map_err(|_| format!("{flag} needs {what}"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                args.shards = Some(number(
                    "--shards",
                    value("--shards", &mut it)?,
                    "a positive integer",
                )?)
            }
            "--shard-index" => {
                args.shard_index = Some(number(
                    "--shard-index",
                    value("--shard-index", &mut it)?,
                    "a non-negative integer",
                )?)
            }
            "--out" => args.out = Some(PathBuf::from(value("--out", &mut it)?)),
            "--out-dir" => args.out_dir = Some(PathBuf::from(value("--out-dir", &mut it)?)),
            "--work-dir" => args.work_dir = Some(PathBuf::from(value("--work-dir", &mut it)?)),
            "--solve-cache" => {
                args.solve_cache = Some(PathBuf::from(value("--solve-cache", &mut it)?))
            }
            "--trace" => args.trace = Some(PathBuf::from(value("--trace", &mut it)?)),
            "--quick" => args.quick = true,
            "--no-memo" => args.no_memo = true,
            "--trials" => {
                args.trials = Some(number(
                    "--trials",
                    value("--trials", &mut it)?,
                    "a positive integer",
                )?)
            }
            "--seed" => {
                args.seed = Some(number(
                    "--seed",
                    value("--seed", &mut it)?,
                    "a non-negative integer",
                )?)
            }
            "--inject" => {
                args.inject = InjectSpec::parse(&value("--inject", &mut it)?)
                    .map_err(|e| format!("--inject: {e}"))?
            }
            "--stale-after-ms" => {
                args.stale_after_ms = Some(number(
                    "--stale-after-ms",
                    value("--stale-after-ms", &mut it)?,
                    "a duration in milliseconds",
                )?)
            }
            "--max-retries" => {
                args.max_retries = Some(number(
                    "--max-retries",
                    value("--max-retries", &mut it)?,
                    "a non-negative integer",
                )?)
            }
            "--backoff-ms" => {
                args.backoff_ms = Some(number(
                    "--backoff-ms",
                    value("--backoff-ms", &mut it)?,
                    "a duration in milliseconds",
                )?)
            }
            "--worker-index" => {
                args.worker_index = Some(number(
                    "--worker-index",
                    value("--worker-index", &mut it)?,
                    "a non-negative integer",
                )?)
            }
            "--heartbeat-ms" => {
                args.heartbeat_ms = Some(number(
                    "--heartbeat-ms",
                    value("--heartbeat-ms", &mut it)?,
                    "a duration in milliseconds",
                )?)
            }
            "--poll-ms" => {
                args.poll_ms = Some(number(
                    "--poll-ms",
                    value("--poll-ms", &mut it)?,
                    "a duration in milliseconds",
                )?)
            }
            "--stall-ms" => {
                args.stall_ms = Some(number(
                    "--stall-ms",
                    value("--stall-ms", &mut it)?,
                    "a duration in milliseconds",
                )?)
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => args.positional.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

impl Args {
    fn config(&self) -> RunConfig {
        let mut config = if self.quick {
            RunConfig::quick()
        } else {
            RunConfig::full()
        };
        if let Some(trials) = self.trials {
            config.opts.trials = trials;
        }
        if let Some(seed) = self.seed {
            config.opts.base_seed = seed;
        }
        config.opts.use_solve_memo = !self.no_memo;
        config
    }

    fn elastic_options(&self) -> ElasticOptions {
        // Quick runs finish in milliseconds; pair them with the
        // smoke-tuned recovery timings so a killed worker doesn't stall
        // the matrix for the production 5 s staleness threshold.
        // Explicit --stale-after-ms / --backoff-ms still win below.
        let mut opts = if self.quick {
            ElasticOptions::quick()
        } else {
            ElasticOptions::default()
        };
        if let Some(ms) = self.stale_after_ms {
            opts.stale_after = Duration::from_millis(ms);
        }
        if let Some(retries) = self.max_retries {
            opts.max_retries = retries;
        }
        if let Some(ms) = self.backoff_ms {
            opts.backoff = Duration::from_millis(ms);
        }
        opts.inject = self.inject.clone();
        opts.solve_cache = self.solve_cache.clone();
        opts.trace = self.trace.clone();
        opts
    }
}

fn run(command: &str, args: &Args) -> Result<(), PipelineError> {
    match command {
        "plan" => {
            let shards = args.shards.ok_or(missing("--shards"))?;
            let out_dir = args.out_dir.clone().ok_or(missing("--out-dir"))?;
            std::fs::create_dir_all(&out_dir)?;
            let manifests: Vec<ShardManifest> = match args.shard_index {
                // Validates the index against the count with the typed
                // pipeline errors before any file is written.
                Some(index) => {
                    plan_matrix_shard(shards, index)?;
                    vec![plan(shards, &args.config())?.swap_remove(index)]
                }
                None => plan(shards, &args.config())?,
            };
            for manifest in &manifests {
                let path = out_dir.join(format!("shard-{}.json", manifest.shard.shard_index));
                atomic_write(&path, &manifest.to_json_string())?;
                println!(
                    "planned shard {}/{} ({} rows) -> {}",
                    manifest.shard.shard_index,
                    manifest.shard.shard_count,
                    manifest.shard.syscalls.len(),
                    path.display()
                );
            }
            Ok(())
        }
        "execute" => {
            let [manifest_path] = args.positional.as_slice() else {
                return Err(missing("exactly one MANIFEST path"));
            };
            let out = args.out.clone().ok_or(missing("--out"))?;
            let manifest = ShardManifest::from_json_str(&std::fs::read_to_string(manifest_path)?)?;
            let partial = execute(&manifest)?;
            atomic_write(&out, &partial.to_json_string())?;
            println!(
                "executed shard {}/{} ({} rows) -> {}",
                partial.shard_index,
                partial.shard_count,
                partial.rows.len(),
                out.display()
            );
            Ok(())
        }
        "merge" => {
            if args.positional.is_empty() {
                return Err(missing("at least one PARTIAL path"));
            }
            let out = args.out.clone().ok_or(missing("--out"))?;
            // Loading names the offending file path and argument position
            // on any malformed (e.g. truncated mid-write) artifact.
            let parts = args
                .positional
                .iter()
                .enumerate()
                .map(|(i, p)| load_partial(p, i))
                .collect::<Result<Vec<_>, _>>()?;
            let report = merge(parts)?;
            atomic_write(&out, &report)?;
            println!(
                "merged {} partial(s) -> {}",
                args.positional.len(),
                out.display()
            );
            Ok(())
        }
        "single" => {
            let out = args.out.clone().ok_or(missing("--out"))?;
            let mut config = args.config();
            if let Some(dir) = &args.solve_cache {
                std::fs::create_dir_all(dir)?;
                config.opts.solve_cache = Some(dir.join(SOLVE_CACHE_FILE));
            }
            config.opts.trace = args.trace.clone();
            let report = single_report(&config);
            atomic_write(&out, &report)?;
            println!("single-process matrix -> {}", out.display());
            Ok(())
        }
        "drive" => {
            let workers = args.shards.ok_or(missing("--shards"))?;
            let out = args.out.clone().ok_or(missing("--out"))?;
            let work_dir = args.work_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("provmark-shard-{}", std::process::id()))
            });
            // Same worker-count validation as the classic row plan.
            provmark_core::pipeline::plan_matrix_shards(workers)?;
            let outcome =
                drive_elastic(workers, &args.config(), &work_dir, &args.elastic_options())?;
            // The report is written even on a degraded run: lost cells
            // are visible in it, and the typed error follows.
            atomic_write(&out, &outcome.report)?;
            for exit in outcome.worker_exits.iter().filter(|e| !e.success) {
                match &exit.stderr {
                    Some(path) => eprintln!(
                        "provmark-shard drive: worker {} failed ({}) — stderr: {}",
                        exit.worker,
                        exit.status,
                        path.display()
                    ),
                    None => eprintln!(
                        "provmark-shard drive: worker {} failed ({})",
                        exit.worker, exit.status
                    ),
                }
            }
            println!(
                "drove {} worker process(es) ({} spawned, {} re-dispatch(es), artifacts in {}) -> {}",
                workers,
                outcome.workers_spawned,
                outcome.requeues,
                work_dir.display(),
                out.display()
            );
            println!(
                "solve memo: {} hit(s) ({} from disk), {} miss(es), {} eviction(s)",
                outcome.memo.hits,
                outcome.memo.disk_hits,
                outcome.memo.misses,
                outcome.memo.evictions
            );
            // Summed over *accepted* cells only; superseded publishes are
            // reported separately so wasted zombie work stays visible
            // instead of being silently dropped.
            if outcome.stale_publishes > 0 {
                println!(
                    "rejected {} stale-epoch publish(es) (zombie work: {} hit(s), {} miss(es))",
                    outcome.stale_publishes, outcome.zombie_memo.hits, outcome.zombie_memo.misses
                );
            }
            if let Some(merge) = &outcome.cache_merge {
                println!(
                    "solve cache: {} entr{} after folding in {} worker delta file(s)",
                    merge.entries,
                    if merge.entries == 1 { "y" } else { "ies" },
                    merge.delta_files
                );
                for note in &merge.skipped {
                    eprintln!("provmark-shard drive: skipped corrupt cache input {note}");
                }
            }
            if outcome.failures.is_empty() {
                Ok(())
            } else {
                Err(PipelineError::CellsExhausted {
                    failures: outcome.failures,
                })
            }
        }
        "work" => {
            let [dir] = args.positional.as_slice() else {
                return Err(missing("exactly one run DIR"));
            };
            let index = args.worker_index.ok_or(missing("--worker-index"))?;
            let store = TaskStore::open(dir)?;
            let defaults = ElasticOptions::default();
            let ctx = WorkerContext {
                index,
                heartbeat_interval: args
                    .heartbeat_ms
                    .map_or(defaults.heartbeat_interval, Duration::from_millis),
                poll_interval: args
                    .poll_ms
                    .map_or(defaults.poll_interval, Duration::from_millis),
                stall: args
                    .stall_ms
                    .map_or(defaults.stale_after * 4, Duration::from_millis),
                inject: args.inject.clone(),
                solve_cache: args.solve_cache.clone(),
                trace: args.trace.clone(),
            };
            match worker_loop(&store, &ctx)? {
                WorkerEnd::Stopped => Ok(()),
                WorkerEnd::Crashed(reason) => {
                    // A fault injection asked for a real crash: abort so
                    // the supervisor sees a signal death, not a tidy
                    // error return.
                    eprintln!("provmark-shard work: {reason}");
                    std::process::abort();
                }
            }
        }
        other => Err(PipelineError::ShardArtifact {
            detail: format!("unknown command `{other}`"),
        }),
    }
}

fn missing(what: &str) -> PipelineError {
    PipelineError::ShardArtifact {
        detail: format!("missing {what}"),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        return usage();
    };
    let args = match parse_args(rest) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("provmark-shard: {message}");
            return usage();
        }
    };
    match run(command, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(PipelineError::ShardArtifact { detail }) if detail.starts_with("missing ") => {
            eprintln!("provmark-shard {command}: {detail}");
            usage()
        }
        Err(e) => {
            eprintln!("provmark-shard {command}: {e}");
            ExitCode::FAILURE
        }
    }
}
