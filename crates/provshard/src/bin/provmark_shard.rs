//! `provmark-shard` — the sharded Table 2 matrix runner.
//!
//! ```text
//! provmark-shard plan    --shards N [--shard-index i] --out-dir DIR [--quick] [--trials T] [--seed S]
//! provmark-shard execute MANIFEST --out PARTIAL
//! provmark-shard merge   PARTIAL... --out REPORT
//! provmark-shard single  [--quick] [--trials T] [--seed S] --out REPORT
//! provmark-shard drive   --shards N [--quick] [--trials T] [--seed S] --out REPORT [--work-dir DIR]
//! ```
//!
//! `plan` writes self-describing shard manifests (one per shard, or just
//! shard `i` with `--shard-index`); `execute` runs one manifest through
//! the pipeline and writes its partial-results artifact; `merge`
//! deterministically reassembles partials into the canonical matrix
//! report; `single` runs the whole matrix in one process and writes the
//! byte-identical reference report; `drive` does plan → N concurrent
//! worker *processes* of this executable → merge in one invocation.
//!
//! All argument and artifact validation surfaces typed pipeline errors
//! with actionable messages (exit code 2 for usage errors, 1 for
//! pipeline failures).

use std::path::PathBuf;
use std::process::ExitCode;

use provmark_core::pipeline::plan_matrix_shard;
use provmark_core::PipelineError;
use provshard::{
    drive_local, execute, load_partial, merge, plan, single_report, RunConfig, ShardManifest,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: provmark-shard <command> [options]\n\
         \n\
         commands:\n\
         \x20 plan    --shards N [--shard-index i] --out-dir DIR [run options]\n\
         \x20 execute MANIFEST --out PARTIAL\n\
         \x20 merge   PARTIAL... --out REPORT\n\
         \x20 single  --out REPORT [run options]\n\
         \x20 drive   --shards N --out REPORT [--work-dir DIR] [run options]\n\
         \n\
         run options: --quick (scaled-down simulated OPUS startup),\n\
         \x20          --trials T (default 2), --seed S (default 1),\n\
         \x20          --no-memo (disable the session-level solve memo)"
    );
    ExitCode::from(2)
}

/// Shared CLI state collected from the argument list.
#[derive(Default)]
struct Args {
    shards: Option<usize>,
    shard_index: Option<usize>,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    work_dir: Option<PathBuf>,
    quick: bool,
    no_memo: bool,
    trials: Option<usize>,
    seed: Option<u64>,
    positional: Vec<PathBuf>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                args.shards = Some(
                    value("--shards", &mut it)?
                        .parse()
                        .map_err(|_| "--shards needs a positive integer".to_owned())?,
                )
            }
            "--shard-index" => {
                args.shard_index = Some(
                    value("--shard-index", &mut it)?
                        .parse()
                        .map_err(|_| "--shard-index needs a non-negative integer".to_owned())?,
                )
            }
            "--out" => args.out = Some(PathBuf::from(value("--out", &mut it)?)),
            "--out-dir" => args.out_dir = Some(PathBuf::from(value("--out-dir", &mut it)?)),
            "--work-dir" => args.work_dir = Some(PathBuf::from(value("--work-dir", &mut it)?)),
            "--quick" => args.quick = true,
            "--no-memo" => args.no_memo = true,
            "--trials" => {
                args.trials = Some(
                    value("--trials", &mut it)?
                        .parse()
                        .map_err(|_| "--trials needs a positive integer".to_owned())?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed", &mut it)?
                        .parse()
                        .map_err(|_| "--seed needs a non-negative integer".to_owned())?,
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => args.positional.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

impl Args {
    fn config(&self) -> RunConfig {
        let mut config = if self.quick {
            RunConfig::quick()
        } else {
            RunConfig::full()
        };
        if let Some(trials) = self.trials {
            config.opts.trials = trials;
        }
        if let Some(seed) = self.seed {
            config.opts.base_seed = seed;
        }
        config.opts.use_solve_memo = !self.no_memo;
        config
    }
}

fn run(command: &str, args: &Args) -> Result<(), PipelineError> {
    match command {
        "plan" => {
            let shards = args.shards.ok_or(missing("--shards"))?;
            let out_dir = args.out_dir.clone().ok_or(missing("--out-dir"))?;
            std::fs::create_dir_all(&out_dir)?;
            let manifests: Vec<ShardManifest> = match args.shard_index {
                // Validates the index against the count with the typed
                // pipeline errors before any file is written.
                Some(index) => {
                    plan_matrix_shard(shards, index)?;
                    vec![plan(shards, &args.config())?.swap_remove(index)]
                }
                None => plan(shards, &args.config())?,
            };
            for manifest in &manifests {
                let path = out_dir.join(format!("shard-{}.json", manifest.shard.shard_index));
                std::fs::write(&path, manifest.to_json_string())?;
                println!(
                    "planned shard {}/{} ({} rows) -> {}",
                    manifest.shard.shard_index,
                    manifest.shard.shard_count,
                    manifest.shard.syscalls.len(),
                    path.display()
                );
            }
            Ok(())
        }
        "execute" => {
            let [manifest_path] = args.positional.as_slice() else {
                return Err(missing("exactly one MANIFEST path"));
            };
            let out = args.out.clone().ok_or(missing("--out"))?;
            let manifest = ShardManifest::from_json_str(&std::fs::read_to_string(manifest_path)?)?;
            let partial = execute(&manifest)?;
            std::fs::write(&out, partial.to_json_string())?;
            println!(
                "executed shard {}/{} ({} rows) -> {}",
                partial.shard_index,
                partial.shard_count,
                partial.rows.len(),
                out.display()
            );
            Ok(())
        }
        "merge" => {
            if args.positional.is_empty() {
                return Err(missing("at least one PARTIAL path"));
            }
            let out = args.out.clone().ok_or(missing("--out"))?;
            // Loading names the offending file path and argument position
            // on any malformed (e.g. truncated mid-write) artifact.
            let parts = args
                .positional
                .iter()
                .enumerate()
                .map(|(i, p)| load_partial(p, i))
                .collect::<Result<Vec<_>, _>>()?;
            let report = merge(parts)?;
            std::fs::write(&out, &report)?;
            println!(
                "merged {} partial(s) -> {}",
                args.positional.len(),
                out.display()
            );
            Ok(())
        }
        "single" => {
            let out = args.out.clone().ok_or(missing("--out"))?;
            let report = single_report(&args.config());
            std::fs::write(&out, &report)?;
            println!("single-process matrix -> {}", out.display());
            Ok(())
        }
        "drive" => {
            let shards = args.shards.ok_or(missing("--shards"))?;
            let out = args.out.clone().ok_or(missing("--out"))?;
            let work_dir = args.work_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("provmark-shard-{}", std::process::id()))
            });
            let report = drive_local(shards, &args.config(), &work_dir)?;
            std::fs::write(&out, &report)?;
            println!(
                "drove {shards} worker process(es) (artifacts in {}) -> {}",
                work_dir.display(),
                out.display()
            );
            Ok(())
        }
        other => Err(PipelineError::ShardArtifact {
            detail: format!("unknown command `{other}`"),
        }),
    }
}

fn missing(what: &str) -> PipelineError {
    PipelineError::ShardArtifact {
        detail: format!("missing {what}"),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        return usage();
    };
    let args = match parse_args(rest) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("provmark-shard: {message}");
            return usage();
        }
    };
    match run(command, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(PipelineError::ShardArtifact { detail }) if detail.starts_with("missing ") => {
            eprintln!("provmark-shard {command}: {detail}");
            usage()
        }
        Err(e) => {
            eprintln!("provmark-shard {command}: {e}");
            ExitCode::FAILURE
        }
    }
}
