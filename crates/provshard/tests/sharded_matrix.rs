//! End-to-end sharded matrix tests: a 3-shard plan / execute / merge run
//! — in-process and through real `provmark-shard` worker processes —
//! must produce a report **byte-identical** to the single-process
//! `run_matrix` report.

use std::path::PathBuf;
use std::process::Command;

use provmark_core::PipelineError;
use provshard::{
    execute, merge, plan, single_report, PartialResults, RunConfig, MANIFEST_VERSION,
    PARTIAL_VERSION,
};

const WORKER: &str = env!("CARGO_BIN_EXE_provmark-shard");

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("provmark-shard-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn three_shard_merge_is_byte_identical_to_single_process() {
    let config = RunConfig::quick();
    let reference = single_report(&config);
    assert!(reference.contains("agreement with paper Table 2"));

    // The session-level solve memo (on by default) must be invisible in
    // the report: a memo-off run renders byte-identically.
    let mut no_memo = RunConfig::quick();
    no_memo.opts.use_solve_memo = false;
    assert_eq!(
        single_report(&no_memo),
        reference,
        "memo-on and memo-off matrix reports must be byte-identical"
    );

    let manifests = plan(3, &config).expect("plan");
    assert_eq!(manifests.len(), 3);
    // Execute out of order and feed the merge in that order: the merge
    // must restore canonical order on its own.
    let mut parts: Vec<PartialResults> = Vec::new();
    for manifest in manifests.iter().rev() {
        // Round-trip every artifact through its JSON form, exactly as
        // worker processes would exchange them.
        let manifest =
            provshard::ShardManifest::from_json_str(&manifest.to_json_string()).expect("manifest");
        let partial = execute(&manifest).expect("execute");
        parts.push(PartialResults::from_json_str(&partial.to_json_string()).expect("partial"));
    }
    let merged = merge(parts).expect("merge");
    assert_eq!(
        merged, reference,
        "3-shard merged report must be byte-identical to the single-process report"
    );
}

#[test]
fn merge_refuses_incomplete_partials() {
    let config = RunConfig::quick();
    let manifests = plan(3, &config).expect("plan");
    let only_one = execute(&manifests[0]).expect("execute");
    let err = merge(vec![only_one]).expect_err("incomplete merge must fail");
    assert!(
        matches!(&err, PipelineError::ShardMerge { detail } if detail.contains("missing")),
        "{err}"
    );
}

#[test]
fn worker_processes_produce_byte_identical_report() {
    let dir = temp_dir("workers");
    let run = |args: &[&str]| {
        let output = Command::new(WORKER)
            .args(args)
            .output()
            .expect("spawn provmark-shard");
        assert!(
            output.status.success(),
            "provmark-shard {args:?} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

    run(&["single", "--quick", "--out", &path("single.txt")]);
    run(&["plan", "--shards", "3", "--quick", "--out-dir", &path("")]);
    for i in 0..3 {
        run(&[
            "execute",
            &path(&format!("shard-{i}.json")),
            "--out",
            &path(&format!("part-{i}.json")),
        ]);
    }
    run(&[
        "merge",
        &path("part-2.json"),
        &path("part-0.json"),
        &path("part-1.json"),
        "--out",
        &path("merged.txt"),
    ]);
    let single = std::fs::read_to_string(dir.join("single.txt")).unwrap();
    let merged = std::fs::read_to_string(dir.join("merged.txt")).unwrap();
    assert_eq!(merged, single, "subprocess merge must be byte-identical");

    // Driver mode: plan + spawn workers + merge in one invocation.
    run(&[
        "drive",
        "--shards",
        "3",
        "--quick",
        "--work-dir",
        &path("drive"),
        "--out",
        &path("driven.txt"),
    ]);
    let driven = std::fs::read_to_string(dir.join("driven.txt")).unwrap();
    assert_eq!(driven, single, "driver-mode report must be byte-identical");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_cli_validates_arguments_with_actionable_errors() {
    let dir = temp_dir("cli");
    let fail = |args: &[&str]| -> String {
        let output = Command::new(WORKER)
            .args(args)
            .output()
            .expect("spawn provmark-shard");
        assert!(
            !output.status.success(),
            "provmark-shard {args:?} must fail"
        );
        String::from_utf8_lossy(&output.stderr).into_owned()
    };
    let out_dir = dir.to_string_lossy().into_owned();

    let err = fail(&["plan", "--shards", "0", "--out-dir", &out_dir]);
    assert!(
        err.contains("--shards N"),
        "actionable shard-count error: {err}"
    );

    let err = fail(&[
        "plan",
        "--shards",
        "3",
        "--shard-index",
        "5",
        "--out-dir",
        &out_dir,
    ]);
    assert!(
        err.contains("0 <= i < 3"),
        "actionable shard-index error: {err}"
    );

    let err = fail(&["plan", "--shards", "not-a-number", "--out-dir", &out_dir]);
    assert!(err.contains("positive integer"), "{err}");

    let err = fail(&["frobnicate"]);
    assert!(err.contains("unknown command"), "{err}");

    // A partial with a skewed snapshot-format version is rejected by
    // the merge step with the typed snapshot error.
    let partial = PartialResults {
        shard_index: 0,
        shard_count: 2,
        config: RunConfig::quick(),
        rows: Vec::new(),
    };
    let skewed = partial.to_json_string().replace(
        "\"snapshot_format_version\": 1",
        "\"snapshot_format_version\": 9",
    );
    let skewed_path = dir.join("skewed.json");
    std::fs::write(&skewed_path, skewed).unwrap();
    let err = fail(&[
        "merge",
        &skewed_path.to_string_lossy(),
        "--out",
        &dir.join("never.txt").to_string_lossy(),
    ]);
    assert!(
        err.contains("snapshot") && err.contains("version 9"),
        "typed snapshot-version error: {err}"
    );

    // A truncated (mid-write) partial handed to `merge` names the
    // offending file and its argument position, so the operator knows
    // which shard to re-execute.
    let full = partial.to_json_string();
    let truncated_path = dir.join("part-torn.json");
    std::fs::write(&truncated_path, &full[..full.len() / 2]).unwrap();
    let err = fail(&[
        "merge",
        &truncated_path.to_string_lossy(),
        "--out",
        &dir.join("never.txt").to_string_lossy(),
    ]);
    assert!(
        err.contains("partial #0") && err.contains("part-torn.json"),
        "truncated artifact must name the file and index: {err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_artifact_version_skew_rejected() {
    // Manifests and partials from a build one format version ahead are
    // refused with the actionable re-plan error, not half-parsed.
    let partial = PartialResults {
        shard_index: 0,
        shard_count: 2,
        config: RunConfig::quick(),
        rows: Vec::new(),
    };
    let skewed = partial.to_json_string().replace(
        &format!("\"version\": {PARTIAL_VERSION}"),
        &format!("\"version\": {}", PARTIAL_VERSION + 1),
    );
    assert_ne!(skewed, partial.to_json_string(), "replacement must fire");
    let err = PartialResults::from_json_str(&skewed).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("version {}", PARTIAL_VERSION + 1)) && msg.contains("re-plan"),
        "typed partial-version error: {msg}"
    );

    let manifest = plan(3, &RunConfig::quick()).unwrap().remove(1);
    let skewed = manifest.to_json_string().replace(
        &format!("\"version\": {MANIFEST_VERSION}"),
        &format!("\"version\": {}", MANIFEST_VERSION + 1),
    );
    assert_ne!(skewed, manifest.to_json_string(), "replacement must fire");
    let err = provshard::ShardManifest::from_json_str(&skewed).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("version {}", MANIFEST_VERSION + 1)) && msg.contains("re-plan"),
        "typed manifest-version error: {msg}"
    );
}
