//! Integration tests of the shared persistent solve cache: cold and
//! warm elastic drives sharing a `--solve-cache` directory must produce
//! byte-identical reports (warm runs answering from disk state), a
//! corrupt cache must degrade to a typed cold start and be repaired by
//! the next merge, and two separate *processes* sharing the cache must
//! replay byte-identically.

use std::path::{Path, PathBuf};
use std::process::Command;

use provshard::elastic::{
    drive_elastic_in_process, merge_solve_cache_dir, ElasticOptions, SOLVE_CACHE_FILE,
};
use provshard::{single_report, RunConfig};

const SHARD_BIN: &str = env!("CARGO_BIN_EXE_provmark-shard");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "provmark-solve-cache-test-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn cached_opts(cache: &Path) -> ElasticOptions {
    ElasticOptions {
        solve_cache: Some(cache.to_path_buf()),
        ..ElasticOptions::quick()
    }
}

#[test]
fn cold_then_warm_drives_are_byte_identical_and_warm_answers_from_disk() {
    let cache = temp_dir("drive-cache");
    let reference = single_report(&RunConfig::quick());

    let run1 = temp_dir("drive-run1");
    let cold = drive_elastic_in_process(3, &RunConfig::quick(), &run1, &cached_opts(&cache))
        .expect("cold drive");
    assert!(cold.failures.is_empty());
    assert_eq!(
        cold.report, reference,
        "cold cached drive must match the single-process report byte-for-byte"
    );
    assert!(cold.memo.misses > 0, "a cold run must actually solve");
    assert_eq!(cold.memo.disk_hits, 0, "no disk state existed to hit");
    let merge = cold.cache_merge.as_ref().expect("cache dir was configured");
    assert!(merge.entries > 0, "the merged cache must hold entries");
    assert!(merge.delta_files > 0, "workers must have published deltas");
    assert!(
        merge.skipped.is_empty(),
        "nothing to skip on a clean first run: {:?}",
        merge.skipped
    );
    assert!(cache.join(SOLVE_CACHE_FILE).is_file());
    let leftover_deltas: Vec<String> = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("delta."))
        .collect();
    assert!(
        leftover_deltas.is_empty(),
        "merged deltas are consumed: {leftover_deltas:?}"
    );

    let run2 = temp_dir("drive-run2");
    let warm = drive_elastic_in_process(3, &RunConfig::quick(), &run2, &cached_opts(&cache))
        .expect("warm drive");
    assert!(warm.failures.is_empty());
    assert_eq!(
        warm.report, reference,
        "warm cached drive must replay the cold report byte-for-byte"
    );
    assert_eq!(
        warm.memo.misses, 0,
        "a fully warm run must not re-run a single dense search"
    );
    assert!(
        warm.memo.disk_hits > 0,
        "warm answers must come from the loaded cache"
    );

    for dir in [cache, run1, run2] {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn corrupt_cache_is_a_cold_start_and_the_merge_repairs_it() {
    let cache = temp_dir("corrupt-cache");
    let base = cache.join(SOLVE_CACHE_FILE);
    std::fs::write(&base, b"PMSCnot really a cache").unwrap();
    let reference = single_report(&RunConfig::quick());

    let run = temp_dir("corrupt-run");
    let outcome = drive_elastic_in_process(3, &RunConfig::quick(), &run, &cached_opts(&cache))
        .expect("drive over a corrupt cache");
    assert!(outcome.failures.is_empty());
    assert_eq!(
        outcome.report, reference,
        "a corrupt cache degrades to a cold start, never a wrong answer"
    );
    let merge = outcome.cache_merge.as_ref().expect("merge ran");
    assert!(
        merge.skipped.iter().any(|s| s.contains(SOLVE_CACHE_FILE)),
        "the corrupt base must be recorded as skipped: {:?}",
        merge.skipped
    );
    assert!(merge.entries > 0, "worker deltas still merge");

    // The republished cache is valid again: a second merge reads it
    // back without a skip.
    let repaired = merge_solve_cache_dir(&cache).expect("merge of repaired cache");
    assert!(repaired.skipped.is_empty(), "{:?}", repaired.skipped);
    assert_eq!(repaired.entries, merge.entries);

    std::fs::remove_dir_all(cache).ok();
    std::fs::remove_dir_all(run).ok();
}

/// The tentpole differential: process A populates the cache, process B
/// — a separate OS process with its own interners and sessions — warms
/// from it and must produce the byte-identical report. A third run
/// without any cache pins the cache-on/off identity across processes.
#[test]
fn separate_processes_sharing_the_cache_replay_byte_identically() {
    let dir = temp_dir("cross-process");
    let cache = dir.join("cache");
    let single = |tag: &str, cache_arg: Option<&PathBuf>| {
        let out = dir.join(format!("{tag}.txt"));
        let mut cmd = Command::new(SHARD_BIN);
        cmd.arg("single")
            .arg("--quick")
            .arg("--out")
            .arg(&out)
            .arg("--trials")
            .arg("2");
        if let Some(cache) = cache_arg {
            cmd.arg("--solve-cache").arg(cache);
        }
        let status = cmd.status().expect("provmark-shard single runs");
        assert!(status.success(), "single ({tag}) must succeed: {status}");
        std::fs::read_to_string(&out).expect("report written")
    };
    let process_a = single("a", Some(&cache));
    assert!(
        cache.join(SOLVE_CACHE_FILE).is_file(),
        "process A must leave a cache file behind"
    );
    let cache_bytes = std::fs::read(cache.join(SOLVE_CACHE_FILE)).unwrap();
    assert!(!cache_bytes.is_empty());
    let process_b = single("b", Some(&cache));
    let uncached = single("c", None);
    assert_eq!(
        process_a, process_b,
        "a second process warming from the first one's cache must replay its \
         report byte-for-byte"
    );
    assert_eq!(
        process_a, uncached,
        "cached and uncached processes must agree byte-for-byte"
    );
    std::fs::remove_dir_all(dir).ok();
}
