//! End-to-end fault-tolerance tests of the elastic drive: runs that
//! lose workers, tear partials or stall mid-claim must recover and
//! produce a merged report **byte-identical** to the single-process
//! run; runs whose retries are exhausted must surface typed per-cell
//! failures — never panics or torn artifacts.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;

use provshard::elastic::{drive_elastic, ElasticOptions, InjectSpec};
use provshard::{single_report, RunConfig};

const WORKER: &str = env!("CARGO_BIN_EXE_provmark-shard");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "provmark-elastic-test-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The single-process quick report every recovered run must reproduce
/// byte-for-byte. Computed once per test binary.
fn reference() -> &'static str {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| single_report(&RunConfig::quick()))
}

fn fast_opts(inject: &str) -> ElasticOptions {
    ElasticOptions {
        worker_exe: Some(PathBuf::from(WORKER)),
        stale_after: Duration::from_millis(400),
        backoff: Duration::from_millis(50),
        inject: InjectSpec::parse(inject).expect("inject spec"),
        ..ElasticOptions::default()
    }
}

/// The quick-mode preset must stay proportionate to a quick matrix
/// (milliseconds of work): a sub-second staleness threshold so killed
/// cells are re-dispatched promptly, a reduced retry backoff, and every
/// other knob at its production default. Guards the `--quick` recovery
/// overhead fix (the faulted smoke bench measured 0.83× — slower than
/// single-process — under the 5 s production threshold).
#[test]
fn quick_preset_scales_recovery_timings_down() {
    let quick = ElasticOptions::quick();
    let prod = ElasticOptions::default();
    assert_eq!(quick.stale_after, Duration::from_millis(300));
    assert_eq!(quick.backoff, Duration::from_millis(50));
    assert!(quick.stale_after < prod.stale_after);
    assert!(quick.backoff < prod.backoff);
    // The driver clamps heartbeats to stale_after / 4; the preset must
    // leave room for at least one refresh before a claim goes stale.
    assert!(quick.heartbeat_interval.min(quick.stale_after / 4) < quick.stale_after);
    assert_eq!(quick.max_retries, prod.max_retries);
    assert_eq!(quick.max_respawns, prod.max_respawns);
    assert_eq!(quick.poll_interval, prod.poll_interval);
    assert!(quick.inject.is_empty());
}

#[test]
fn clean_elastic_drive_is_byte_identical() {
    let dir = temp_dir("clean");
    let outcome = drive_elastic(3, &RunConfig::quick(), &dir, &fast_opts("")).unwrap();
    assert_eq!(
        outcome.report,
        reference(),
        "clean elastic run must be byte-identical to the single-process report"
    );
    assert!(outcome.failures.is_empty());
    assert_eq!(outcome.workers_spawned, 3);
    assert!(
        outcome.worker_exits.iter().all(|e| e.success),
        "all workers drain cleanly: {:?}",
        outcome.worker_exits
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_worker_is_recovered_byte_identically() {
    let dir = temp_dir("kill");
    let outcome = drive_elastic(3, &RunConfig::quick(), &dir, &fast_opts("kill-worker=1")).unwrap();
    assert_eq!(
        outcome.report,
        reference(),
        "a run that lost worker 1 mid-cell must recover byte-identically"
    );
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    assert!(
        outcome.requeues >= 1,
        "the dead worker's claim must have been re-dispatched"
    );
    let dead: Vec<_> = outcome.worker_exits.iter().filter(|e| !e.success).collect();
    assert_eq!(
        dead.len(),
        1,
        "exactly worker 1 died: {:?}",
        outcome.worker_exits
    );
    assert_eq!(dead[0].worker, 1);
    let stderr = dead[0]
        .stderr
        .as_ref()
        .expect("process workers capture stderr");
    let captured = std::fs::read_to_string(stderr).expect("stderr file exists");
    assert!(
        captured.contains("kill-worker"),
        "worker stderr names the injected crash: {captured:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_partial_is_rejected_and_recovered_byte_identically() {
    let dir = temp_dir("torn");
    let outcome =
        drive_elastic(3, &RunConfig::quick(), &dir, &fast_opts("torn-partial=0")).unwrap();
    assert_eq!(
        outcome.report,
        reference(),
        "a torn result must be discarded and the cell re-solved byte-identically"
    );
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    assert!(
        outcome.requeues >= 1,
        "the torn cell must have been re-dispatched"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stalled_worker_publishes_under_superseded_epoch_and_is_ignored() {
    let dir = temp_dir("stall");
    let mut opts = fast_opts("stall=2");
    opts.stale_after = Duration::from_millis(250);
    let outcome = drive_elastic(3, &RunConfig::quick(), &dir, &opts).unwrap();
    assert_eq!(
        outcome.report,
        reference(),
        "a stale-epoch publish must be rejected without corrupting the report"
    );
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    assert!(
        outcome.requeues >= 1,
        "the stalled claim must have been re-dispatched"
    );
    // The straggler's superseded publish really happened: some cell has
    // results at two epochs in done/ (latest epoch won the merge).
    let mut by_id: std::collections::BTreeMap<String, usize> = Default::default();
    for entry in std::fs::read_dir(dir.join("done")).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if let Some((id, _)) = name
            .strip_suffix(".json")
            .and_then(|stem| stem.rsplit_once(".e"))
        {
            *by_id.entry(id.to_owned()).or_default() += 1;
        }
    }
    assert!(
        by_id.values().any(|count| *count >= 2),
        "expected a cell with results at two epochs, got {by_id:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_retries_surface_as_typed_per_cell_failures() {
    let dir = temp_dir("exhaust");
    let mut opts = fast_opts("kill-cell=creat/0");
    opts.max_retries = 1;
    let outcome = drive_elastic(3, &RunConfig::quick(), &dir, &opts).unwrap();
    assert_eq!(outcome.failures.len(), 1, "{:?}", outcome.failures);
    let failure = &outcome.failures[0];
    assert_eq!(failure.syscall, "creat");
    assert_eq!(failure.tool, 0);
    assert_eq!(
        failure.attempts, 2,
        "max_retries=1 means two attempts before abandoning"
    );
    assert_eq!(failure.tool_name(), "SPADE");
    // The degraded report still merges, is visibly degraded, and every
    // other cell matches the reference.
    assert_ne!(outcome.report, reference());
    assert!(
        outcome
            .report
            .contains("lost: no worker completed this cell in 2 attempt(s)"),
        "lost cell rendered in the report:\n{}",
        outcome.report
    );
    // Only the creat row and the agreement tally may differ from the
    // single-process reference — every other cell solved normally.
    let divergent: Vec<(&str, &str)> = reference()
        .lines()
        .zip(outcome.report.lines())
        .filter(|(a, b)| a != b)
        .collect();
    assert!(
        !divergent.is_empty()
            && divergent
                .iter()
                .all(|(a, _)| a.contains("creat") || a.contains("agreement with paper Table 2")),
        "only the creat row and the tally may differ from the reference: {divergent:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drive_cli_reports_injected_faults_and_exhaustion() {
    let dir = temp_dir("cli");
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

    // A fault-injected drive that recovers exits 0 and reports the dead
    // worker's index, status and stderr path on stderr.
    let output = Command::new(WORKER)
        .args([
            "drive",
            "--shards",
            "3",
            "--quick",
            "--inject",
            "kill-worker=1",
            "--stale-after-ms",
            "400",
            "--backoff-ms",
            "50",
            "--work-dir",
            &path("recovered-work"),
            "--out",
            &path("recovered.txt"),
        ])
        .output()
        .expect("spawn provmark-shard");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "recovered drive exits 0:\n{stderr}"
    );
    assert!(
        stderr.contains("worker 1 failed") && stderr.contains("worker-1.stderr"),
        "drive reports the failed worker's index and stderr path: {stderr}"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("recovered.txt")).unwrap(),
        reference(),
        "CLI-recovered report is byte-identical"
    );

    // Exhausted retries exit non-zero with the typed per-cell failure —
    // and the degraded report is still written.
    let output = Command::new(WORKER)
        .args([
            "drive",
            "--shards",
            "3",
            "--quick",
            "--inject",
            "kill-cell=creat/0",
            "--max-retries",
            "0",
            "--stale-after-ms",
            "400",
            "--backoff-ms",
            "50",
            "--work-dir",
            &path("exhausted-work"),
            "--out",
            &path("exhausted.txt"),
        ])
        .output()
        .expect("spawn provmark-shard");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!output.status.success(), "exhausted drive exits non-zero");
    assert!(
        stderr.contains("exhausted their retries") && stderr.contains("`creat`/SPADE"),
        "typed per-cell failure on stderr: {stderr}"
    );
    let degraded = std::fs::read_to_string(dir.join("exhausted.txt")).unwrap();
    assert!(
        degraded.contains("lost: no worker completed this cell"),
        "degraded report still written:\n{degraded}"
    );

    // A bogus --inject spec is a usage error (exit 2).
    let output = Command::new(WORKER)
        .args([
            "drive",
            "--shards",
            "3",
            "--inject",
            "frobnicate",
            "--out",
            &path("x.txt"),
        ])
        .output()
        .expect("spawn provmark-shard");
    assert_eq!(
        output.status.code(),
        Some(2),
        "bogus --inject is a usage error"
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("unknown --inject directive"),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}
