//! Tracing must be observably outcome-neutral and complete: a traced
//! run (single-process, clean elastic, fault-injected, stalled)
//! produces a report byte-identical to the untraced single-process
//! reference, while the merged trace actually shows the run's anatomy —
//! per-cell claims and solve spans, the kill, the stale detection, the
//! epoch-bumped re-dispatch and the rejected superseded publish.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use provshard::elastic::{drive_elastic, drive_elastic_in_process, ElasticOptions, InjectSpec};
use provshard::{single_report, RunConfig};
use provtrace::TraceMerge;

const WORKER: &str = env!("CARGO_BIN_EXE_provmark-shard");

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("provmark-traced-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The **untraced** single-process quick report every traced run must
/// reproduce byte-for-byte. Computed once per test binary.
fn reference() -> &'static str {
    static REFERENCE: OnceLock<String> = OnceLock::new();
    REFERENCE.get_or_init(|| single_report(&RunConfig::quick()))
}

/// Table 2 rows × 3 tools — the number of matrix cells every full run
/// solves, and therefore the number of solve spans a complete trace
/// must carry.
fn cells_in_matrix() -> usize {
    provmark_core::suite::table2().len() * 3
}

#[test]
fn traced_single_report_is_byte_identical_and_trace_parses() {
    let dir = temp_dir("single");
    let mut config = RunConfig::quick();
    config.opts.trace = Some(dir.clone());
    assert_eq!(
        single_report(&config),
        reference(),
        "tracing must not perturb the single-process report by a single byte"
    );
    let merged = TraceMerge::from_dir(&dir).expect("trace dir parses");
    assert_eq!(merged.workers.len(), 1, "one process, one trace file");
    assert_eq!(merged.workers[0].label, "matrix");
    let spans = merged.workers[0].spans();
    let cells: Vec<_> = spans.iter().filter(|s| s.name == "cell").collect();
    assert_eq!(
        cells.len(),
        cells_in_matrix(),
        "one cell span per matrix cell"
    );
    assert!(
        cells.iter().all(|s| s.end_ts_ns.is_some()),
        "every cell span closes"
    );
    assert!(
        spans.iter().any(|s| s.name == "solve"),
        "solver-level spans ride along"
    );
    let totals = merged.counter_totals();
    assert!(
        totals.get("memo.misses").copied().unwrap_or(0) > 0,
        "memo counters land in the trace footer: {totals:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_kill_drive_is_byte_identical_and_trace_shows_recovery() {
    let dir = temp_dir("kill");
    let trace_dir = dir.join("trace");
    let opts = ElasticOptions {
        worker_exe: Some(PathBuf::from(WORKER)),
        stale_after: Duration::from_millis(400),
        backoff: Duration::from_millis(50),
        inject: InjectSpec::parse("kill-worker=1").expect("inject spec"),
        trace: Some(trace_dir.clone()),
        ..ElasticOptions::default()
    };
    let outcome = drive_elastic(3, &RunConfig::quick(), &dir.join("work"), &opts).unwrap();
    assert_eq!(
        outcome.report,
        reference(),
        "traced fault-injected drive must stay byte-identical to the untraced reference"
    );
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);

    let merged = TraceMerge::from_dir(&trace_dir).expect("trace dir parses");
    let labels: Vec<&str> = merged.workers.iter().map(|w| w.label.as_str()).collect();
    assert!(
        labels.contains(&"drive"),
        "supervisor trace present: {labels:?}"
    );
    assert!(
        labels.iter().filter(|l| l.starts_with("worker-")).count() >= 3,
        "every worker (including the killed one) leaves a trace file: {labels:?}"
    );

    let counts = merged.event_counts();
    let count = |key: &str| counts.get(key).copied().unwrap_or(0);
    let cells = cells_in_matrix();
    assert_eq!(
        count("event:harvest.accept"),
        cells,
        "every cell accepted exactly once: {counts:?}"
    );
    assert!(
        count("span_enter:claim") >= cells,
        "at least one claim per cell (the re-dispatch adds more): {counts:?}"
    );
    assert!(
        count("span_enter:cell") >= cells,
        "a solve span per claimed cell: {counts:?}"
    );
    assert!(
        count("event:stale.detect") >= 1,
        "the killed worker's claim was detected stale: {counts:?}"
    );
    assert!(
        count("event:redispatch") >= 1,
        "the dead claim was re-dispatched under a bumped epoch: {counts:?}"
    );
    // The killed worker aborted mid-claim but its durably flushed
    // partial trace is still readable: a claim span it never closed.
    let unclosed_claim = merged
        .workers
        .iter()
        .filter(|w| w.label.starts_with("worker-"))
        .flat_map(|w| w.spans())
        .any(|s| s.name == "claim" && s.end_ts_ns.is_none());
    assert!(
        unclosed_claim,
        "expected a never-closed claim span from the killed worker"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn superseded_publish_is_counted_and_traced() {
    let dir = temp_dir("stall");
    let trace_dir = dir.join("trace");
    let opts = ElasticOptions {
        stale_after: Duration::from_millis(250),
        backoff: Duration::from_millis(50),
        inject: InjectSpec::parse("stall=2").expect("inject spec"),
        trace: Some(trace_dir.clone()),
        ..ElasticOptions::default()
    };
    let outcome =
        drive_elastic_in_process(3, &RunConfig::quick(), &dir.join("work"), &opts).unwrap();
    assert_eq!(
        outcome.report,
        reference(),
        "a rejected stale-epoch publish must not perturb the report"
    );
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    assert!(
        outcome.stale_publishes >= 1,
        "the stalled worker's superseded publish must be counted, not silently dropped"
    );
    assert!(
        outcome.zombie_memo.misses > 0,
        "the zombie's wasted solver work is visible: {:?}",
        outcome.zombie_memo
    );
    let merged = TraceMerge::from_dir(&trace_dir).expect("trace dir parses");
    let counts = merged.event_counts();
    assert!(
        counts
            .get("event:harvest.reject_stale")
            .copied()
            .unwrap_or(0)
            >= 1,
        "the rejection is visible in the supervisor trace: {counts:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_drive_counts_no_stale_publishes() {
    let dir = temp_dir("clean");
    // This test wants a drive with no supersession at all, so the
    // staleness budget must exceed the whole drive's wall-clock: on a
    // saturated host the *initial* heartbeat (two fsyncs inside the
    // claim) can land many seconds after the claimed-file rewrite, so
    // any threshold comparable to the run length can falsely fire.
    // That false fire is benign in production (the superseded publish
    // is counted and rejected, the report stays byte-identical — the
    // other tests in this file assert exactly that), but here it would
    // make the zero-count assertions flaky.
    let trace_dir = dir.join("trace");
    let opts = ElasticOptions {
        stale_after: Duration::from_secs(120),
        trace: Some(trace_dir.clone()),
        ..ElasticOptions::default()
    };
    let outcome =
        drive_elastic_in_process(3, &RunConfig::quick(), &dir.join("work"), &opts).unwrap();
    assert_eq!(outcome.report, reference());
    if outcome.requeues != 0 {
        let merged = TraceMerge::from_dir(&trace_dir).expect("trace dir parses");
        for e in &merged.timeline {
            if matches!(e.event.name.as_str(), "stale.detect" | "redispatch") {
                eprintln!("{} {} {:?}", e.worker, e.event.name, e.event.fields);
            }
        }
    }
    assert_eq!(outcome.requeues, 0, "nothing was re-dispatched");
    assert_eq!(outcome.stale_publishes, 0, "a clean drive rejects nothing");
    assert_eq!(outcome.zombie_memo.hits, 0);
    assert_eq!(outcome.zombie_memo.misses, 0);
    std::fs::remove_dir_all(&dir).ok();
}
